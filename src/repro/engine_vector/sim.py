"""The vectorised-semantics cycle engine (``engine="vector"``).

:class:`VectorBootstrapSimulation` is the third engine behind the
engine seam.  It exposes the same constructor, membership-mutation
surface (``kill_node``/``spawn_node``/``absorb_pool``) and
``run``/``measure`` API as the reference and fast engines, but it
deliberately **breaks the bit-identity contract** those two share:

* All exchange randomness comes from **one generator per simulation**
  (:mod:`repro.engine_vector.rng`): the activation permutation, peer
  picks, drop coins, and peer-sampling draws of a cycle are bulk
  draws, not per-node stream consumption.
* The idealised oracle's ``cr`` fresh samples per message are drawn
  **with replacement** from the live pool (and may include the
  sender); duplicates vanish in the message union, so for ``cr << N``
  the effect is a vanishing reduction of effective fresh samples.
* On the numpy leg, per-node state lives in sorted ``uint64`` id
  arrays and every per-exchange operation -- message-union dedup, ring
  ranking, balanced selection, prefix-slot capping, absorb novelty
  scans, and convergence measurement -- is an array operation (the
  geometry kernels are shared with :mod:`repro.engine_fast.kernels`).

What is preserved -- and what the statistical-equivalence harness
(``tests/test_engine_vector.py``) pins against the reference engine --
is the *distribution* of trajectories: exchanges stay sequential
within a cycle in a uniformly random activation order, message
construction follows the paper's CREATEMESSAGE exactly, UPDATELEAFSET
and UPDATEPREFIXTABLE semantics are unchanged, and message-drop coins
are i.i.d. per transmission.  Mean convergence curves,
convergence-cycle summaries, and transport loss fractions match the
reference engine within tight tolerances; individual trajectories do
not (and per-seed results differ between the numpy leg and the
pure-Python fallback leg, each being deterministic on its own).

Membership randomness (initial identifier draw, spawn identifiers,
NEWSCAST view seeding) still uses the reference seed tree, so a given
seed simulates the *same network* on all three engines -- differences
between engines are purely exchange randomness, which is what makes
the statistical comparison well-conditioned.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .. import seams
from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceSample
from ..core.reference import ReferenceTables
from ..engine_fast import kernels
from ..engine_fast.state import FastRegistry
from ..simulator.bootstrap_sim import SAMPLER_KINDS, SimulationResult
from ..simulator.network import NetworkModel, RELIABLE, TransportStats
from ..simulator.random_source import RandomSource, derive_seed
from . import rng as vrng
from .arena import Arena, ArenaState, SlabMeasure
from .rng import make_draw_source, sample_distinct

try:  # pragma: no cover - exercised via both backend parametrisations
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "ABSORB_MODES",
    "STATE_MODES",
    "VectorBootstrapSimulation",
    "VectorConvergenceTracker",
    "VectorNewscastView",
    "absorb_mode",
    "state_mode",
]

#: Absorb dispatch modes: ``batch`` drains each wave's surviving
#: absorbs through one segmented slab pass (``absorb_wave``);
#: ``single`` replays the per-exchange scalar path.  The two are
#: **bit-identical** (pinned by ``tests/test_engine_vector.py``); the
#: seam exists so the equivalence stays testable and the scalar path
#: stays debuggable.
ABSORB_MODES = ("batch", "single")


def absorb_mode(override: str | None = None) -> str:
    """Resolve the absorb dispatch mode (``REPRO_VECTOR_ABSORB``).

    *override* (a constructor argument) wins over the environment;
    unset means ``batch``.
    """
    mode = override
    if mode is None:
        mode = seams.get("REPRO_VECTOR_ABSORB") or "batch"
    if mode not in ABSORB_MODES:
        raise ValueError(
            f"absorb mode must be one of {ABSORB_MODES}, got {mode!r}"
        )
    return mode


#: State layouts for the numpy leg: ``arena`` keeps the whole
#: population in pool-resident structure-of-arrays slabs
#: (:mod:`repro.engine_vector.arena`); ``pernode`` keeps the original
#: per-node array objects.  The two are **bit-identical** (pinned by
#: ``tests/test_engine_vector_arena.py``); the seam keeps the
#: equivalence testable and the per-node layout debuggable.  The
#: pure-Python fallback leg keeps its set state under either value.
STATE_MODES = ("arena", "pernode")


def state_mode(override: str | None = None) -> str:
    """Resolve the state layout (``REPRO_VECTOR_STATE``).

    *override* (a constructor argument) wins over the environment;
    unset means ``arena``.
    """
    mode = override
    if mode is None:
        mode = seams.get("REPRO_VECTOR_STATE") or "arena"
    if mode not in STATE_MODES:
        raise ValueError(
            f"state mode must be one of {STATE_MODES}, got {mode!r}"
        )
    return mode


class _Layer:
    """One gossip layer's bookkeeping (order cache + transport
    accounting + cycle counter)."""

    __slots__ = ("stats", "order", "dirty", "cycle")

    def __init__(self) -> None:
        self.stats = TransportStats()
        self.order: list[int] = []
        self.dirty = True
        self.cycle = 0


class VectorNewscastView:
    """NEWSCAST view for the vector engine: the same freshest-wins
    merge mechanics as the reference/fast views, but peer picks and
    view samples are realised from pre-drawn uniforms instead of an
    owned ``random.Random`` stream."""

    __slots__ = ("own_id", "capacity", "entries", "now")

    def __init__(self, own_id: int, capacity: int) -> None:
        self.own_id = own_id
        self.capacity = capacity
        self.entries: dict[int, float] = {}
        self.now = 0.0

    def __len__(self) -> int:
        return len(self.entries)

    def select_peer(self, u: float) -> int | None:
        """Uniform pick over the view from one pre-drawn float."""
        if not self.entries:
            return None
        keys = list(self.entries)
        return keys[min(int(u * len(keys)), len(keys) - 1)]

    def payload(self) -> list[tuple[int, float]]:
        """The whole view plus the freshly-stamped own advertisement."""
        pairs = list(self.entries.items())
        pairs.append((self.own_id, self.now))
        return pairs

    def merge(self, pairs: list[tuple[int, float]]) -> None:
        """Freshest per id, truncated to the ``capacity`` freshest
        (ties broken by id) -- identical to the reference merge."""
        entries = self.entries
        own = self.own_id
        for nid, ts in pairs:
            if nid == own:
                continue
            current = entries.get(nid)
            if current is None or ts > current:
                entries[nid] = ts
        if len(entries) > self.capacity:
            survivors = sorted(
                entries.items(), key=lambda p: (-p[1], p[0])
            )[: self.capacity]
            self.entries = dict(survivors)

    def sample(self, count: int, floats: Sequence[float]) -> list[int]:
        """*count* distinct view members from pre-drawn uniforms."""
        if count <= 0 or not self.entries:
            return []
        return sample_distinct(list(self.entries), count, floats)

    def seed(self, ids: Iterable[int]) -> None:
        """Install an initial membership sample (timestamp 0)."""
        self.merge([(nid, 0.0) for nid in ids])


# ----------------------------------------------------------------------
# numpy leg: sorted-array node state + vectorised transitions
# ----------------------------------------------------------------------


class _ArrayState:
    """One node as sorted numpy arrays.

    ``leaf`` and ``prefix_ids`` are ascending uint64 id arrays (sorted
    by *id*, which makes novelty scans a ``searchsorted``);
    ``prefix_slots`` is parallel to ``prefix_ids`` (packed slot of each
    entry in this node's table) and ``slot_count`` the per-slot
    occupancy, so capacity checks and convergence measurement are pure
    fancy indexing.  ``leaf_ranked`` caches the distance-ranked leaf
    ids between membership changes (SELECTPEER's pick order); the
    ``succ_*``/``pred_*`` bounds are the UPDATELEAFSET no-op filter
    (same invariant as the fast engine's ``FastNodeState``).
    """

    __slots__ = (
        "node_id",
        "own_u64",
        "leaf",
        "leaf_ranked",
        "leaf_full",
        "succ_count",
        "succ_max",
        "pred_count",
        "pred_max",
        "accept_lo",
        "accept_hi",
        "prefix_ids",
        "prefix_slots",
        "slot_count",
        "known",
        "stats_dirty",
        "started",
        "dense_cache",
    )

    def __init__(self, node_id: int, n_slots: int) -> None:
        self.node_id = node_id
        self.own_u64 = _np.array([node_id], dtype=_np.uint64)
        self.leaf = _np.empty(0, dtype=_np.uint64)
        self.leaf_ranked: _np.ndarray | None = None
        self.leaf_full = False
        self.succ_count = 0
        self.succ_max = -1
        self.pred_count = 0
        self.pred_max = -1
        # UPDATELEAFSET admission window (valid when ``leaf_full``): a
        # candidate can change the balanced selection iff its forward
        # distance is below ``accept_lo`` (successor side) or above
        # ``accept_hi`` (predecessor side).
        self.accept_lo = _np.uint64(0)
        self.accept_hi = _np.uint64(0)
        self.prefix_ids = _np.empty(0, dtype=_np.uint64)
        self.prefix_slots = _np.empty(0, dtype=_np.int64)
        self.slot_count = _np.zeros(n_slots, dtype=_np.int64)
        # Cached sorted union of leaf + prefix + own id (the message
        # base); rebuilt lazily after membership changes.
        self.known: _np.ndarray | None = None
        # Measurement cache validity (see VectorConvergenceTracker):
        # cleared whenever either table mutates.
        self.stats_dirty = True
        self.started = False
        # Universe-dense index cache for the wave kernels, keyed per
        # table; entries self-invalidate by object identity (every
        # mutation rebinds the table array).
        self.dense_cache: dict = {}


def _not_in_sorted(sorted_arr, values):
    """Boolean mask of *values* entries absent from *sorted_arr*."""
    if sorted_arr.size == 0:
        return _np.ones(values.size, dtype=bool)
    pos = _np.searchsorted(sorted_arr, values)
    return sorted_arr[_np.minimum(pos, sorted_arr.size - 1)] != values


def _first_occurrence(keys):
    """Boolean mask keeping the first occurrence of each key, in
    input order (stable argsort: equal keys stay in input order)."""
    order = _np.argsort(keys, kind="stable")
    ks = keys[order]
    first = _np.empty(ks.size, dtype=bool)
    first[0] = True
    _np.not_equal(ks[1:], ks[:-1], out=first[1:])
    keep = _np.zeros(ks.size, dtype=bool)
    keep[order[first]] = True
    return keep


class _NumpyOps:
    """Array-native node transitions (the vector engine's fast leg)."""

    kind = "numpy"

    def __init__(self, config: BootstrapConfig) -> None:
        space = config.space
        self._mask = space.size - 1
        self._mu = _np.uint64(self._mask)
        self._half_ring = space.half
        self._half_u = _np.uint64(space.half)
        self._bits = space.bits
        self._digit_bits = space.digit_bits
        self._base_mask = space.digit_base - 1
        self._k = config.entries_per_slot
        self._c = config.leaf_set_size
        self._half_c = config.half_leaf_set
        self._n_slots = space.num_digits * space.digit_base
        self._row_of, self._shift_of = kernels.slot_tables(
            space.bits, space.digit_bits
        )

    # -- state / pool plumbing -----------------------------------------

    def new_state(self, node_id: int) -> _ArrayState:
        return _ArrayState(node_id, self._n_slots)

    def live_pool(self, ids: list[int]):
        return _np.fromiter(ids, dtype=_np.uint64, count=len(ids))

    def gather(self, pool, index_matrix):
        return pool[index_matrix]

    def oracle_samples(self, pool, index_matrix, pool_dense=None):
        """Message-sample rows, batch-sorted with duplicate masks so
        per-message union folding needs no ``np.unique``.  With
        *pool_dense* (the live pool's universe-dense indices) the rows'
        dense indices ride along, sorted by the same order -- the
        dense map is strictly monotone in the id, so sorting each
        independently yields parallel arrays -- and the wave union
        needs no per-wave ``searchsorted`` against the universe."""
        rows = pool[index_matrix]
        dup = _np.zeros(rows.shape, dtype=bool)
        dense = None if pool_dense is None else pool_dense[index_matrix]
        if rows.shape[1] > 1:
            rows.sort(axis=1)
            _np.equal(rows[:, 1:], rows[:, :-1], out=dup[:, 1:])
            if dense is not None:
                dense.sort(axis=1)
        if dense is None:
            return rows, dup
        return rows, dup, dense

    def msg_row(self, buf, i: int):
        if len(buf) == 3:
            rows, dup, dense = buf
            return rows[i], dup[i], dense[i]
        rows, dup = buf
        return rows[i], dup[i]

    def as_ids(self, ids: list[int]):
        return _np.fromiter(ids, dtype=_np.uint64, count=len(ids))

    # -- protocol transitions ------------------------------------------

    def start_node(self, state: _ArrayState, samples) -> None:
        """Protocol start: wipe the prefix table, seed the leaf set."""
        state.prefix_ids = _np.empty(0, dtype=_np.uint64)
        state.prefix_slots = _np.empty(0, dtype=_np.int64)
        state.slot_count[:] = 0
        state.known = None
        state.stats_dirty = True
        fresh = _np.unique(samples)
        fresh = fresh[fresh != state.own_u64[0]]
        fresh = fresh[_not_in_sorted(state.leaf, fresh)]
        if fresh.size:
            self._merge_fresh(state, fresh)
        state.started = True

    def select_peer(self, state: _ArrayState, u: float, fallback):
        """SELECTPEER: uniform over the closest half of the ranked
        leaf set; an empty leaf set falls back to the first fresh
        sample that is not the node itself."""
        ranked = state.leaf_ranked
        if ranked is None:
            leaf = state.leaf
            if leaf.size:
                fw = (leaf - state.own_u64[0]) & self._mu
                dist = _np.minimum(fw, (-fw) & self._mu)
                ranked = leaf[_np.lexsort((leaf, dist))]
            else:
                ranked = leaf
            state.leaf_ranked = ranked
        if ranked.size:
            half = (ranked.size + 1) // 2
            return int(ranked[min(int(u * half), half - 1)])
        own = state.node_id
        if type(fallback) is tuple:
            fallback = fallback[0]
        for nid in fallback.tolist():
            if nid != own:
                return nid
        return None

    def create_message(self, state: _ArrayState, peer_id: int, samples):
        """CREATEMESSAGE over resident arrays: the cached known-id
        union plus the novel fresh samples, then the shared close/rest
        and prefix-cap kernels.  Returns ``(close, tail, tail_slots)``
        arrays; the slots are the receiver's UPDATEPREFIXTABLE keys (a
        message is only absorbed by the peer it was created for)."""
        union = self._union(state, samples)
        # One slot pass for the whole union: the tail's capping keys
        # and the absorb side's close-part keys fall out together.
        slots = kernels.prefix_slots_arrays(
            union, peer_id, self._bits, self._digit_bits, self._base_mask
        )
        close, rest, close_slots, rest_slots = kernels.close_and_rest_with_aux(
            union,
            slots,
            peer_id,
            self._mask,
            self._half_ring,
            self._half_c,
            True,
        )
        tail, tail_slots = kernels.prefix_part_with_slots(
            rest, rest_slots, self._k
        )
        return (
            _np.concatenate((close, tail)),
            _np.concatenate((close_slots, tail_slots)),
        )

    def _union(self, state: _ArrayState, samples):
        """The CREATEMESSAGE base: the cached known union plus any
        fresh samples (unsorted tail; uniqueness is all the kernels
        need)."""
        known = state.known
        if known is None:
            known = state.known = _np.unique(
                _np.concatenate(
                    (state.leaf, state.prefix_ids, state.own_u64)
                )
            )
        if type(samples) is tuple:
            # Oracle leg: a pre-sorted row plus its duplicate mask
            # (both produced once per cycle for the whole batch; a
            # third element, the dense universe indices, rides along
            # on the numpy leg and is only used by the wave path).
            row, dup = samples[0], samples[1]
            pos = _np.minimum(
                known.searchsorted(row), known.size - 1
            )
            fresh = row[(known[pos] != row) & ~dup]
        elif samples.size:
            s = _np.unique(samples)
            pos = _np.minimum(known.searchsorted(s), known.size - 1)
            fresh = s[known[pos] != s]
        else:
            return known
        if fresh.size:
            return _np.concatenate((known, fresh))
        return known

    @staticmethod
    def _dense(state, field, values, universe):
        """Cached ``universe.searchsorted(values)`` for a node's
        slowly-changing id table.  Keyed on the identity of both the
        universe (rebuilt on membership change) and the table array
        (rebound on every mutation -- per-node arrays by assignment,
        arena views by the setters dropping their cached view), so a
        stale entry can never be returned; in the converged steady
        state every wave hits, turning the wave kernels' biggest
        ``searchsorted`` slabs into pure gathers.  Stored as int32 --
        dense indices are bounded by the universe size (< 2^31 at any
        reachable population), and the narrow dtype halves what is
        otherwise the largest per-node cache."""
        hit = state.dense_cache.get(field)
        if (
            hit is not None
            and hit[0] is universe
            and hit[1] is values
        ):
            return hit[2]
        dense = universe.searchsorted(values).astype(_np.int32)
        state.dense_cache[field] = (universe, values, dense)
        return dense

    def _seg_columns(self, states):
        """The wave absorb's per-segment scalar columns (own id,
        leaf-full flag, admission window) plus the concatenated
        occupancy slab, one entry/row per receiving state.  The arena
        layout overrides this with pure slab gathers."""
        own = _np.array(
            [state.node_id for state in states], dtype=_np.uint64
        )
        full = _np.array(
            [state.leaf_full for state in states], dtype=bool
        )
        lo = _np.array(
            [state.accept_lo for state in states], dtype=_np.uint64
        )
        hi = _np.array(
            [state.accept_hi for state in states], dtype=_np.uint64
        )
        occ = _np.concatenate([state.slot_count for state in states])
        return own, full, lo, hi, occ

    def _union_wave(self, jobs, universe, samples=None):
        """Every job's CREATEMESSAGE union in one slab pass.

        Returns ``(u, lens, u_dense)``: the concatenated per-job
        unions, their lengths, and the unions' dense ``universe``
        indices (``None`` on the fallback path).  On the oracle leg
        (equal-length pre-sorted sample rows, all ids drawn from the
        live pool and therefore present in *universe*) the per-job
        novelty scans collapse into a single ``searchsorted`` of the
        wave's sample slab against the concatenated known slab, keyed
        ``segment * len(universe) + dense`` exactly like the wave
        absorb; anything else falls back to the scalar :meth:`_union`
        per job.  *samples* is the optional ``(sample_buf,
        row_indices)`` fast path from :meth:`create_wave_flat`: the
        rows (and their duplicate masks and dense indices) are
        gathered straight from the batch buffer, skipping the
        per-message stack of the jobs' row views -- the gathered
        values are identical by construction.
        """
        if universe is None or (
            samples is None
            and any(type(s) is not tuple for _, _, s in jobs)
        ):
            unions = [
                self._union(state, samples) for state, _, samples in jobs
            ]
            lens = _np.array([u.size for u in unions], dtype=_np.intp)
            return _np.concatenate(unions), lens, None
        m_count = len(jobs)
        knowns = []
        denses = []
        dense = self._dense
        for state, _, _ in jobs:
            known = state.known
            if known is None:
                known = state.known = _np.unique(
                    _np.concatenate(
                        (state.leaf, state.prefix_ids, state.own_u64)
                    )
                )
                known = state.known
            knowns.append(known)
            denses.append(dense(state, "known", known, universe))
        k_lens = _np.array([k.size for k in knowns], dtype=_np.intp)
        kn = _np.concatenate(knowns)
        kn_dense = _np.concatenate(denses)
        if samples is not None:
            buf, row_idx = samples
            rows = buf[0][row_idx]
            dups = buf[1][row_idx]
        else:
            rows = _np.stack([s[0] for _, _, s in jobs])
            dups = _np.stack([s[1] for _, _, s in jobs])
        cr = rows.shape[1]
        if not cr:
            return kn, k_lens, kn_dense
        u_size = universe.size
        row_flat = rows.ravel()
        if samples is not None and len(buf) == 3:
            row_dense = buf[2][row_idx].reshape(-1)
        elif samples is None and len(jobs[0][2]) == 3:
            # The oracle buffer already carries the rows' dense
            # indices (gathered from the live pool's, once per cycle).
            row_dense = _np.stack(
                [s[2] for _, _, s in jobs]
            ).reshape(-1)
        else:
            row_dense = universe.searchsorted(row_flat).astype(_np.intp)
        seg_of_kn = _np.repeat(kernels._arange(m_count), k_lens)
        seg_of_row = _np.repeat(kernels._arange(m_count), cr)
        if m_count * u_size <= (1 << 23):
            # Small frames (the bench sizes): one boolean membership
            # plane per job beats the composite-key binary search --
            # scatter the knowns, gather the samples.  Same booleans,
            # ~5x cheaper in the converged steady state where the
            # whole pass exists only to discover nothing is novel.
            # Past ~8 MB of plane the zeroing and cache misses eat the
            # win and the binary search takes over (identical output).
            plane = _np.zeros(m_count * u_size, dtype=bool)
            plane[seg_of_kn * u_size + kn_dense] = True
            novel = ~plane[seg_of_row * u_size + row_dense]
            novel &= ~dups.ravel()
        else:
            kn_key = seg_of_kn * u_size + kn_dense
            row_key = seg_of_row * u_size + row_dense
            pos = _np.minimum(
                kn_key.searchsorted(row_key), kn_key.size - 1
            )
            novel = (kn_key[pos] != row_key) & ~dups.ravel()
        if not novel.any():
            # Converged steady state: every sample is already known,
            # so the unions are exactly the cached known slab.
            return kn, k_lens, kn_dense
        fresh_counts = novel.reshape(m_count, cr).sum(axis=1)
        lens = k_lens + fresh_counts
        offs = _np.cumsum(lens) - lens
        u = _np.empty(int(lens.sum()), dtype=_np.uint64)
        u_dense = _np.empty(u.size, dtype=_np.intp)
        k_within = kernels._arange(kn.size) - _np.repeat(
            _np.cumsum(k_lens) - k_lens, k_lens
        )
        k_dest = _np.repeat(offs, k_lens) + k_within
        u[k_dest] = kn
        u_dense[k_dest] = kn_dense
        fresh_ids = row_flat[novel]
        f_within = kernels._arange(fresh_ids.size) - _np.repeat(
            _np.cumsum(fresh_counts) - fresh_counts, fresh_counts
        )
        f_dest = _np.repeat(offs + k_lens, fresh_counts) + f_within
        u[f_dest] = fresh_ids
        u_dense[f_dest] = row_dense[novel]
        return u, lens, u_dense

    def create_wave_flat(self, jobs, universe=None, samples=None):
        """CREATEMESSAGE for a whole wave of exchanges in one
        segmented batch, returned in flat slab form.

        *jobs* is a list of ``(state, peer_id, samples)`` message
        specifications; the result is ``(ids_flat, slots_flat,
        dense_flat, bounds)`` -- message ``m`` of the wave is rows
        ``bounds[m]:bounds[m + 1]`` of each slab (``dense_flat`` is
        ``None`` off the oracle leg).  *samples*, when given, is
        ``(sample_buf, row_indices)`` -- the cycle's batch sample
        buffer plus each job's row in it -- letting the union gather
        the wave's sample rows in three fancy-index ops instead of
        re-stacking the jobs' per-message views.  All messages are built from
        wave-start state (the cycle loop applies the wave's absorbs
        afterwards), which is the vector engine's scheduling
        relaxation: a message cannot see updates applied earlier
        *within the same wave* -- with wave size ``W`` of ``n``
        nodes, the probability that this hides a same-cycle update
        that the strictly sequential engines would have exposed is
        about ``W/n`` per exchange.  The payoff is that ranking,
        balanced selection, slot geometry and the prefix cap each run
        as one segmented numpy pass over every message of the wave,
        amortising per-call dispatch that otherwise dominates the
        engine.

        Per message the construction is exactly CREATEMESSAGE: one
        row-wise rank keyed ``(message, ring distance)`` orders every
        union at once, the balanced-close thresholds become per-row
        broadcasts, and the first-``k``-per-slot cap runs once with
        segment-shifted slot keys so equal slots never group across
        messages.
        """
        m_count = len(jobs)
        u, lens, u_dense = self._union_wave(jobs, universe, samples)
        peer_list = _np.array(
            [peer for _, peer, _ in jobs], dtype=_np.uint64
        )
        seg_base = kernels._arange(m_count) * self._n_slots
        # Rank every union at once, natively in a padded 2-D frame
        # (row = message, columns = union in segment order).  The
        # ``(message, ring distance)`` lexsort is equivalent to one
        # row-wise argsort over the padded distance matrix (sentinel =
        # ring max, strictly above any real distance, so padding ranks
        # last) -- same stable positional tie-break, ~4x cheaper than
        # the two radix passes of the two-key lexsort -- and the
        # balanced-close thresholds become per-row broadcasts instead
        # of segment-repeated slabs.
        l_max = int(lens.max())
        valid = kernels._arange(l_max)[None, :] < lens[:, None]
        sentinel = _np.uint64(0xFFFFFFFFFFFFFFFF)
        pad_u = _np.full((m_count, l_max), sentinel)
        pad_u[valid] = u
        if self._mask == 0xFFFFFFFFFFFFFFFF:
            fw = pad_u - peer_list[:, None]
            bw = -fw
        else:
            fw = (pad_u - peer_list[:, None]) & self._mu
            bw = (-fw) & self._mu
        dist = _np.where(valid, _np.minimum(fw, bw), sentinel)
        order2d = _np.argsort(dist, axis=1, kind="stable")
        ranked = _np.take_along_axis(pad_u, order2d, axis=1)
        succ = _np.take_along_axis(fw <= self._half_u, order2d, axis=1)
        succ &= valid
        cs = _np.cumsum(succ, axis=1)
        has_p = ranked[:, 0] == peer_list
        n_succ_seg = cs[:, -1] - has_p
        ts, tp = kernels.balanced_counts_arrays(
            n_succ_seg, lens - has_p - n_succ_seg, self._half_c
        )
        # Running successor count ``cs`` and predecessor count
        # ``col + 1 - cs`` against per-row thresholds: keep the first
        # ``ts`` successors / ``tp`` predecessors in distance order.
        # The peer itself ranks first (distance zero, unique) and is
        # excluded from both the close part and the tail.
        pred = (kernels._arange(l_max)[None, :] + 1) - cs
        keep = _np.where(
            succ, cs <= (ts + has_p)[:, None], pred <= tp[:, None]
        )
        keep &= valid
        keep[:, 0] &= ~has_p
        rest2 = valid & ~keep
        rest2[:, 0] &= ~has_p
        slots = kernels.prefix_slots_arrays(
            ranked,
            peer_list[:, None],
            self._bits,
            self._digit_bits,
            self._base_mask,
        )
        # One cap pass over every tail; per-segment key shifts keep
        # equal slots of different messages in separate groups.  The
        # cap preserves input order, so kept ids stay grouped by
        # message and split back on per-segment kept counts.  int32
        # keys when the shifted range fits: the stable argsort inside
        # the cap is a radix sort, noticeably faster on 4-byte keys.
        shifted = slots + seg_base[:, None]
        if m_count * self._n_slots <= 0x7FFFFFFF:
            shifted = shifted.astype(_np.int32)
        rest_ids = ranked[rest2]
        rest_keys = shifted[rest2]
        if u_dense is not None:
            pad_dense = _np.empty((m_count, l_max), dtype=_np.intp)
            pad_dense[valid] = u_dense
            ranked_dense = _np.take_along_axis(
                pad_dense, order2d, axis=1
            )
            tail_all, tail_keys, tail_dense = kernels.prefix_part_with_slots(
                rest_ids, rest_keys, self._k, ranked_dense[rest2]
            )
        else:
            tail_all, tail_keys = kernels.prefix_part_with_slots(
                rest_ids, rest_keys, self._k
            )
        tail_seg = tail_keys // self._n_slots
        tail_slots = tail_keys - tail_seg * self._n_slots
        tail_counts = _np.bincount(tail_seg, minlength=m_count)
        tail_offs = _np.zeros(m_count + 1, dtype=_np.intp)
        _np.cumsum(tail_counts, out=tail_offs[1:])
        # Batched per-message assembly: row-major boolean compress
        # keeps the close ids grouped by message, and so are the
        # capped tail ids, so scattering both slabs through computed
        # destinations interleaves them as ``close_m, tail_m`` per
        # message without a per-message Python loop.
        close_all = ranked[keep]
        close_slots_all = slots[keep]
        close_counts = keep.sum(axis=1)
        close_offs = _np.zeros(m_count + 1, dtype=_np.intp)
        _np.cumsum(close_counts, out=close_offs[1:])
        bounds = close_offs + tail_offs
        c_dest = _np.repeat(bounds[:-1], close_counts) + (
            kernels._arange(close_all.size)
            - _np.repeat(close_offs[:-1], close_counts)
        )
        t_dest = _np.repeat(
            bounds[:-1] + close_counts, tail_counts
        ) + (
            kernels._arange(tail_all.size)
            - _np.repeat(tail_offs[:-1], tail_counts)
        )
        ids_flat = _np.empty(int(bounds[-1]), dtype=_np.uint64)
        slots_flat = _np.empty(int(bounds[-1]), dtype=_np.int64)
        ids_flat[c_dest] = close_all
        ids_flat[t_dest] = tail_all
        slots_flat[c_dest] = close_slots_all
        slots_flat[t_dest] = tail_slots
        if u_dense is None:
            return ids_flat, slots_flat, None, bounds
        # Thread each id's dense universe index through to the wave
        # absorb: its candidate slab then keys straight off the
        # message payloads instead of re-searching the universe.
        dense_flat = _np.empty(int(bounds[-1]), dtype=_np.intp)
        dense_flat[c_dest] = ranked_dense[keep]
        dense_flat[t_dest] = tail_dense
        return ids_flat, slots_flat, dense_flat, bounds

    def create_wave(self, jobs, universe=None):
        """Per-message view of :meth:`create_wave_flat`: the same
        construction, sliced into one ``(ids, slots[, dense])`` tuple
        per job for the scalar absorb paths and per-message
        comparisons."""
        ids_flat, slots_flat, dense_flat, bounds = self.create_wave_flat(
            jobs, universe
        )
        bl = bounds.tolist()
        if dense_flat is None:
            return [
                (ids_flat[bl[m]:bl[m + 1]], slots_flat[bl[m]:bl[m + 1]])
                for m in range(len(jobs))
            ]
        return [
            (
                ids_flat[bl[m]:bl[m + 1]],
                slots_flat[bl[m]:bl[m + 1]],
                dense_flat[bl[m]:bl[m + 1]],
            )
            for m in range(len(jobs))
        ]

    def absorb(self, state: _ArrayState, message, sender_id: int) -> None:
        """UPDATELEAFSET + UPDATEPREFIXTABLE of one message, all in
        array ops: novelty via ``searchsorted`` on the sorted resident
        arrays, slot capping via a stable grouped rank against current
        occupancy (first-come in message order, exactly the reference's
        sequential fill), then one balanced reselect when a novel id
        lands inside the admission window (ids outside it provably
        cannot change the balanced selection).  The envelope sender is
        processed last on a scalar path (it may duplicate a payload
        id)."""
        ids, slots = message[0], message[1]
        if ids.size:
            prefix_ids = state.prefix_ids
            if prefix_ids.size:
                pos = _np.minimum(
                    prefix_ids.searchsorted(ids), prefix_ids.size - 1
                )
                novel = prefix_ids[pos] != ids
                nids = ids[novel]
                nslots = slots[novel]
            else:
                nids, nslots = ids, slots
            if nids.size:
                # Slots already at capacity cannot admit; in the
                # converged steady state this empties the candidate
                # set and skips the grouped-rank machinery entirely.
                open_slot = state.slot_count[nslots] < self._k
                if open_slot.any():
                    self._fill_slots(
                        state, nids[open_slot], nslots[open_slot]
                    )
            if state.leaf_full:
                fw = (ids - state.own_u64[0]) & self._mu
                cand = ids[
                    (fw < state.accept_lo) | (fw > state.accept_hi)
                ]
                if cand.size:
                    leaf = state.leaf
                    pos = _np.minimum(
                        leaf.searchsorted(cand), leaf.size - 1
                    )
                    fresh = cand[leaf[pos] != cand]
                    if fresh.size:
                        self._merge_fresh(state, fresh)
            else:
                fresh = ids[_not_in_sorted(state.leaf, ids)]
                if fresh.size:
                    self._merge_fresh(state, fresh)
        self._absorb_single(state, sender_id)

    def absorb_wave(self, jobs, universe) -> None:
        """One wave's surviving absorbs as a segmented slab pass.

        *jobs* is the arrival-ordered list of ``(state, message,
        sender_id)`` absorbs of one wave; *universe* is the sorted
        uint64 array of **every identifier ever admitted** to the
        network (dead ids stay: they persist in tables and messages).
        The wave's candidates are laid out as one contiguous id slab
        with per-segment offset/length arrays -- a segment is one
        receiving node, its messages kept in arrival order -- and the
        per-exchange novelty/dedup/cap scans become whole-wave kernel
        calls:

        * every id maps to its dense ``universe`` index, so the
          composite key ``segment * len(universe) + dense`` makes the
          concatenated (per-node sorted) resident tables a *globally*
          sorted slab -- novelty for the whole wave is a single
          ``searchsorted``, not one per message;
        * first-occurrence dedup per ``(segment, id)`` via one
          ``lexsort`` reproduces the sequential scan exactly: a
          repeated id is always a no-op on the scalar path (admitted
          ids are resident, rejected ids face the same full slot);
        * slot capping is the same stable grouped rank as the scalar
          fill, keyed by ``segment * n_slots + slot`` against a
          concatenated occupancy slab, so first-come order within a
          receiver is preserved across its messages;
        * UPDATELEAFSET applies the wave-start admission windows and
          folds each segment's surviving candidates through one
          balanced reselect.  This is bit-identical to the sequential
          merges because balanced selection is an associative fold:
          take-counts are monotone in the candidate set, so an id a
          sequential intermediate window would have dropped is dropped
          by the final reselect too (and ids the stale wave-start
          window over-admits are exactly those, see ``_ArrayState``).

        The result is bit-identical to replaying ``absorb`` per job
        (the ``single`` mode; pinned by the engine test suite).
        """
        if not jobs:
            return
        # Group jobs by receiver, first-appearance segment order;
        # each receiver's messages stay in wave order.
        seg_of: dict[int, int] = {}
        per_seg: list[tuple[_ArrayState, list[tuple]]] = []
        for state, message, sender in jobs:
            s = seg_of.get(id(state))
            if s is None:
                s = seg_of[id(state)] = len(per_seg)
                per_seg.append((state, []))
            per_seg[s][1].append((message, sender))
        n_seg = len(per_seg)
        # Envelope senders join the candidate stream after their
        # message's payload; their slots are one batched mixed-origin
        # kernel call (the scalar path computes them one at a time).
        sender_ids: list[int] = []
        sender_owner: list[int] = []
        for state, msgs in per_seg:
            own = state.node_id
            for _, sender in msgs:
                if sender != own:
                    sender_ids.append(sender)
                    sender_owner.append(own)
        s_ids = _np.array(sender_ids, dtype=_np.uint64)
        s_slots = kernels.prefix_slots_arrays(
            s_ids,
            _np.array(sender_owner, dtype=_np.uint64),
            self._bits,
            self._digit_bits,
            self._base_mask,
        )
        s_dense = universe.searchsorted(s_ids).astype(_np.intp)
        id_pieces: list[_np.ndarray] = []
        slot_pieces: list[_np.ndarray] = []
        dense_pieces: list[_np.ndarray] = []
        has_dense = True
        seg_len = _np.zeros(n_seg, dtype=_np.intp)
        si = 0
        for s, (state, msgs) in enumerate(per_seg):
            own = state.node_id
            total = 0
            for msg, sender in msgs:
                ids = msg[0]
                id_pieces.append(ids)
                slot_pieces.append(msg[1])
                if len(msg) == 3:
                    dense_pieces.append(msg[2])
                else:
                    has_dense = False
                total += ids.size
                if sender != own:
                    id_pieces.append(s_ids[si:si + 1])
                    slot_pieces.append(s_slots[si:si + 1])
                    dense_pieces.append(s_dense[si:si + 1])
                    si += 1
                    total += 1
            seg_len[s] = total
        cand_ids = _np.concatenate(id_pieces)
        m = cand_ids.size
        if not m:
            return
        cand_slots = _np.concatenate(slot_pieces)
        cand_seg = _np.repeat(kernels._arange(n_seg), seg_len)
        # Messages from the batched create carry their ids' dense
        # indices; then the candidate slab needs no universe search
        # (only the handful of envelope senders were looked up above).
        if has_dense:
            cand_dense = _np.concatenate(dense_pieces)
        else:
            cand_dense = universe.searchsorted(cand_ids).astype(_np.intp)
        self._absorb_candidates(
            per_seg, cand_ids, cand_slots, cand_dense, cand_seg, universe
        )

    def _resident_keys(self, per_seg, universe, u_size):
        """Concatenated ``segment * u_size + dense`` keys of every
        receiver's resident prefix ids -- sorted, because each table
        is sorted and segments concatenate in order -- or ``None``
        when no receiver has any.  The arena layout overrides this
        (and :meth:`_leaf_keys`) with ragged slab gathers over
        pool-resident dense caches: no per-segment Python at all."""
        dense = self._dense
        pieces = [state.prefix_ids for state, _ in per_seg]
        lens = _np.array([p.size for p in pieces], dtype=_np.intp)
        if not int(lens.sum()):
            return None
        return _np.repeat(
            kernels._arange(len(per_seg)), lens
        ) * u_size + _np.concatenate(
            [
                dense(state, "prefix", p, universe)
                for (state, _), p in zip(per_seg, pieces)
            ]
        )

    def _leaf_keys(self, per_seg, universe, u_size):
        """Concatenated composite keys of every receiver's leaf set
        (see :meth:`_resident_keys`), or ``None`` when all empty."""
        dense = self._dense
        pieces = [state.leaf for state, _ in per_seg]
        lens = _np.array([p.size for p in pieces], dtype=_np.intp)
        if not int(lens.sum()):
            return None
        return _np.repeat(
            kernels._arange(len(per_seg)), lens
        ) * u_size + _np.concatenate(
            [
                dense(state, "leaf", p, universe)
                for (state, _), p in zip(per_seg, pieces)
            ]
        )

    def _absorb_candidates(
        self, per_seg, cand_ids, cand_slots, cand_dense, cand_seg, universe
    ) -> None:
        """The shared core of the wave absorb: gate, dedup, cap and
        apply one assembled candidate slab (see :meth:`absorb_wave`
        for the semantics argument)."""
        n_seg = len(per_seg)
        u_size = universe.size
        ckey = cand_seg * u_size + cand_dense
        if n_seg * u_size <= 0x7FFFFFFF:
            # 4-byte keys keep the stable radix argsort below fast.
            ckey = ckey.astype(_np.int32)
        # Duplicate copies of an id within a segment all face
        # identical gates -- the slot, its occupancy, and the
        # admission window are functions of (receiver, id) alone --
        # so the first-occurrence dedup commutes with the gate masks
        # and runs on the small gated subsets instead of the whole
        # candidate slab (the scalar replay's "repeated id is a
        # no-op" shows up here as: only the first copy survives the
        # subset dedup, and every copy carries the same verdict).
        own_arr, full_arr, lo_arr, hi_arr, occ_slab = self._seg_columns(
            [state for state, _ in per_seg]
        )
        # UPDATEPREFIXTABLE: the cheap occupancy gate first (a gather
        # and a compare); dedup, novelty against the resident slab and
        # the grouped first-come cap touch open-slot candidates only
        # -- in the converged steady state almost every slot a
        # candidate maps to is already at capacity, so the expensive
        # sort/search machinery shrinks to a sliver of the wave.
        slot_key = cand_seg * self._n_slots + cand_slots
        open_mask = occ_slab[slot_key] < self._k
        if open_mask.any():
            o_idx = _np.nonzero(open_mask)[0]
            o_idx = o_idx[_first_occurrence(ckey[o_idx])]
            o_key = ckey[o_idx]
            res_key = self._resident_keys(per_seg, universe, u_size)
            if res_key is not None:
                pos = _np.minimum(
                    res_key.searchsorted(o_key), res_key.size - 1
                )
                o_idx = o_idx[res_key[pos] != o_key]
        else:
            o_idx = _np.empty(0, dtype=_np.intp)
        if o_idx.size:
            c_key = slot_key[o_idx]
            order2 = _np.argsort(c_key, kind="stable")
            ss = c_key[order2]
            cm = ss.size
            idx = _np.arange(cm)
            new_group = _np.empty(cm, dtype=bool)
            new_group[0] = True
            _np.not_equal(ss[1:], ss[:-1], out=new_group[1:])
            group_start = _np.maximum.accumulate(
                _np.where(new_group, idx, 0)
            )
            keep_sorted = (idx - group_start) < (self._k - occ_slab[ss])
            if keep_sorted.any():
                adm_idx = o_idx[_np.sort(order2[keep_sorted])]
                a_seg = cand_seg[adm_idx]
                bounds = _np.searchsorted(
                    a_seg, kernels._arange(n_seg + 1)
                )
                segs = _np.nonzero(bounds[1:] > bounds[:-1])[0]
                a_ids = cand_ids[adm_idx]
                a_slots = cand_slots[adm_idx]
                for s in segs.tolist():
                    lo, hi = bounds[s], bounds[s + 1]
                    self._apply_admitted(
                        per_seg[s][0], a_ids[lo:hi], a_slots[lo:hi]
                    )
        # UPDATELEAFSET: the wave-start admission windows gate first,
        # then dedup + one leaf-slab novelty scan over the gated
        # subset, one balanced reselect per touched segment.
        fw = (cand_ids - own_arr[cand_seg]) & self._mu
        leaf_cand = ~full_arr[cand_seg] | (fw < lo_arr[cand_seg]) | (
            fw > hi_arr[cand_seg]
        )
        if not leaf_cand.any():
            return
        l_idx = _np.nonzero(leaf_cand)[0]
        l_idx = l_idx[_first_occurrence(ckey[l_idx])]
        lf_key = self._leaf_keys(per_seg, universe, u_size)
        if lf_key is not None:
            q = ckey[l_idx]
            pos = _np.minimum(
                lf_key.searchsorted(q), lf_key.size - 1
            )
            f_idx = l_idx[lf_key[pos] != q]
        else:
            f_idx = l_idx
        if not f_idx.size:
            return
        f_seg = cand_seg[f_idx]
        fbounds = _np.searchsorted(f_seg, kernels._arange(n_seg + 1))
        fsegs = _np.nonzero(fbounds[1:] > fbounds[:-1])[0]
        f_ids = cand_ids[f_idx]
        for s in fsegs.tolist():
            lo, hi = fbounds[s], fbounds[s + 1]
            self._merge_fresh(per_seg[s][0], f_ids[lo:hi])

    def absorb_wave_flat(self, wave, specs, universe) -> None:
        """:meth:`absorb_wave` fed straight from the flat wave slabs.

        *wave* is :meth:`create_wave_flat`'s return value; *specs* is
        the arrival-ordered list of surviving ``(state, message_index,
        sender_id)`` absorbs.  Semantics are exactly
        :meth:`absorb_wave` over the equivalent sliced messages -- the
        candidate slab is simply assembled by one vectorised gather
        through the message bounds (payload rows, then the envelope
        sender row after each message that has one) instead of
        per-message tuple views and re-concatenation.
        """
        if not specs:
            return
        ids_flat, slots_flat, dense_flat, bounds = wave
        # Group by receiver, first-appearance segment order; each
        # receiver's messages stay in wave order.
        seg_of: dict[int, int] = {}
        per_seg: list[tuple[_ArrayState, None]] = []
        seg_msgs: list[list[tuple[int, int]]] = []
        for state, mi_, sender in specs:
            s = seg_of.get(id(state))
            if s is None:
                s = seg_of[id(state)] = len(per_seg)
                per_seg.append((state, None))
                seg_msgs.append([])
            seg_msgs[s].append(
                (mi_, sender if sender != state.node_id else -1)
            )
        n_seg = len(per_seg)
        mi_list: list[int] = []
        aseg: list[int] = []
        sender_ids: list[int] = []
        sender_owner: list[int] = []
        has_s: list[bool] = []
        for s, msgs in enumerate(seg_msgs):
            own = per_seg[s][0].node_id
            for mi_, sender in msgs:
                mi_list.append(mi_)
                aseg.append(s)
                if sender >= 0:
                    has_s.append(True)
                    sender_ids.append(sender)
                    sender_owner.append(own)
                else:
                    has_s.append(False)
        s_ids = _np.array(sender_ids, dtype=_np.uint64)
        s_slots = kernels.prefix_slots_arrays(
            s_ids,
            _np.array(sender_owner, dtype=_np.uint64),
            self._bits,
            self._digit_bits,
            self._base_mask,
        )
        s_dense = universe.searchsorted(s_ids).astype(_np.intp)
        mi_arr = _np.array(mi_list, dtype=_np.intp)
        b0 = bounds[mi_arr]
        mlen = bounds[mi_arr + 1] - b0
        sflag = _np.array(has_s)
        plen = mlen + sflag
        cum = _np.cumsum(plen)
        total = int(cum[-1])
        if not total:
            return
        # Ragged gather: positions below a message's length read its
        # payload rows from the wave slabs; the one position past the
        # end (present when the flag is set) reads the precomputed
        # sender row appended after the slabs.
        within = kernels._arange(total) - _np.repeat(cum - plen, plen)
        pay = within < _np.repeat(mlen, plen)
        src = _np.where(
            pay,
            _np.repeat(b0, plen) + within,
            ids_flat.size + _np.repeat(_np.cumsum(sflag) - sflag, plen),
        )
        cand_ids = _np.concatenate((ids_flat, s_ids))[src]
        cand_slots = _np.concatenate((slots_flat, s_slots))[src]
        if dense_flat is not None:
            cand_dense = _np.concatenate((dense_flat, s_dense))[src]
        else:
            cand_dense = universe.searchsorted(cand_ids).astype(_np.intp)
        cand_seg = _np.repeat(_np.array(aseg, dtype=_np.intp), plen)
        self._absorb_candidates(
            per_seg, cand_ids, cand_slots, cand_dense, cand_seg, universe
        )

    def _fill_slots(self, state: _ArrayState, nids, nslots) -> None:
        """Admit novel ids into the prefix table, first-come per slot
        up to ``k``, honouring existing occupancy."""
        order = _np.argsort(nslots, kind="stable")
        ss = nslots[order]
        m = ss.size
        idx = _np.arange(m)
        new_group = _np.empty(m, dtype=bool)
        new_group[0] = True
        _np.not_equal(ss[1:], ss[:-1], out=new_group[1:])
        group_start = _np.maximum.accumulate(_np.where(new_group, idx, 0))
        keep_sorted = (idx - group_start) < (self._k - state.slot_count[ss])
        if not keep_sorted.any():
            return
        kept = order[keep_sorted]
        self._apply_admitted(state, nids[kept], nslots[kept])

    def _apply_admitted(self, state: _ArrayState, kids, kslots) -> None:
        """Install already-capped admissions into the resident arrays
        (shared by the scalar fill and the segmented wave absorb)."""
        _np.add.at(state.slot_count, kslots, 1)
        # Sorted-insert instead of re-sorting the whole table: kids is
        # small, the resident arrays stay id-sorted.
        ksort_order = _np.argsort(kids, kind="stable")
        ksort = kids[ksort_order]
        pos = state.prefix_ids.searchsorted(ksort)
        state.prefix_ids = _np.insert(state.prefix_ids, pos, ksort)
        state.prefix_slots = _np.insert(
            state.prefix_slots, pos, kslots[ksort_order]
        )
        state.stats_dirty = True
        known = state.known
        if known is not None:
            # Admitted ids are novel to the prefix table but may
            # already sit in the known union via the leaf set.
            kpos = _np.minimum(known.searchsorted(ksort), known.size - 1)
            add = known[kpos] != ksort
            if add.all():
                state.known = _np.insert(
                    known, known.searchsorted(ksort), ksort
                )
            elif add.any():
                sub = ksort[add]
                state.known = _np.insert(
                    known, known.searchsorted(sub), sub
                )

    def _merge_fresh(self, state: _ArrayState, fresh) -> None:
        """Reselect the leaf membership after novel candidates."""
        candidates = _np.concatenate((state.leaf, fresh))
        if candidates.size <= self._c:
            self._set_leaf(state, _np.sort(candidates))
        else:
            self._set_leaf(
                state,
                _np.sort(
                    kernels.select_balanced_arrays(
                        candidates,
                        state.node_id,
                        self._mask,
                        self._half_ring,
                        self._half_c,
                    )
                ),
            )

    def _set_leaf(self, state: _ArrayState, arr) -> None:
        if arr.size == state.leaf.size and _np.array_equal(arr, state.leaf):
            # The balanced reselect rejected every candidate: nothing
            # changed, so the ranked/known caches and the tracker's
            # cached deficit all stay valid.
            return
        state.leaf = arr
        state.leaf_ranked = None
        state.known = None
        state.stats_dirty = True
        fw = (arr - state.own_u64[0]) & self._mu
        succ = fw <= self._half_u
        n_succ = int(succ.sum())
        state.succ_count = n_succ
        state.pred_count = arr.size - n_succ
        state.succ_max = int(fw[succ].max()) if n_succ else -1
        if arr.size - n_succ:
            state.pred_max = int((((-fw) & self._mu)[~succ]).max())
        else:
            state.pred_max = -1
        state.leaf_full = arr.size >= self._c
        if state.leaf_full:
            # Admission window (see _ArrayState): a short side accepts
            # its whole half-ring, a full side only below/above its
            # worst kept distance.
            if state.succ_count < self._half_c:
                state.accept_lo = _np.uint64(self._half_ring + 1)
            else:
                state.accept_lo = _np.uint64(state.succ_max)
            if state.pred_count < self._half_c:
                state.accept_hi = self._half_u
            else:
                # pred_max >= 1 when the side is full, so this always
                # fits the ring's unsigned width.
                state.accept_hi = _np.uint64(
                    self._mask - state.pred_max + 1
                )

    def _absorb_single(self, state: _ArrayState, nid: int) -> None:
        """Scalar absorb of one id (the envelope sender)."""
        own = state.node_id
        if nid == own:
            return
        value = _np.uint64(nid)
        prefix_ids = state.prefix_ids
        pos = int(prefix_ids.searchsorted(value))
        if pos == prefix_ids.size or int(prefix_ids[pos]) != nid:
            row = self._row_of[(own ^ nid).bit_length()]
            slot = (row << self._digit_bits) | (
                (nid >> self._shift_of[row]) & self._base_mask
            )
            if state.slot_count[slot] < self._k:
                state.slot_count[slot] += 1
                state.prefix_ids = _np.insert(prefix_ids, pos, value)
                state.prefix_slots = _np.insert(
                    state.prefix_slots, pos, slot
                )
                state.stats_dirty = True
                known = state.known
                if known is not None:
                    kpos = int(known.searchsorted(value))
                    if kpos == known.size or int(known[kpos]) != nid:
                        state.known = _np.insert(known, kpos, value)
        fw = (nid - own) & self._mask
        if state.leaf_full:
            if not (fw < int(state.accept_lo) or fw > int(state.accept_hi)):
                return
        leaf = state.leaf
        lpos = int(leaf.searchsorted(value))
        if lpos == leaf.size or int(leaf[lpos]) != nid:
            self._merge_fresh(state, _np.array([nid], dtype=_np.uint64))

    # -- convergence measurement ---------------------------------------

    def live_view(self, ids: Sequence[int]):
        return _np.fromiter(ids, dtype=_np.uint64, count=len(ids))

    def pack_perfect(self, reference: ReferenceTables, node_id: int):
        """Cacheable per-node perfect-table arrays."""
        leaf = _np.fromiter(
            sorted(reference.perfect_leaf_ids(node_id)), dtype=_np.uint64
        )
        items = reference.perfect_prefix_counts(node_id).items()
        db = self._digit_bits
        pslots = _np.array(
            [(row << db) | col for (row, col), _ in items], dtype=_np.int64
        )
        needed = _np.array([need for _, need in items], dtype=_np.int64)
        return leaf, pslots, needed

    def node_missing(
        self, state: _ArrayState, packed, live, check_live: bool
    ) -> tuple[int, int]:
        """(missing leaf entries, missing prefix entries) of one node.

        Perfect ids are live by construction, so dead leaf entries
        never match and need no explicit filtering; prefix occupancy
        is live-filtered only when the run has ever killed a node.
        """
        perfect_leaf, pslots, needed = packed
        missing_leaf = perfect_leaf.size
        if state.leaf.size and missing_leaf:
            pos = _np.searchsorted(state.leaf, perfect_leaf)
            present = (
                state.leaf[_np.minimum(pos, state.leaf.size - 1)]
                == perfect_leaf
            )
            missing_leaf -= int(present.sum())
        if not pslots.size:
            return missing_leaf, 0
        have = None
        if check_live and state.prefix_ids.size:
            alive = ~_not_in_sorted(live, state.prefix_ids)
            if not alive.all():
                counts = _np.bincount(
                    state.prefix_slots[alive], minlength=self._n_slots
                )
                have = counts[pslots]
        if have is None:
            have = state.slot_count[pslots]
        missing_prefix = int(_np.maximum(needed - have, 0).sum())
        return missing_leaf, missing_prefix


class _ArenaOps(_NumpyOps):
    """The numpy transitions bound to pool-resident arena state.

    Every protocol kernel is inherited unchanged --
    :class:`~repro.engine_vector.arena.ArenaState` exposes the exact
    ``_ArrayState`` attribute surface as properties over the slabs --
    which is what makes the two layouts bit-identical by construction.
    What the arena layout adds is the batched plumbing the per-node
    layout cannot offer: rank allocation and recycling, whole-chunk
    peer selection (:meth:`select_wave`), and the slab-scan
    convergence measurer (:meth:`slab_measurer`).
    """

    def __init__(self, config: BootstrapConfig, capacity: int = 64) -> None:
        super().__init__(config)
        self.arena = Arena(self._n_slots, self._c, capacity)

    def new_state(self, node_id: int) -> ArenaState:
        arena = self.arena
        return ArenaState(arena, arena.allocate(node_id), node_id)

    def release_state(self, state: ArenaState) -> None:
        """Return a killed node's rank (the cycle driver's hook)."""
        self.arena.release(state.rank)

    def slab_measurer(self, states, reference, live) -> SlabMeasure:
        """A slab-scan deficit measurer bound to *states* (the
        tracker's hook; see :class:`SlabMeasure`)."""
        return SlabMeasure(self, self.arena, states, reference, live)

    def _seg_columns(self, states):
        """The wave absorb's per-segment columns as slab gathers: one
        fancy index per column instead of a Python listcomp each, and
        the occupancy slab as a single 2-D row gather."""
        a = self.arena
        ranks = _np.fromiter(
            (state.rank for state in states),
            dtype=_np.intp,
            count=len(states),
        )
        return (
            a.node_ids[ranks],
            a.leaf_full[ranks],
            a.accept_lo[ranks],
            a.accept_hi[ranks],
            a.slot_count[ranks].reshape(-1),
        )

    def _sync_dense_universe(self, universe) -> None:
        """Invalidate every pooled dense-index cache when the
        membership universe was rebuilt (identity-keyed exactly like
        :meth:`_NumpyOps._dense`; holding the reference also keeps the
        old object alive, so its id cannot be recycled)."""
        a = self.arena
        if a.dense_universe is not universe:
            a.p_dense_valid[:] = False
            a.leaf_dense_valid[:] = False
            a.dense_universe = universe

    def _resident_keys(self, per_seg, universe, u_size):
        """Composite resident-prefix keys as one ragged pool gather.

        The base implementation walks the receivers in Python -- a
        view plus a dense-cache probe per segment, the absorb's
        biggest remaining scalar tax at 2^14+ nodes.  Here each rank's
        dense indices live in a pool mirroring ``p_ids`` (refreshed in
        one batched ``searchsorted`` over just the stale ranks), so
        the steady-state path is a ``segment_take`` and an add over
        values identical to the base path's."""
        a = self.arena
        ranks = _np.fromiter(
            (state.rank for state, _ in per_seg),
            dtype=_np.intp,
            count=len(per_seg),
        )
        pool = a.p_ids
        lens = pool.len[ranks]
        if not int(lens.sum()):
            return None
        self._sync_dense_universe(universe)
        stale = _np.unique(ranks[~a.p_dense_valid[ranks]])
        if stale.size:
            s_lens = pool.len[stale]
            flat = kernels.segment_take(pool.buf, pool.off[stale], s_lens)
            dense_flat = universe.searchsorted(flat).astype(_np.int32)
            offs = _np.cumsum(s_lens) - s_lens
            n_ranks = a.n_ranks
            for j, r in enumerate(stale.tolist()):
                o = int(offs[j])
                a.p_dense.write(
                    r, dense_flat[o:o + int(s_lens[j])], n_ranks
                )
            a.p_dense_valid[stale] = True
        dense = kernels.segment_take(
            a.p_dense.buf, a.p_dense.off[ranks], lens
        )
        return _np.repeat(
            kernels._arange(ranks.size), lens
        ) * u_size + dense

    def _leaf_keys(self, per_seg, universe, u_size):
        """Composite leaf keys via the fixed-width ``leaf_dense`` slab
        (see :meth:`_resident_keys`; the stale-rank refresh scatters
        straight into the slab rows)."""
        a = self.arena
        ranks = _np.fromiter(
            (state.rank for state, _ in per_seg),
            dtype=_np.intp,
            count=len(per_seg),
        )
        lens = a.leaf_len[ranks]
        total = int(lens.sum())
        if not total:
            return None
        self._sync_dense_universe(universe)
        width = a.leaf.shape[1]
        stale = _np.unique(ranks[~a.leaf_dense_valid[ranks]])
        if stale.size:
            s_lens = a.leaf_len[stale]
            flat = kernels.segment_take(
                a.leaf.ravel(), stale * width, s_lens
            )
            dense_flat = universe.searchsorted(flat).astype(_np.int32)
            s_offs = _np.cumsum(s_lens) - s_lens
            within = kernels._arange(flat.size) - _np.repeat(
                s_offs, s_lens
            )
            a.leaf_dense.ravel()[
                _np.repeat(stale * width, s_lens) + within
            ] = dense_flat
            a.leaf_dense_valid[stale] = True
        dense = kernels.segment_take(
            a.leaf_dense.ravel(), ranks * width, lens
        )
        return _np.repeat(
            kernels._arange(ranks.size), lens
        ) * u_size + dense

    def _rank_rows(self, rows) -> None:
        """Recompute the ranked-leaf cache of every rank in *rows* as
        one segmented lexsort (the same ``(distance, id)`` keys as the
        scalar path; slab padding ranks last via a sentinel distance
        no real entry can reach -- ring distances never exceed the
        half ring)."""
        a = self.arena
        leaf = a.leaf[rows]
        lens = a.leaf_len[rows]
        own = a.node_ids[rows]
        if self._mask == 0xFFFFFFFFFFFFFFFF:
            fw = leaf - own[:, None]
            bw = -fw
        else:
            fw = (leaf - own[:, None]) & self._mu
            bw = (-fw) & self._mu
        dist = _np.minimum(fw, bw)
        width = leaf.shape[1]
        pad = kernels._arange(width)[None, :] >= lens[:, None]
        dist[pad] = _np.uint64(0xFFFFFFFFFFFFFFFF)
        count = rows.size
        seg = _np.repeat(kernels._arange(count), width)
        order = _np.lexsort((leaf.ravel(), dist.ravel(), seg))
        a.ranked[rows] = leaf.ravel()[order].reshape(count, width)
        a.ranked_valid[rows] = True

    def select_wave(self, states, u):
        """SELECTPEER for one chunk of the shuffled order in a single
        kernel pass.

        Returns one entry per state: the peer id where the batched
        path decides, ``None`` where the scalar path must (a missing
        or unstarted node, or an empty leaf set falling back to the
        fresh samples).  Each pick is bit-identical to
        :meth:`_NumpyOps.select_peer` on the same pre-drawn uniform:
        the ranking keys match and ``floor(u * half)`` is the same
        IEEE product either way.
        """
        out = [None] * len(states)
        a = self.arena
        started = a.started
        leaf_len = a.leaf_len
        idx = []
        rks = []
        for j, state in enumerate(states):
            if state is None:
                continue
            r = state.rank
            if started[r] and leaf_len[r] > 0:
                idx.append(j)
                rks.append(r)
        if not idx:
            return out
        ranks = _np.array(rks, dtype=_np.intp)
        stale = ranks[~a.ranked_valid[ranks]]
        if stale.size:
            self._rank_rows(stale)
        half = (a.leaf_len[ranks] + 1) // 2
        pick = _np.minimum((u[idx] * half).astype(_np.intp), half - 1)
        peers = a.ranked[ranks, pick]
        for j, peer in zip(idx, peers.tolist()):
            out[j] = peer
        return out


# ----------------------------------------------------------------------
# pure-Python leg: set/dict node state over the shared list kernels
# ----------------------------------------------------------------------


class _SetState:
    """One node as plain sets and dicts (the no-numpy leg's state;
    same layout as the fast engine's ``FastNodeState`` minus the
    per-node RNG plumbing the vector engine replaces)."""

    __slots__ = (
        "node_id",
        "leaf_members",
        "leaf_sorted",
        "leaf_full",
        "succ_count",
        "succ_max",
        "pred_count",
        "pred_max",
        "prefix_slots",
        "prefix_ids",
        "stats_dirty",
        "started",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.leaf_members: set = set()
        self.leaf_sorted: list[int] | None = None
        self.leaf_full = False
        self.succ_count = 0
        self.succ_max = -1
        self.pred_count = 0
        self.pred_max = -1
        self.prefix_slots: dict[int, list[int]] = {}
        self.prefix_ids: set = set()
        # Set when either table actually mutates (prefix admission or
        # leaf membership change), cleared by the tracker when it
        # recomputes this node's deficit; see the tracker cache.
        self.stats_dirty = True
        self.started = False


class _PythonOps:
    """The same transitions over set state and the list kernels
    (which fall back to pure Python when numpy is absent).  Mirrors
    the fast engine's per-exchange logic with the per-call RNG
    replaced by pre-drawn samples."""

    kind = "python"

    def __init__(self, config: BootstrapConfig) -> None:
        space = config.space
        self._mask = space.size - 1
        self._half_ring = space.half
        self._bits = space.bits
        self._digit_bits = space.digit_bits
        self._base_mask = space.digit_base - 1
        self._k = config.entries_per_slot
        self._c = config.leaf_set_size
        self._half_c = config.half_leaf_set
        self._slot_tables = kernels.slot_tables(space.bits, space.digit_bits)
        self._row_of, self._shift_of = self._slot_tables

    # -- state / pool plumbing -----------------------------------------

    def new_state(self, node_id: int) -> _SetState:
        return _SetState(node_id)

    def live_pool(self, ids: list[int]) -> list[int]:
        return ids

    def gather(self, pool: list[int], index_matrix):
        return [[pool[i] for i in row] for row in index_matrix]

    def oracle_samples(self, pool: list[int], index_matrix, pool_dense=None):
        return self.gather(pool, index_matrix)

    def msg_row(self, buf, i: int):
        return buf[i]

    def as_ids(self, ids: list[int]) -> list[int]:
        return ids

    # -- protocol transitions ------------------------------------------

    def start_node(self, state: _SetState, samples: list[int]) -> None:
        state.prefix_slots.clear()
        state.prefix_ids.clear()
        state.stats_dirty = True
        own = state.node_id
        members = state.leaf_members
        # dict.fromkeys, not set(): dedup that preserves sample order,
        # so the merge sees a hash-seed-independent sequence.
        fresh = [
            nid
            for nid in dict.fromkeys(samples)
            if nid != own and nid not in members
        ]
        if fresh:
            self._merge_fresh(state, fresh)
        state.started = True

    def select_peer(self, state: _SetState, u: float, fallback):
        ranked = state.leaf_sorted
        if ranked is None:
            ranked = state.leaf_sorted = kernels.rank_ids(
                list(state.leaf_members), state.node_id, self._mask
            )
        if ranked:
            half = (len(ranked) + 1) // 2
            return ranked[min(int(u * half), half - 1)]
        own = state.node_id
        for nid in fallback:
            if nid != own:
                return nid
        return None

    def create_message(self, state: _SetState, peer_id: int, samples):
        union = set(state.prefix_ids)
        union |= state.leaf_members
        union.update(samples)
        union.add(state.node_id)
        union.discard(peer_id)
        close, rest = kernels.close_and_rest(
            union, peer_id, self._mask, self._half_ring, self._half_c
        )
        tail, tail_slots = kernels.prefix_part(
            rest,
            peer_id,
            self._bits,
            self._digit_bits,
            self._base_mask,
            self._k,
            self._slot_tables,
        )
        return close, tail, tail_slots

    def create_wave(self, jobs, universe=None):
        """Wave creation on the fallback leg: the same wave-start-state
        scheduling semantics as the numpy leg, built message by
        message (there is nothing to batch without numpy; *universe*
        is the numpy leg's dense id map and is unused here)."""
        return [
            self.create_message(state, peer_id, samples)
            for state, peer_id, samples in jobs
        ]

    def absorb_wave(self, jobs, universe=None) -> None:
        """Wave absorb on the fallback leg: the scalar path per job
        (there is nothing to batch without numpy; *universe* is the
        numpy leg's dense id map and is unused here)."""
        for state, message, sender in jobs:
            self.absorb(state, message, sender)

    def absorb(self, state: _SetState, message, sender_id: int) -> None:
        close, tail, tail_slots = message
        own = state.node_id
        members = state.leaf_members
        prefix_ids = state.prefix_ids
        table = state.prefix_slots
        digit_bits = self._digit_bits
        base_mask = self._base_mask
        row_of = self._row_of
        shift_of = self._shift_of
        k = self._k
        fresh: list[int] = []
        effective = not state.leaf_full
        resident_before = len(prefix_ids)

        def scan_unslotted(ids) -> None:
            nonlocal effective
            for nid in ids:
                if nid not in prefix_ids:
                    row = row_of[(own ^ nid).bit_length()]
                    slot = (row << digit_bits) | (
                        (nid >> shift_of[row]) & base_mask
                    )
                    held = table.get(slot)
                    if held is None:
                        table[slot] = [nid]
                        prefix_ids.add(nid)
                    elif len(held) < k:
                        held.append(nid)
                        prefix_ids.add(nid)
                if nid not in members:
                    fresh.append(nid)
                    if not effective:
                        effective = self._can_affect_leaf(state, nid)

        scan_unslotted(close)
        for nid, slot in zip(tail, tail_slots, strict=True):
            if nid not in prefix_ids:
                held = table.get(slot)
                if held is None:
                    table[slot] = [nid]
                    prefix_ids.add(nid)
                elif len(held) < k:
                    held.append(nid)
                    prefix_ids.add(nid)
            if nid not in members:
                fresh.append(nid)
                if not effective:
                    effective = self._can_affect_leaf(state, nid)
        if sender_id != own:
            scan_unslotted((sender_id,))
        if len(prefix_ids) != resident_before:
            # Admissions only ever add, so a length change is exactly
            # "the table mutated" -- the tracker's cached deficit for
            # this node is stale.  Leaf changes dirty via _set_leaf.
            state.stats_dirty = True
        if fresh and effective:
            self._merge_fresh(state, fresh)

    def _can_affect_leaf(self, state: _SetState, nid: int) -> bool:
        fw = (nid - state.node_id) & self._mask
        if fw <= self._half_ring:
            return state.succ_count < self._half_c or fw < state.succ_max
        return (
            state.pred_count < self._half_c
            or self._mask + 1 - fw < state.pred_max
        )

    def _merge_fresh(self, state: _SetState, fresh: list[int]) -> None:
        candidates = state.leaf_members | set(fresh)
        if len(candidates) <= self._c:
            self._set_leaf(state, candidates)
        else:
            self._set_leaf(
                state,
                kernels.select_balanced(
                    candidates,
                    state.node_id,
                    self._mask,
                    self._half_ring,
                    self._half_c,
                ),
            )

    def _set_leaf(self, state: _SetState, members: set) -> None:
        if members == state.leaf_members:
            # Reselect kept the same membership: caches and the
            # tracker's cached deficit stay valid.
            return
        state.leaf_members = members
        state.leaf_sorted = None
        state.stats_dirty = True
        own = state.node_id
        mask = self._mask
        half_ring = self._half_ring
        succ_count = pred_count = 0
        succ_max = pred_max = -1
        for nid in members:
            fw = (nid - own) & mask
            if fw <= half_ring:
                succ_count += 1
                if fw > succ_max:
                    succ_max = fw
            else:
                bw = mask + 1 - fw
                pred_count += 1
                if bw > pred_max:
                    pred_max = bw
        state.succ_count = succ_count
        state.succ_max = succ_max
        state.pred_count = pred_count
        state.pred_max = pred_max
        state.leaf_full = len(members) >= self._c

    # -- convergence measurement ---------------------------------------

    def live_view(self, ids: Sequence[int]) -> set:
        return set(ids)

    def pack_perfect(self, reference: ReferenceTables, node_id: int):
        db = self._digit_bits
        packed_slots = [
            ((row << db) | col, need)
            for (row, col), need in reference.perfect_prefix_counts(
                node_id
            ).items()
        ]
        return reference.perfect_leaf_ids(node_id), packed_slots

    def node_missing(
        self, state: _SetState, packed, live: set, check_live: bool
    ) -> tuple[int, int]:
        perfect_leaf, packed_slots = packed
        members = state.leaf_members
        if check_live and not members <= live:
            members = members & live
        missing_leaf = len(perfect_leaf - members)
        missing_prefix = 0
        slots = state.prefix_slots
        if check_live and not state.prefix_ids <= live:
            for slot, needed in packed_slots:
                held = slots.get(slot)
                have = sum(1 for nid in held if nid in live) if held else 0
                if have < needed:
                    missing_prefix += needed - have
        else:
            for slot, needed in packed_slots:
                held = slots.get(slot)
                have = len(held) if held else 0
                if have < needed:
                    missing_prefix += needed - have
        return missing_leaf, missing_prefix


# ----------------------------------------------------------------------
# Tracker and simulation
# ----------------------------------------------------------------------


class VectorConvergenceTracker:
    """Convergence measurement over vector-engine node states.

    Produces the same :class:`ConvergenceSample` metric as the
    reference tracker; the per-node arithmetic is delegated to the
    active leg's ops (vectorised on numpy, set-based on the fallback).
    """

    def __init__(self, ops, reference: ReferenceTables, states) -> None:
        self._ops = ops
        self.samples: list[ConvergenceSample] = []
        self.rebind(reference, states)

    def rebind(self, reference: ReferenceTables, states) -> None:
        """Swap reference and population, keeping the sample history."""
        self._reference = reference
        self._states = [s for s in states if s.node_id in reference]
        self._live = self._ops.live_view(reference.ids)
        self._packed: dict[int, object] = {}
        # Per-node deficits are cached between measurements and
        # recomputed only for nodes whose tables changed
        # (``stats_dirty``); membership events land here and wipe the
        # cache, so liveness filtering always sees fresh values.
        self._deficits: dict[int, tuple[int, int]] = {}
        # Arena-backed ops supply a slab measurer: the dirty set and
        # the recomputation both become vector passes over the slabs
        # instead of a Python loop with a dict probe per node.
        maker = getattr(self._ops, "slab_measurer", None)
        self._slab = (
            maker(self._states, reference, self._live)
            if maker is not None
            else None
        )

    def measure(self, cycle: float, check_live: bool) -> ConvergenceSample:
        """Take one network-wide measurement and append it to
        :attr:`samples` (same metric as the reference tracker;
        *check_live* enables dead-entry filtering once any node has
        been killed)."""
        ops = self._ops
        reference = self._reference
        if self._slab is not None:
            missing_leaf, missing_prefix = self._slab.measure(check_live)
        else:
            live = self._live
            packed_cache = self._packed
            deficits = self._deficits
            missing_leaf = 0
            missing_prefix = 0
            for state in self._states:
                node_id = state.node_id
                if state.stats_dirty or node_id not in deficits:
                    packed = packed_cache.get(node_id)
                    if packed is None:
                        packed = packed_cache[node_id] = ops.pack_perfect(
                            reference, node_id
                        )
                    deficits[node_id] = ops.node_missing(
                        state, packed, live, check_live
                    )
                    state.stats_dirty = False
                ml, mp = deficits[node_id]
                missing_leaf += ml
                missing_prefix += mp
        total_leaf, total_prefix = reference.totals()
        sample = ConvergenceSample(
            cycle=cycle,
            missing_leaf=missing_leaf,
            total_leaf=total_leaf,
            missing_prefix=missing_prefix,
            total_prefix=total_prefix,
        )
        self.samples.append(sample)
        return sample


class VectorBootstrapSimulation:
    """Whole-cycle-batched twin of :class:`BootstrapSimulation`.

    Same parameters and experiment surface as the other engines; see
    the module docstring for the relaxed (distributional) equivalence
    contract and :mod:`repro.engine_vector.rng` for the RNG stream.
    """

    engine_name = "vector"

    def __init__(
        self,
        size: int | None = None,
        *,
        ids: Sequence[int] | None = None,
        config: BootstrapConfig = PAPER_CONFIG,
        seed: int = 1,
        network: NetworkModel = RELIABLE,
        sampler: str = "oracle",
        newscast_view_size: int = 30,
        wave: int | None = None,
        absorb: str | None = None,
        state: str | None = None,
    ) -> None:
        if sampler not in SAMPLER_KINDS:
            raise ValueError(
                f"sampler must be one of {SAMPLER_KINDS}, got {sampler!r}"
            )
        if wave is not None and wave < 1:
            raise ValueError(f"wave must be >= 1, got {wave}")
        if ids is None:
            if size is None or size < 2:
                raise ValueError("need size >= 2 or an explicit id list")
        self.config = config
        self.seed = seed
        self.network = network
        self.sampler_kind = sampler
        # Wave size: how many exchanges are message-built together
        # from wave-start state per batch (None = ``max(1, n // 16)``,
        # scaling with the population so the ``W/n`` staleness ratio
        # stays size-independent); see ``create_wave``.
        self._wave = wave
        # Absorb dispatch: ``batch`` drains each wave through the
        # segmented slab pass (bit-identical to ``single``).
        self.absorb_mode = absorb_mode(absorb)
        # State layout: ``arena`` binds the numpy leg to pool-resident
        # slabs (bit-identical to ``pernode``); the fallback leg keeps
        # its set state under either value.
        self.state_mode = state_mode(state)
        self.backend = vrng.backend()
        if self.backend != "numpy":
            self._ops = _PythonOps(config)
        elif self.state_mode == "arena":
            self._ops = _ArenaOps(
                config,
                capacity=len(ids) if ids is not None else int(size or 0),
            )
        else:
            self._ops = _NumpyOps(config)
        self._source = RandomSource(seed)
        self._draws = make_draw_source(derive_seed(seed, "vector-rng"))
        space = config.space
        self._space = space
        self._c = config.leaf_set_size
        self._cr = config.random_samples

        if ids is None:
            id_list = space.random_unique_ids(size, self._source.derive("ids"))
        else:
            id_list = list(ids)
            if len(set(id_list)) != len(id_list):
                raise ValueError("identifier list contains duplicates")
            for node_id in id_list:
                space.validate(node_id)
            if len(id_list) < 2:
                raise ValueError("need at least 2 identifiers")

        self.registry = FastRegistry()
        self.nodes: dict[int, object] = {}
        self.newscast: dict[int, VectorNewscastView] = {}
        self._next_address = 0
        self._unstarted: set = set()
        self._pool = None
        # Every identifier ever admitted, in admission order; the
        # sorted numpy form is the wave absorb's dense id universe
        # (dead ids stay -- they persist in tables and messages).
        self._ids_ever: list[int] = []
        self._universe = None

        self._boot = _Layer()
        self._news: _Layer | None = None
        if sampler == "newscast":
            self._news = _Layer()
        self._newscast_view_size = newscast_view_size

        for node_id in id_list:
            self._admit(node_id)
        if sampler == "newscast":
            self._seed_newscast_views()

        self.reference = ReferenceTables(
            space, id_list, config.leaf_set_size, config.entries_per_slot
        )
        self.tracker = VectorConvergenceTracker(
            self._ops, self.reference, self.nodes.values()
        )
        self._membership_dirty = False
        self._ever_killed = False

    # ------------------------------------------------------------------
    # Node admission / removal (same seed-tree names as the reference)
    # ------------------------------------------------------------------

    def _admit(self, node_id: int):
        self._space.validate(node_id)
        self._next_address += 1
        self._ids_ever.append(node_id)
        self._universe = None
        self.registry.add(node_id)
        if self.sampler_kind == "newscast":
            self.newscast[node_id] = VectorNewscastView(
                node_id, self._newscast_view_size
            )
            assert self._news is not None
            self._news.dirty = True
        state = self._ops.new_state(node_id)
        self.nodes[node_id] = state
        self._unstarted.add(node_id)
        self._boot.dirty = True
        return state

    def _seed_newscast_views(self) -> None:
        """Initial NEWSCAST views: same seed-tree derivation as the
        reference, so all engines start from identical views."""
        rng = self._source.derive("newscast-seed")
        for view in self.newscast.values():
            view.seed(
                self.registry.sample(
                    self._newscast_view_size, rng, exclude_id=view.own_id
                )
            )

    # ------------------------------------------------------------------
    # Membership mutation (the schedule-facing surface)
    # ------------------------------------------------------------------

    @property
    def population(self) -> int:
        """Current number of live nodes."""
        return len(self.nodes)

    @property
    def live_ids(self) -> list[int]:
        """Identifiers of live nodes (admission order)."""
        return list(self.nodes)

    def kill_node(self, node_id: int) -> bool:
        """Crash *node_id* (mirrors ``BootstrapSimulation.kill_node``)."""
        state = self.nodes.pop(node_id, None)
        if state is None:
            return False
        release = getattr(self._ops, "release_state", None)
        if release is not None:
            # Arena leg: recycle the dead node's rank and pool
            # windows.  The tracker rebinds before its next
            # measurement (membership is dirty), so no live consumer
            # still resolves the stale handle.
            release(state)
        self.registry.remove(node_id)
        self._unstarted.discard(node_id)
        self._boot.dirty = True
        if self._news is not None:
            self.newscast.pop(node_id, None)
            self._news.dirty = True
        self._membership_dirty = True
        self._ever_killed = True
        return True

    def spawn_node(self, node_id: int | None = None):
        """Join a brand-new node (same seed-tree derivations as the
        reference, so spawned identifiers match across engines)."""
        if node_id is None:
            rng = self._source.derive(("spawn", self._next_address))
            node_id = self._space.random_id(rng)
            while node_id in self.nodes:
                node_id = self._space.random_id(rng)
        elif node_id in self.nodes:
            raise ValueError(f"identifier {node_id:#x} already live")
        state = self._admit(node_id)
        if self.sampler_kind == "newscast":
            rng = self._source.derive(("newscast-join", node_id))
            self.newscast[node_id].seed(
                self.registry.sample(
                    self._newscast_view_size, rng, exclude_id=node_id
                )
            )
        self._membership_dirty = True
        return state

    def absorb_pool(self, ids: Iterable[int]) -> list[object]:
        """Merge a pool of identifiers into this network."""
        return [self.spawn_node(node_id) for node_id in ids]

    def _wave_universe(self):
        """The sorted dense id universe for the wave absorb (numpy
        leg; the fallback leg's wave loop ignores it)."""
        if self.backend != "numpy":
            return None
        universe = self._universe
        if universe is None:
            count = len(self._ids_ever)
            universe = self._universe = _np.sort(
                _np.fromiter(self._ids_ever, dtype=_np.uint64, count=count)
            )
        return universe

    def _refresh_reference(self) -> None:
        self.reference = ReferenceTables(
            self._space,
            self.nodes.keys(),
            self.config.leaf_set_size,
            self.config.entries_per_slot,
        )
        self.tracker.rebind(self.reference, self.nodes.values())
        self._membership_dirty = False

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._boot.cycle

    def run_cycle(self) -> None:
        """One Δ interval: NEWSCAST gossips first (when live), then
        every bootstrap node performs one exchange."""
        if self._news is not None:
            self._newscast_cycle()
        self._bootstrap_cycle()

    def _bootstrap_cycle(self) -> None:
        layer = self._boot
        nodes = self.nodes
        ops = self._ops
        draws = self._draws
        if layer.dirty:
            layer.order = list(nodes)
            self._pool = ops.live_pool(layer.order)
            layer.dirty = False
        order = list(layer.order)
        draws.shuffle(order)
        n = len(order)
        if n == 0:
            layer.cycle += 1
            return
        cr = self._cr
        oracle = self.sampler_kind == "oracle"
        peer_u = draws.floats(n)
        drop_p = self.network.drop_probability
        req_coins = rep_coins = None
        if drop_p:
            req_coins = draws.floats(n)
            rep_coins = draws.floats(n)
        n_start = len(self._unstarted)
        if oracle:
            start_rows = (
                ops.gather(self._pool, draws.index_matrix(n, n_start, self._c))
                if n_start
                else None
            )
            universe_ = self._wave_universe()
            sample_buf = ops.oracle_samples(
                self._pool,
                draws.index_matrix(n, 2 * n, cr),
                None if universe_ is None else universe_.searchsorted(self._pool),
            )
        else:
            start_f = draws.float_matrix(n_start, self._c) if n_start else None
            sample_f = draws.float_matrix(2 * n, cr)
        newscast = self.newscast
        stats = layer.stats
        get = nodes.get
        msg_row = ops.msg_row
        select_peer = ops.select_peer
        select_wave = getattr(ops, "select_wave", None)
        create_wave = ops.create_wave
        absorb = ops.absorb
        wave = self._wave or max(1, n // 16)
        batch = self.absorb_mode == "batch"
        pending: list[tuple] = []
        # Batched SELECTPEER bookkeeping (arena leg): picks are
        # precomputed one wave-sized chunk at a time and invalidated
        # whenever node state mutates across nodes (a flush); a
        # ``None`` pick defers to the scalar path, which decides
        # identically.
        sel_buf: list = []
        sel_lo = sel_hi = 0

        create_wave_flat = (
            getattr(ops, "create_wave_flat", None) if batch else None
        )
        absorb_wave_flat = getattr(ops, "absorb_wave_flat", None)

        def flush() -> None:
            nonlocal sel_hi
            universe_w = self._wave_universe()
            jobs = []
            for _, nid_, state_, peer_, target_, rq, rp in pending:
                jobs.append((state_, peer_, rq))
                jobs.append((target_, nid_, rp))
            # Drop coins decide which absorbs survive; the survivors
            # are collected in arrival order and drained in one wave
            # (the segmented slab pass, bit-identical to replaying
            # ``absorb`` per survivor -- the ``single`` mode).
            if create_wave_flat is not None and universe_w is not None:
                # Fast lane (numpy batch leg): the wave stays in its
                # flat slab form end to end -- no per-message tuple
                # views, no re-concatenation inside the wave absorb.
                # On the oracle leg the jobs' sample rows are handed
                # over as (buffer, row index) so the union gathers
                # them in one pass instead of re-stacking the views.
                samples_w = None
                if oracle:
                    req_idx = _np.fromiter(
                        (p[0] for p in pending),
                        dtype=_np.intp,
                        count=len(pending),
                    )
                    row_idx = _np.empty(
                        2 * req_idx.size, dtype=_np.intp
                    )
                    row_idx[0::2] = req_idx
                    row_idx[1::2] = req_idx + n
                    samples_w = (sample_buf, row_idx)
                wave_buf = create_wave_flat(jobs, universe_w, samples_w)
                specs: list[tuple] = []
                for j, (
                    i_, nid_, state_, peer_, target_, _rq, _rp,
                ) in enumerate(pending):
                    if drop_p and req_coins[i_] < drop_p:
                        stats.requests_dropped += 1
                        stats.suppressed_replies += 1
                        continue
                    specs.append((target_, 2 * j, nid_))
                    stats.replies_sent += 1
                    if drop_p and rep_coins[i_] < drop_p:
                        stats.replies_dropped += 1
                        continue
                    specs.append((state_, 2 * j + 1, peer_))
                absorb_wave_flat(wave_buf, specs, universe_w)
            else:
                messages = create_wave(jobs, universe_w)
                absorbs: list[tuple] = []
                for j, (
                    i_, nid_, state_, peer_, target_, _rq, _rp,
                ) in enumerate(pending):
                    if drop_p and req_coins[i_] < drop_p:
                        stats.requests_dropped += 1
                        stats.suppressed_replies += 1
                        continue
                    absorbs.append((target_, messages[2 * j], nid_))
                    stats.replies_sent += 1
                    if drop_p and rep_coins[i_] < drop_p:
                        stats.replies_dropped += 1
                        continue
                    absorbs.append((state_, messages[2 * j + 1], peer_))
                if batch and len(absorbs) > 1:
                    ops.absorb_wave(absorbs, universe_w)
                else:
                    for state_, message_, sender_ in absorbs:
                        absorb(state_, message_, sender_)
            pending.clear()
            # Absorbs may have reshaped leaf sets: any precomputed
            # peer picks past this point are stale.
            sel_hi = 0

        start_ptr = 0
        for i, nid in enumerate(order):
            state = get(nid)
            if state is None:
                continue
            if oracle:
                req_row = msg_row(sample_buf, i)
            else:
                req_row = ops.as_ids(newscast[nid].sample(cr, sample_f[i]))
            if not state.started:
                if oracle:
                    seeds = start_rows[start_ptr]
                else:
                    seeds = ops.as_ids(
                        newscast[nid].sample(self._c, start_f[start_ptr])
                    )
                start_ptr += 1
                ops.start_node(state, seeds)
                self._unstarted.discard(nid)
            if select_wave is not None:
                if i >= sel_hi:
                    hi = min(i + wave, n)
                    sel_buf = select_wave(
                        [get(chunk_nid) for chunk_nid in order[i:hi]],
                        peer_u[i:hi],
                    )
                    sel_lo = i
                    sel_hi = hi
                peer_id = sel_buf[i - sel_lo]
                if peer_id is None:
                    # Scalar fallback: the node started this chunk or
                    # its leaf set is empty (fresh-sample fallback).
                    peer_id = select_peer(state, peer_u[i], req_row)
            else:
                peer_id = select_peer(state, peer_u[i], req_row)
            if peer_id is None:
                continue
            target = get(peer_id)
            stats.exchanges += 1
            stats.requests_sent += 1
            if target is None:
                # Void target: the request's content is unobservable
                # (nobody absorbs it) and the batched samples are
                # pre-drawn, so the message build is skipped outright.
                if drop_p and req_coins[i] < drop_p:
                    stats.requests_dropped += 1
                else:
                    stats.void_requests += 1
                stats.suppressed_replies += 1
                continue
            if oracle:
                rep_row = msg_row(sample_buf, n + i)
            else:
                rep_row = ops.as_ids(
                    newscast[peer_id].sample(cr, sample_f[n + i])
                )
            pending.append((i, nid, state, peer_id, target, req_row, rep_row))
            if len(pending) >= wave:
                flush()
        if pending:
            flush()
        layer.cycle += 1

    def _newscast_cycle(self) -> None:
        layer = self._news
        views = self.newscast
        draws = self._draws
        now = float(layer.cycle)
        if layer.dirty:
            layer.order = list(views)
            layer.dirty = False
        order = list(layer.order)
        draws.shuffle(order)
        n = len(order)
        if n == 0:
            layer.cycle += 1
            return
        for view in views.values():
            view.now = now
        peer_u = draws.floats(n)
        drop_p = self.network.drop_probability
        req_coins = rep_coins = None
        if drop_p:
            req_coins = draws.floats(n)
            rep_coins = draws.floats(n)
        stats = layer.stats
        get = views.get
        for i, nid in enumerate(order):
            view = get(nid)
            if view is None:
                continue
            peer_id = view.select_peer(peer_u[i])
            if peer_id is None:
                continue
            request = view.payload()
            stats.exchanges += 1
            stats.requests_sent += 1
            if drop_p and req_coins[i] < drop_p:
                stats.requests_dropped += 1
                stats.suppressed_replies += 1
                continue
            target = get(peer_id)
            if target is None:
                stats.void_requests += 1
                stats.suppressed_replies += 1
                continue
            reply = target.payload()
            target.merge(request)
            stats.replies_sent += 1
            if drop_p and rep_coins[i] < drop_p:
                stats.replies_dropped += 1
                continue
            view.merge(reply)
        layer.cycle += 1

    # ------------------------------------------------------------------
    # Measurement and experiment running (reference API)
    # ------------------------------------------------------------------

    def measure(self) -> ConvergenceSample:
        """Measure convergence now (rebuilding the reference first if
        membership changed)."""
        if self._membership_dirty:
            self._refresh_reference()
        return self.tracker.measure(
            float(self._boot.cycle), self._ever_killed
        )

    def run(
        self,
        max_cycles: int = 60,
        *,
        stop_when_perfect: bool = True,
        schedules: Sequence[object] = (),
        measure_every: int = 1,
    ) -> SimulationResult:
        """Run the experiment (same semantics and parameters as
        ``BootstrapSimulation.run``)."""
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        if measure_every < 1:
            raise ValueError(
                f"measure_every must be >= 1, got {measure_every}"
            )
        started_at = self._boot.cycle
        for cycle_index in range(max_cycles):
            for schedule in schedules:
                schedule.apply(self, cycle_index)
            self.run_cycle()
            if (cycle_index + 1) % measure_every == 0:
                sample = self.measure()
                if stop_when_perfect and sample.is_perfect:
                    break
        if not self.tracker.samples:
            self.measure()
        return self._result(started_at)

    def _result(self, started_at: int = 0) -> SimulationResult:
        converged_at = next(
            (
                s.cycle
                for s in self.tracker.samples
                if s.cycle > started_at and s.is_perfect
            ),
            None,
        )
        return SimulationResult(
            samples=tuple(self.tracker.samples),
            converged_at=converged_at,
            population=self.population,
            transport=self._boot.stats.snapshot(),
            config=self.config,
            seed=self.seed,
            cycles_run=self._boot.cycle - started_at,
            started_at_cycle=started_at,
            engine="vector",
        )
