"""The vectorised-semantics cycle engine (``engine="vector"``).

:class:`VectorBootstrapSimulation` is the third engine behind the
engine seam.  It exposes the same constructor, membership-mutation
surface (``kill_node``/``spawn_node``/``absorb_pool``) and
``run``/``measure`` API as the reference and fast engines, but it
deliberately **breaks the bit-identity contract** those two share:

* All exchange randomness comes from **one generator per simulation**
  (:mod:`repro.engine_vector.rng`): the activation permutation, peer
  picks, drop coins, and peer-sampling draws of a cycle are bulk
  draws, not per-node stream consumption.
* The idealised oracle's ``cr`` fresh samples per message are drawn
  **with replacement** from the live pool (and may include the
  sender); duplicates vanish in the message union, so for ``cr << N``
  the effect is a vanishing reduction of effective fresh samples.
* On the numpy leg, per-node state lives in sorted ``uint64`` id
  arrays and every per-exchange operation -- message-union dedup, ring
  ranking, balanced selection, prefix-slot capping, absorb novelty
  scans, and convergence measurement -- is an array operation (the
  geometry kernels are shared with :mod:`repro.engine_fast.kernels`).

What is preserved -- and what the statistical-equivalence harness
(``tests/test_engine_vector.py``) pins against the reference engine --
is the *distribution* of trajectories: exchanges stay sequential
within a cycle in a uniformly random activation order, message
construction follows the paper's CREATEMESSAGE exactly, UPDATELEAFSET
and UPDATEPREFIXTABLE semantics are unchanged, and message-drop coins
are i.i.d. per transmission.  Mean convergence curves,
convergence-cycle summaries, and transport loss fractions match the
reference engine within tight tolerances; individual trajectories do
not (and per-seed results differ between the numpy leg and the
pure-Python fallback leg, each being deterministic on its own).

Membership randomness (initial identifier draw, spawn identifiers,
NEWSCAST view seeding) still uses the reference seed tree, so a given
seed simulates the *same network* on all three engines -- differences
between engines are purely exchange randomness, which is what makes
the statistical comparison well-conditioned.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .. import seams
from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceSample
from ..core.reference import ReferenceTables
from ..engine_fast import kernels
from ..engine_fast.state import FastRegistry
from ..simulator.bootstrap_sim import SAMPLER_KINDS, SimulationResult
from ..simulator.network import NetworkModel, RELIABLE, TransportStats
from ..simulator.random_source import RandomSource, derive_seed
from . import rng as vrng
from .rng import make_draw_source, sample_distinct

try:  # pragma: no cover - exercised via both backend parametrisations
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "ABSORB_MODES",
    "VectorBootstrapSimulation",
    "VectorConvergenceTracker",
    "VectorNewscastView",
    "absorb_mode",
]

#: Absorb dispatch modes: ``batch`` drains each wave's surviving
#: absorbs through one segmented slab pass (``absorb_wave``);
#: ``single`` replays the per-exchange scalar path.  The two are
#: **bit-identical** (pinned by ``tests/test_engine_vector.py``); the
#: seam exists so the equivalence stays testable and the scalar path
#: stays debuggable.
ABSORB_MODES = ("batch", "single")


def absorb_mode(override: str | None = None) -> str:
    """Resolve the absorb dispatch mode (``REPRO_VECTOR_ABSORB``).

    *override* (a constructor argument) wins over the environment;
    unset means ``batch``.
    """
    mode = override
    if mode is None:
        mode = seams.get("REPRO_VECTOR_ABSORB") or "batch"
    if mode not in ABSORB_MODES:
        raise ValueError(
            f"absorb mode must be one of {ABSORB_MODES}, got {mode!r}"
        )
    return mode


class _Layer:
    """One gossip layer's bookkeeping (order cache + transport
    accounting + cycle counter)."""

    __slots__ = ("stats", "order", "dirty", "cycle")

    def __init__(self) -> None:
        self.stats = TransportStats()
        self.order: list[int] = []
        self.dirty = True
        self.cycle = 0


class VectorNewscastView:
    """NEWSCAST view for the vector engine: the same freshest-wins
    merge mechanics as the reference/fast views, but peer picks and
    view samples are realised from pre-drawn uniforms instead of an
    owned ``random.Random`` stream."""

    __slots__ = ("own_id", "capacity", "entries", "now")

    def __init__(self, own_id: int, capacity: int) -> None:
        self.own_id = own_id
        self.capacity = capacity
        self.entries: dict[int, float] = {}
        self.now = 0.0

    def __len__(self) -> int:
        return len(self.entries)

    def select_peer(self, u: float) -> int | None:
        """Uniform pick over the view from one pre-drawn float."""
        if not self.entries:
            return None
        keys = list(self.entries)
        return keys[min(int(u * len(keys)), len(keys) - 1)]

    def payload(self) -> list[tuple[int, float]]:
        """The whole view plus the freshly-stamped own advertisement."""
        pairs = list(self.entries.items())
        pairs.append((self.own_id, self.now))
        return pairs

    def merge(self, pairs: list[tuple[int, float]]) -> None:
        """Freshest per id, truncated to the ``capacity`` freshest
        (ties broken by id) -- identical to the reference merge."""
        entries = self.entries
        own = self.own_id
        for nid, ts in pairs:
            if nid == own:
                continue
            current = entries.get(nid)
            if current is None or ts > current:
                entries[nid] = ts
        if len(entries) > self.capacity:
            survivors = sorted(
                entries.items(), key=lambda p: (-p[1], p[0])
            )[: self.capacity]
            self.entries = dict(survivors)

    def sample(self, count: int, floats: Sequence[float]) -> list[int]:
        """*count* distinct view members from pre-drawn uniforms."""
        if count <= 0 or not self.entries:
            return []
        return sample_distinct(list(self.entries), count, floats)

    def seed(self, ids: Iterable[int]) -> None:
        """Install an initial membership sample (timestamp 0)."""
        self.merge([(nid, 0.0) for nid in ids])


# ----------------------------------------------------------------------
# numpy leg: sorted-array node state + vectorised transitions
# ----------------------------------------------------------------------


class _ArrayState:
    """One node as sorted numpy arrays.

    ``leaf`` and ``prefix_ids`` are ascending uint64 id arrays (sorted
    by *id*, which makes novelty scans a ``searchsorted``);
    ``prefix_slots`` is parallel to ``prefix_ids`` (packed slot of each
    entry in this node's table) and ``slot_count`` the per-slot
    occupancy, so capacity checks and convergence measurement are pure
    fancy indexing.  ``leaf_ranked`` caches the distance-ranked leaf
    ids between membership changes (SELECTPEER's pick order); the
    ``succ_*``/``pred_*`` bounds are the UPDATELEAFSET no-op filter
    (same invariant as the fast engine's ``FastNodeState``).
    """

    __slots__ = (
        "node_id",
        "own_u64",
        "leaf",
        "leaf_ranked",
        "leaf_full",
        "succ_count",
        "succ_max",
        "pred_count",
        "pred_max",
        "accept_lo",
        "accept_hi",
        "prefix_ids",
        "prefix_slots",
        "slot_count",
        "known",
        "stats_dirty",
        "started",
    )

    def __init__(self, node_id: int, n_slots: int) -> None:
        self.node_id = node_id
        self.own_u64 = _np.array([node_id], dtype=_np.uint64)
        self.leaf = _np.empty(0, dtype=_np.uint64)
        self.leaf_ranked: _np.ndarray | None = None
        self.leaf_full = False
        self.succ_count = 0
        self.succ_max = -1
        self.pred_count = 0
        self.pred_max = -1
        # UPDATELEAFSET admission window (valid when ``leaf_full``): a
        # candidate can change the balanced selection iff its forward
        # distance is below ``accept_lo`` (successor side) or above
        # ``accept_hi`` (predecessor side).
        self.accept_lo = _np.uint64(0)
        self.accept_hi = _np.uint64(0)
        self.prefix_ids = _np.empty(0, dtype=_np.uint64)
        self.prefix_slots = _np.empty(0, dtype=_np.int64)
        self.slot_count = _np.zeros(n_slots, dtype=_np.int64)
        # Cached sorted union of leaf + prefix + own id (the message
        # base); rebuilt lazily after membership changes.
        self.known: _np.ndarray | None = None
        # Measurement cache validity (see VectorConvergenceTracker):
        # cleared whenever either table mutates.
        self.stats_dirty = True
        self.started = False


def _not_in_sorted(sorted_arr, values):
    """Boolean mask of *values* entries absent from *sorted_arr*."""
    if sorted_arr.size == 0:
        return _np.ones(values.size, dtype=bool)
    pos = _np.searchsorted(sorted_arr, values)
    return sorted_arr[_np.minimum(pos, sorted_arr.size - 1)] != values


class _NumpyOps:
    """Array-native node transitions (the vector engine's fast leg)."""

    kind = "numpy"

    def __init__(self, config: BootstrapConfig) -> None:
        space = config.space
        self._mask = space.size - 1
        self._mu = _np.uint64(self._mask)
        self._half_ring = space.half
        self._half_u = _np.uint64(space.half)
        self._bits = space.bits
        self._digit_bits = space.digit_bits
        self._base_mask = space.digit_base - 1
        self._k = config.entries_per_slot
        self._c = config.leaf_set_size
        self._half_c = config.half_leaf_set
        self._n_slots = space.num_digits * space.digit_base
        self._row_of, self._shift_of = kernels.slot_tables(
            space.bits, space.digit_bits
        )

    # -- state / pool plumbing -----------------------------------------

    def new_state(self, node_id: int) -> _ArrayState:
        return _ArrayState(node_id, self._n_slots)

    def live_pool(self, ids: list[int]):
        return _np.fromiter(ids, dtype=_np.uint64, count=len(ids))

    def gather(self, pool, index_matrix):
        return pool[index_matrix]

    def oracle_samples(self, pool, index_matrix):
        """Message-sample rows, batch-sorted with duplicate masks so
        per-message union folding needs no ``np.unique``."""
        rows = pool[index_matrix]
        dup = _np.zeros(rows.shape, dtype=bool)
        if rows.shape[1] > 1:
            rows.sort(axis=1)
            _np.equal(rows[:, 1:], rows[:, :-1], out=dup[:, 1:])
        return rows, dup

    def msg_row(self, buf, i: int):
        rows, dup = buf
        return rows[i], dup[i]

    def as_ids(self, ids: list[int]):
        return _np.fromiter(ids, dtype=_np.uint64, count=len(ids))

    # -- protocol transitions ------------------------------------------

    def start_node(self, state: _ArrayState, samples) -> None:
        """Protocol start: wipe the prefix table, seed the leaf set."""
        state.prefix_ids = _np.empty(0, dtype=_np.uint64)
        state.prefix_slots = _np.empty(0, dtype=_np.int64)
        state.slot_count[:] = 0
        state.known = None
        state.stats_dirty = True
        fresh = _np.unique(samples)
        fresh = fresh[fresh != state.own_u64[0]]
        fresh = fresh[_not_in_sorted(state.leaf, fresh)]
        if fresh.size:
            self._merge_fresh(state, fresh)
        state.started = True

    def select_peer(self, state: _ArrayState, u: float, fallback):
        """SELECTPEER: uniform over the closest half of the ranked
        leaf set; an empty leaf set falls back to the first fresh
        sample that is not the node itself."""
        ranked = state.leaf_ranked
        if ranked is None:
            leaf = state.leaf
            if leaf.size:
                fw = (leaf - state.own_u64[0]) & self._mu
                dist = _np.minimum(fw, (-fw) & self._mu)
                ranked = leaf[_np.lexsort((leaf, dist))]
            else:
                ranked = leaf
            state.leaf_ranked = ranked
        if ranked.size:
            half = (ranked.size + 1) // 2
            return int(ranked[min(int(u * half), half - 1)])
        own = state.node_id
        if type(fallback) is tuple:
            fallback = fallback[0]
        for nid in fallback.tolist():
            if nid != own:
                return nid
        return None

    def create_message(self, state: _ArrayState, peer_id: int, samples):
        """CREATEMESSAGE over resident arrays: the cached known-id
        union plus the novel fresh samples, then the shared close/rest
        and prefix-cap kernels.  Returns ``(close, tail, tail_slots)``
        arrays; the slots are the receiver's UPDATEPREFIXTABLE keys (a
        message is only absorbed by the peer it was created for)."""
        union = self._union(state, samples)
        # One slot pass for the whole union: the tail's capping keys
        # and the absorb side's close-part keys fall out together.
        slots = kernels.prefix_slots_arrays(
            union, peer_id, self._bits, self._digit_bits, self._base_mask
        )
        close, rest, close_slots, rest_slots = kernels.close_and_rest_with_aux(
            union,
            slots,
            peer_id,
            self._mask,
            self._half_ring,
            self._half_c,
            True,
        )
        tail, tail_slots = kernels.prefix_part_with_slots(
            rest, rest_slots, self._k
        )
        return (
            _np.concatenate((close, tail)),
            _np.concatenate((close_slots, tail_slots)),
        )

    def _union(self, state: _ArrayState, samples):
        """The CREATEMESSAGE base: the cached known union plus any
        fresh samples (unsorted tail; uniqueness is all the kernels
        need)."""
        known = state.known
        if known is None:
            known = state.known = _np.unique(
                _np.concatenate(
                    (state.leaf, state.prefix_ids, state.own_u64)
                )
            )
        if type(samples) is tuple:
            # Oracle leg: a pre-sorted row plus its duplicate mask
            # (both produced once per cycle for the whole batch).
            row, dup = samples
            pos = _np.minimum(
                known.searchsorted(row), known.size - 1
            )
            fresh = row[(known[pos] != row) & ~dup]
        elif samples.size:
            s = _np.unique(samples)
            pos = _np.minimum(known.searchsorted(s), known.size - 1)
            fresh = s[known[pos] != s]
        else:
            return known
        if fresh.size:
            return _np.concatenate((known, fresh))
        return known

    def create_wave(self, jobs):
        """CREATEMESSAGE for a whole wave of exchanges in one
        segmented batch.

        *jobs* is a list of ``(state, peer_id, samples)`` message
        specifications; the result is the matching list of message
        tuples.  All messages are built from wave-start state (the
        cycle loop applies the wave's absorbs afterwards), which is
        the vector engine's scheduling relaxation: a message cannot
        see updates applied earlier *within the same wave* -- with
        wave size ``W`` of ``n`` nodes, the probability that this
        hides a same-cycle update that the strictly sequential
        engines would have exposed is about ``W/n`` per exchange.
        The payoff is that ranking, balanced selection, slot geometry
        and the prefix cap each run as one segmented numpy pass over
        every message of the wave, amortising per-call dispatch that
        otherwise dominates the engine.

        Per message the construction is exactly CREATEMESSAGE: one
        ``lexsort`` keyed ``(message, ring distance)`` ranks every
        union at once (segments stay contiguous), the balanced-close
        thresholds become per-segment running-count offsets, and the
        first-``k``-per-slot cap runs once with segment-shifted slot
        keys so equal slots never group across messages.
        """
        m_count = len(jobs)
        unions = [
            self._union(state, samples) for state, _, samples in jobs
        ]
        lens = _np.array([u.size for u in unions], dtype=_np.intp)
        offs = _np.zeros(m_count + 1, dtype=_np.intp)
        _np.cumsum(lens, out=offs[1:])
        u = _np.concatenate(unions)
        n = u.size
        peer_list = _np.array(
            [peer for _, peer, _ in jobs], dtype=_np.uint64
        )
        peers = _np.repeat(peer_list, lens)
        seg_base = kernels._arange(m_count) * self._n_slots
        if self._mask == 0xFFFFFFFFFFFFFFFF:
            fw = u - peers
            bw = -fw
        else:
            fw = (u - peers) & self._mu
            bw = (-fw) & self._mu
        order = _np.lexsort(
            (_np.minimum(fw, bw), _np.repeat(kernels._arange(m_count), lens))
        )
        ranked = u[order]
        succ_r = (fw <= self._half_u)[order]
        cs = _np.cumsum(succ_r)
        starts = offs[:-1]
        ends = offs[1:] - 1
        cs_end = cs[ends]
        cs_before = _np.zeros(m_count, dtype=cs.dtype)
        cs_before[1:] = cs_end[:-1]
        has_p = ranked[starts] == peer_list
        n_succ_seg = cs_end - cs_before - has_p
        half_c = self._half_c
        ts = _np.empty(m_count, dtype=_np.intp)
        tp = _np.empty(m_count, dtype=_np.intp)
        balanced = kernels._balanced_counts
        for m in range(m_count):
            ts[m], tp[m] = balanced(
                int(n_succ_seg[m]),
                int(lens[m]) - int(has_p[m]) - int(n_succ_seg[m]),
                half_c,
            )
        # Per-element thresholds with the segment offsets folded in:
        # inside segment m the running successor count is
        # ``cs - cs_before[m]`` and the running predecessor count is
        # ``pred_seen - (offs[m] - cs_before[m])``.
        ts_el = _np.repeat(ts + has_p + cs_before, lens)
        tp_el = _np.repeat(tp + (starts - cs_before), lens)
        pred_seen = kernels._arange(n + 1)[1:] - cs
        keep = _np.where(succ_r, cs <= ts_el, pred_seen <= tp_el)
        rest_mask = ~keep
        peer_pos = starts[has_p]
        if peer_pos.size:
            keep[peer_pos] = False
            rest_mask[peer_pos] = False
        slots = kernels.prefix_slots_arrays(
            ranked,
            peers[order],
            self._bits,
            self._digit_bits,
            self._base_mask,
        )
        # One cap pass over every tail; per-segment key shifts keep
        # equal slots of different messages in separate groups.  The
        # cap preserves input order, so kept ids stay grouped by
        # message and split back on per-segment kept counts.
        shifted = slots + _np.repeat(seg_base, lens)
        rest_ids = ranked[rest_mask]
        rest_keys = shifted[rest_mask]
        tail_all, tail_keys = kernels.prefix_part_with_slots(
            rest_ids, rest_keys, self._k
        )
        tail_seg = tail_keys // self._n_slots
        tail_slots = tail_keys - tail_seg * self._n_slots
        tail_counts = _np.bincount(tail_seg, minlength=m_count)
        tail_offs = _np.zeros(m_count + 1, dtype=_np.intp)
        _np.cumsum(tail_counts, out=tail_offs[1:])
        # Batched per-message assembly: the kept close ids are already
        # grouped by message inside ``ranked[keep]`` (keep preserves
        # order and segments are contiguous), so per-message pieces
        # are pure slice views stitched by one concatenate each.
        close_all = ranked[keep]
        close_slots_all = slots[keep]
        close_counts = _np.add.reduceat(keep.astype(_np.intp), starts)
        close_offs = _np.zeros(m_count + 1, dtype=_np.intp)
        _np.cumsum(close_counts, out=close_offs[1:])
        co = close_offs.tolist()
        to = tail_offs.tolist()
        id_pieces = []
        slot_pieces = []
        for m in range(m_count):
            id_pieces.append(close_all[co[m]:co[m + 1]])
            id_pieces.append(tail_all[to[m]:to[m + 1]])
            slot_pieces.append(close_slots_all[co[m]:co[m + 1]])
            slot_pieces.append(tail_slots[to[m]:to[m + 1]])
        ids_flat = _np.concatenate(id_pieces)
        slots_flat = _np.concatenate(slot_pieces)
        bounds = [
            co[m] + to[m] for m in range(m_count + 1)
        ]
        messages = [
            (
                ids_flat[bounds[m]:bounds[m + 1]],
                slots_flat[bounds[m]:bounds[m + 1]],
            )
            for m in range(m_count)
        ]
        return messages

    def absorb(self, state: _ArrayState, message, sender_id: int) -> None:
        """UPDATELEAFSET + UPDATEPREFIXTABLE of one message, all in
        array ops: novelty via ``searchsorted`` on the sorted resident
        arrays, slot capping via a stable grouped rank against current
        occupancy (first-come in message order, exactly the reference's
        sequential fill), then one balanced reselect when a novel id
        lands inside the admission window (ids outside it provably
        cannot change the balanced selection).  The envelope sender is
        processed last on a scalar path (it may duplicate a payload
        id)."""
        ids, slots = message
        if ids.size:
            prefix_ids = state.prefix_ids
            if prefix_ids.size:
                pos = _np.minimum(
                    prefix_ids.searchsorted(ids), prefix_ids.size - 1
                )
                novel = prefix_ids[pos] != ids
                nids = ids[novel]
                nslots = slots[novel]
            else:
                nids, nslots = ids, slots
            if nids.size:
                # Slots already at capacity cannot admit; in the
                # converged steady state this empties the candidate
                # set and skips the grouped-rank machinery entirely.
                open_slot = state.slot_count[nslots] < self._k
                if open_slot.any():
                    self._fill_slots(
                        state, nids[open_slot], nslots[open_slot]
                    )
            if state.leaf_full:
                fw = (ids - state.own_u64[0]) & self._mu
                cand = ids[
                    (fw < state.accept_lo) | (fw > state.accept_hi)
                ]
                if cand.size:
                    leaf = state.leaf
                    pos = _np.minimum(
                        leaf.searchsorted(cand), leaf.size - 1
                    )
                    fresh = cand[leaf[pos] != cand]
                    if fresh.size:
                        self._merge_fresh(state, fresh)
            else:
                fresh = ids[_not_in_sorted(state.leaf, ids)]
                if fresh.size:
                    self._merge_fresh(state, fresh)
        self._absorb_single(state, sender_id)

    def absorb_wave(self, jobs, universe) -> None:
        """One wave's surviving absorbs as a segmented slab pass.

        *jobs* is the arrival-ordered list of ``(state, message,
        sender_id)`` absorbs of one wave; *universe* is the sorted
        uint64 array of **every identifier ever admitted** to the
        network (dead ids stay: they persist in tables and messages).
        The wave's candidates are laid out as one contiguous id slab
        with per-segment offset/length arrays -- a segment is one
        receiving node, its messages kept in arrival order -- and the
        per-exchange novelty/dedup/cap scans become whole-wave kernel
        calls:

        * every id maps to its dense ``universe`` index, so the
          composite key ``segment * len(universe) + dense`` makes the
          concatenated (per-node sorted) resident tables a *globally*
          sorted slab -- novelty for the whole wave is a single
          ``searchsorted``, not one per message;
        * first-occurrence dedup per ``(segment, id)`` via one
          ``lexsort`` reproduces the sequential scan exactly: a
          repeated id is always a no-op on the scalar path (admitted
          ids are resident, rejected ids face the same full slot);
        * slot capping is the same stable grouped rank as the scalar
          fill, keyed by ``segment * n_slots + slot`` against a
          concatenated occupancy slab, so first-come order within a
          receiver is preserved across its messages;
        * UPDATELEAFSET applies the wave-start admission windows and
          folds each segment's surviving candidates through one
          balanced reselect.  This is bit-identical to the sequential
          merges because balanced selection is an associative fold:
          take-counts are monotone in the candidate set, so an id a
          sequential intermediate window would have dropped is dropped
          by the final reselect too (and ids the stale wave-start
          window over-admits are exactly those, see ``_ArrayState``).

        The result is bit-identical to replaying ``absorb`` per job
        (the ``single`` mode; pinned by the engine test suite).
        """
        if not jobs:
            return
        # Group jobs by receiver, first-appearance segment order;
        # each receiver's messages stay in wave order.
        seg_of: dict[int, int] = {}
        per_seg: list[tuple[_ArrayState, list[tuple]]] = []
        for state, message, sender in jobs:
            s = seg_of.get(id(state))
            if s is None:
                s = seg_of[id(state)] = len(per_seg)
                per_seg.append((state, []))
            per_seg[s][1].append((message, sender))
        n_seg = len(per_seg)
        # Envelope senders join the candidate stream after their
        # message's payload; their slots are one batched mixed-origin
        # kernel call (the scalar path computes them one at a time).
        sender_ids: list[int] = []
        sender_owner: list[int] = []
        for state, msgs in per_seg:
            own = state.node_id
            for _, sender in msgs:
                if sender != own:
                    sender_ids.append(sender)
                    sender_owner.append(own)
        s_ids = _np.array(sender_ids, dtype=_np.uint64)
        s_slots = kernels.prefix_slots_arrays(
            s_ids,
            _np.array(sender_owner, dtype=_np.uint64),
            self._bits,
            self._digit_bits,
            self._base_mask,
        )
        id_pieces: list[_np.ndarray] = []
        slot_pieces: list[_np.ndarray] = []
        seg_len = _np.zeros(n_seg, dtype=_np.intp)
        si = 0
        for s, (state, msgs) in enumerate(per_seg):
            own = state.node_id
            total = 0
            for (ids, slots), sender in msgs:
                id_pieces.append(ids)
                slot_pieces.append(slots)
                total += ids.size
                if sender != own:
                    id_pieces.append(s_ids[si:si + 1])
                    slot_pieces.append(s_slots[si:si + 1])
                    si += 1
                    total += 1
            seg_len[s] = total
        cand_ids = _np.concatenate(id_pieces)
        m = cand_ids.size
        if not m:
            return
        cand_slots = _np.concatenate(slot_pieces)
        cand_seg = _np.repeat(kernels._arange(n_seg), seg_len)
        u_size = universe.size
        ckey = cand_seg * u_size + universe.searchsorted(cand_ids).astype(
            _np.intp
        )
        # First occurrence per (segment, id), kept in arrival order.
        order = _np.lexsort((kernels._arange(m), ckey))
        ck_sorted = ckey[order]
        first = _np.empty(m, dtype=bool)
        first[0] = True
        _np.not_equal(ck_sorted[1:], ck_sorted[:-1], out=first[1:])
        keep = _np.zeros(m, dtype=bool)
        keep[order[first]] = True
        u_ids = cand_ids[keep]
        u_slots = cand_slots[keep]
        u_seg = cand_seg[keep]
        u_key = ckey[keep]
        # UPDATEPREFIXTABLE: novelty against the resident slab, then
        # the grouped first-come cap against the occupancy slab.
        res_pieces = [state.prefix_ids for state, _ in per_seg]
        res_lens = _np.array([p.size for p in res_pieces], dtype=_np.intp)
        res = _np.concatenate(res_pieces)
        if res.size:
            res_key = _np.repeat(
                kernels._arange(n_seg), res_lens
            ) * u_size + universe.searchsorted(res).astype(_np.intp)
            pos = _np.minimum(
                res_key.searchsorted(u_key), res_key.size - 1
            )
            novel = res_key[pos] != u_key
        else:
            novel = _np.ones(u_key.size, dtype=bool)
        occ_slab = _np.concatenate(
            [state.slot_count for state, _ in per_seg]
        )
        slot_key = u_seg * self._n_slots + u_slots
        cand_mask = novel & (occ_slab[slot_key] < self._k)
        if cand_mask.any():
            c_key = slot_key[cand_mask]
            order2 = _np.argsort(c_key, kind="stable")
            ss = c_key[order2]
            cm = ss.size
            idx = _np.arange(cm)
            new_group = _np.empty(cm, dtype=bool)
            new_group[0] = True
            _np.not_equal(ss[1:], ss[:-1], out=new_group[1:])
            group_start = _np.maximum.accumulate(
                _np.where(new_group, idx, 0)
            )
            keep_sorted = (idx - group_start) < (self._k - occ_slab[ss])
            if keep_sorted.any():
                cand_idx = _np.nonzero(cand_mask)[0]
                adm_idx = cand_idx[_np.sort(order2[keep_sorted])]
                a_seg = u_seg[adm_idx]
                bounds = _np.searchsorted(
                    a_seg, kernels._arange(n_seg + 1)
                )
                segs = _np.nonzero(bounds[1:] > bounds[:-1])[0]
                a_ids = u_ids[adm_idx]
                a_slots = u_slots[adm_idx]
                for s in segs.tolist():
                    lo, hi = bounds[s], bounds[s + 1]
                    self._apply_admitted(
                        per_seg[s][0], a_ids[lo:hi], a_slots[lo:hi]
                    )
        # UPDATELEAFSET: wave-start admission windows, one leaf-slab
        # novelty scan, one balanced reselect per touched segment.
        own_arr = _np.array(
            [state.node_id for state, _ in per_seg], dtype=_np.uint64
        )
        full_arr = _np.array(
            [state.leaf_full for state, _ in per_seg], dtype=bool
        )
        lo_arr = _np.array(
            [state.accept_lo for state, _ in per_seg], dtype=_np.uint64
        )
        hi_arr = _np.array(
            [state.accept_hi for state, _ in per_seg], dtype=_np.uint64
        )
        fw = (u_ids - own_arr[u_seg]) & self._mu
        leaf_cand = ~full_arr[u_seg] | (fw < lo_arr[u_seg]) | (
            fw > hi_arr[u_seg]
        )
        if not leaf_cand.any():
            return
        leaf_pieces = [state.leaf for state, _ in per_seg]
        leaf_lens = _np.array(
            [p.size for p in leaf_pieces], dtype=_np.intp
        )
        lf = _np.concatenate(leaf_pieces)
        if lf.size:
            lf_key = _np.repeat(
                kernels._arange(n_seg), leaf_lens
            ) * u_size + universe.searchsorted(lf).astype(_np.intp)
            pos = _np.minimum(
                lf_key.searchsorted(u_key), lf_key.size - 1
            )
            fresh_mask = leaf_cand & (lf_key[pos] != u_key)
        else:
            fresh_mask = leaf_cand
        if not fresh_mask.any():
            return
        f_idx = _np.nonzero(fresh_mask)[0]
        f_seg = u_seg[f_idx]
        fbounds = _np.searchsorted(f_seg, kernels._arange(n_seg + 1))
        fsegs = _np.nonzero(fbounds[1:] > fbounds[:-1])[0]
        f_ids = u_ids[f_idx]
        for s in fsegs.tolist():
            lo, hi = fbounds[s], fbounds[s + 1]
            self._merge_fresh(per_seg[s][0], f_ids[lo:hi])

    def _fill_slots(self, state: _ArrayState, nids, nslots) -> None:
        """Admit novel ids into the prefix table, first-come per slot
        up to ``k``, honouring existing occupancy."""
        order = _np.argsort(nslots, kind="stable")
        ss = nslots[order]
        m = ss.size
        idx = _np.arange(m)
        new_group = _np.empty(m, dtype=bool)
        new_group[0] = True
        _np.not_equal(ss[1:], ss[:-1], out=new_group[1:])
        group_start = _np.maximum.accumulate(_np.where(new_group, idx, 0))
        keep_sorted = (idx - group_start) < (self._k - state.slot_count[ss])
        if not keep_sorted.any():
            return
        kept = order[keep_sorted]
        self._apply_admitted(state, nids[kept], nslots[kept])

    def _apply_admitted(self, state: _ArrayState, kids, kslots) -> None:
        """Install already-capped admissions into the resident arrays
        (shared by the scalar fill and the segmented wave absorb)."""
        _np.add.at(state.slot_count, kslots, 1)
        # Sorted-insert instead of re-sorting the whole table: kids is
        # small, the resident arrays stay id-sorted.
        ksort_order = _np.argsort(kids, kind="stable")
        ksort = kids[ksort_order]
        pos = state.prefix_ids.searchsorted(ksort)
        state.prefix_ids = _np.insert(state.prefix_ids, pos, ksort)
        state.prefix_slots = _np.insert(
            state.prefix_slots, pos, kslots[ksort_order]
        )
        state.stats_dirty = True
        known = state.known
        if known is not None:
            # Admitted ids are novel to the prefix table but may
            # already sit in the known union via the leaf set.
            kpos = _np.minimum(known.searchsorted(ksort), known.size - 1)
            add = known[kpos] != ksort
            if add.all():
                state.known = _np.insert(
                    known, known.searchsorted(ksort), ksort
                )
            elif add.any():
                sub = ksort[add]
                state.known = _np.insert(
                    known, known.searchsorted(sub), sub
                )

    def _merge_fresh(self, state: _ArrayState, fresh) -> None:
        """Reselect the leaf membership after novel candidates."""
        candidates = _np.concatenate((state.leaf, fresh))
        if candidates.size <= self._c:
            self._set_leaf(state, _np.sort(candidates))
        else:
            self._set_leaf(
                state,
                _np.sort(
                    kernels.select_balanced_arrays(
                        candidates,
                        state.node_id,
                        self._mask,
                        self._half_ring,
                        self._half_c,
                    )
                ),
            )

    def _set_leaf(self, state: _ArrayState, arr) -> None:
        if arr.size == state.leaf.size and _np.array_equal(arr, state.leaf):
            # The balanced reselect rejected every candidate: nothing
            # changed, so the ranked/known caches and the tracker's
            # cached deficit all stay valid.
            return
        state.leaf = arr
        state.leaf_ranked = None
        state.known = None
        state.stats_dirty = True
        fw = (arr - state.own_u64[0]) & self._mu
        succ = fw <= self._half_u
        n_succ = int(succ.sum())
        state.succ_count = n_succ
        state.pred_count = arr.size - n_succ
        state.succ_max = int(fw[succ].max()) if n_succ else -1
        if arr.size - n_succ:
            state.pred_max = int((((-fw) & self._mu)[~succ]).max())
        else:
            state.pred_max = -1
        state.leaf_full = arr.size >= self._c
        if state.leaf_full:
            # Admission window (see _ArrayState): a short side accepts
            # its whole half-ring, a full side only below/above its
            # worst kept distance.
            if state.succ_count < self._half_c:
                state.accept_lo = _np.uint64(self._half_ring + 1)
            else:
                state.accept_lo = _np.uint64(state.succ_max)
            if state.pred_count < self._half_c:
                state.accept_hi = self._half_u
            else:
                # pred_max >= 1 when the side is full, so this always
                # fits the ring's unsigned width.
                state.accept_hi = _np.uint64(
                    self._mask - state.pred_max + 1
                )

    def _absorb_single(self, state: _ArrayState, nid: int) -> None:
        """Scalar absorb of one id (the envelope sender)."""
        own = state.node_id
        if nid == own:
            return
        value = _np.uint64(nid)
        prefix_ids = state.prefix_ids
        pos = int(prefix_ids.searchsorted(value))
        if pos == prefix_ids.size or int(prefix_ids[pos]) != nid:
            row = self._row_of[(own ^ nid).bit_length()]
            slot = (row << self._digit_bits) | (
                (nid >> self._shift_of[row]) & self._base_mask
            )
            if state.slot_count[slot] < self._k:
                state.slot_count[slot] += 1
                state.prefix_ids = _np.insert(prefix_ids, pos, value)
                state.prefix_slots = _np.insert(
                    state.prefix_slots, pos, slot
                )
                state.stats_dirty = True
                known = state.known
                if known is not None:
                    kpos = int(known.searchsorted(value))
                    if kpos == known.size or int(known[kpos]) != nid:
                        state.known = _np.insert(known, kpos, value)
        fw = (nid - own) & self._mask
        if state.leaf_full:
            if not (fw < int(state.accept_lo) or fw > int(state.accept_hi)):
                return
        leaf = state.leaf
        lpos = int(leaf.searchsorted(value))
        if lpos == leaf.size or int(leaf[lpos]) != nid:
            self._merge_fresh(state, _np.array([nid], dtype=_np.uint64))

    # -- convergence measurement ---------------------------------------

    def live_view(self, ids: Sequence[int]):
        return _np.fromiter(ids, dtype=_np.uint64, count=len(ids))

    def pack_perfect(self, reference: ReferenceTables, node_id: int):
        """Cacheable per-node perfect-table arrays."""
        leaf = _np.fromiter(
            sorted(reference.perfect_leaf_ids(node_id)), dtype=_np.uint64
        )
        items = reference.perfect_prefix_counts(node_id).items()
        db = self._digit_bits
        pslots = _np.array(
            [(row << db) | col for (row, col), _ in items], dtype=_np.int64
        )
        needed = _np.array([need for _, need in items], dtype=_np.int64)
        return leaf, pslots, needed

    def node_missing(
        self, state: _ArrayState, packed, live, check_live: bool
    ) -> tuple[int, int]:
        """(missing leaf entries, missing prefix entries) of one node.

        Perfect ids are live by construction, so dead leaf entries
        never match and need no explicit filtering; prefix occupancy
        is live-filtered only when the run has ever killed a node.
        """
        perfect_leaf, pslots, needed = packed
        missing_leaf = perfect_leaf.size
        if state.leaf.size and missing_leaf:
            pos = _np.searchsorted(state.leaf, perfect_leaf)
            present = (
                state.leaf[_np.minimum(pos, state.leaf.size - 1)]
                == perfect_leaf
            )
            missing_leaf -= int(present.sum())
        if not pslots.size:
            return missing_leaf, 0
        have = None
        if check_live and state.prefix_ids.size:
            alive = ~_not_in_sorted(live, state.prefix_ids)
            if not alive.all():
                counts = _np.bincount(
                    state.prefix_slots[alive], minlength=self._n_slots
                )
                have = counts[pslots]
        if have is None:
            have = state.slot_count[pslots]
        missing_prefix = int(_np.maximum(needed - have, 0).sum())
        return missing_leaf, missing_prefix


# ----------------------------------------------------------------------
# pure-Python leg: set/dict node state over the shared list kernels
# ----------------------------------------------------------------------


class _SetState:
    """One node as plain sets and dicts (the no-numpy leg's state;
    same layout as the fast engine's ``FastNodeState`` minus the
    per-node RNG plumbing the vector engine replaces)."""

    __slots__ = (
        "node_id",
        "leaf_members",
        "leaf_sorted",
        "leaf_full",
        "succ_count",
        "succ_max",
        "pred_count",
        "pred_max",
        "prefix_slots",
        "prefix_ids",
        "stats_dirty",
        "started",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.leaf_members: set = set()
        self.leaf_sorted: list[int] | None = None
        self.leaf_full = False
        self.succ_count = 0
        self.succ_max = -1
        self.pred_count = 0
        self.pred_max = -1
        self.prefix_slots: dict[int, list[int]] = {}
        self.prefix_ids: set = set()
        # Set when either table actually mutates (prefix admission or
        # leaf membership change), cleared by the tracker when it
        # recomputes this node's deficit; see the tracker cache.
        self.stats_dirty = True
        self.started = False


class _PythonOps:
    """The same transitions over set state and the list kernels
    (which fall back to pure Python when numpy is absent).  Mirrors
    the fast engine's per-exchange logic with the per-call RNG
    replaced by pre-drawn samples."""

    kind = "python"

    def __init__(self, config: BootstrapConfig) -> None:
        space = config.space
        self._mask = space.size - 1
        self._half_ring = space.half
        self._bits = space.bits
        self._digit_bits = space.digit_bits
        self._base_mask = space.digit_base - 1
        self._k = config.entries_per_slot
        self._c = config.leaf_set_size
        self._half_c = config.half_leaf_set
        self._slot_tables = kernels.slot_tables(space.bits, space.digit_bits)
        self._row_of, self._shift_of = self._slot_tables

    # -- state / pool plumbing -----------------------------------------

    def new_state(self, node_id: int) -> _SetState:
        return _SetState(node_id)

    def live_pool(self, ids: list[int]) -> list[int]:
        return ids

    def gather(self, pool: list[int], index_matrix):
        return [[pool[i] for i in row] for row in index_matrix]

    def oracle_samples(self, pool: list[int], index_matrix):
        return self.gather(pool, index_matrix)

    def msg_row(self, buf, i: int):
        return buf[i]

    def as_ids(self, ids: list[int]) -> list[int]:
        return ids

    # -- protocol transitions ------------------------------------------

    def start_node(self, state: _SetState, samples: list[int]) -> None:
        state.prefix_slots.clear()
        state.prefix_ids.clear()
        state.stats_dirty = True
        own = state.node_id
        members = state.leaf_members
        # dict.fromkeys, not set(): dedup that preserves sample order,
        # so the merge sees a hash-seed-independent sequence.
        fresh = [
            nid
            for nid in dict.fromkeys(samples)
            if nid != own and nid not in members
        ]
        if fresh:
            self._merge_fresh(state, fresh)
        state.started = True

    def select_peer(self, state: _SetState, u: float, fallback):
        ranked = state.leaf_sorted
        if ranked is None:
            ranked = state.leaf_sorted = kernels.rank_ids(
                list(state.leaf_members), state.node_id, self._mask
            )
        if ranked:
            half = (len(ranked) + 1) // 2
            return ranked[min(int(u * half), half - 1)]
        own = state.node_id
        for nid in fallback:
            if nid != own:
                return nid
        return None

    def create_message(self, state: _SetState, peer_id: int, samples):
        union = set(state.prefix_ids)
        union |= state.leaf_members
        union.update(samples)
        union.add(state.node_id)
        union.discard(peer_id)
        close, rest = kernels.close_and_rest(
            union, peer_id, self._mask, self._half_ring, self._half_c
        )
        tail, tail_slots = kernels.prefix_part(
            rest,
            peer_id,
            self._bits,
            self._digit_bits,
            self._base_mask,
            self._k,
            self._slot_tables,
        )
        return close, tail, tail_slots

    def create_wave(self, jobs):
        """Wave creation on the fallback leg: the same wave-start-state
        scheduling semantics as the numpy leg, built message by
        message (there is nothing to batch without numpy)."""
        return [
            self.create_message(state, peer_id, samples)
            for state, peer_id, samples in jobs
        ]

    def absorb_wave(self, jobs, universe=None) -> None:
        """Wave absorb on the fallback leg: the scalar path per job
        (there is nothing to batch without numpy; *universe* is the
        numpy leg's dense id map and is unused here)."""
        for state, message, sender in jobs:
            self.absorb(state, message, sender)

    def absorb(self, state: _SetState, message, sender_id: int) -> None:
        close, tail, tail_slots = message
        own = state.node_id
        members = state.leaf_members
        prefix_ids = state.prefix_ids
        table = state.prefix_slots
        digit_bits = self._digit_bits
        base_mask = self._base_mask
        row_of = self._row_of
        shift_of = self._shift_of
        k = self._k
        fresh: list[int] = []
        effective = not state.leaf_full
        resident_before = len(prefix_ids)

        def scan_unslotted(ids) -> None:
            nonlocal effective
            for nid in ids:
                if nid not in prefix_ids:
                    row = row_of[(own ^ nid).bit_length()]
                    slot = (row << digit_bits) | (
                        (nid >> shift_of[row]) & base_mask
                    )
                    held = table.get(slot)
                    if held is None:
                        table[slot] = [nid]
                        prefix_ids.add(nid)
                    elif len(held) < k:
                        held.append(nid)
                        prefix_ids.add(nid)
                if nid not in members:
                    fresh.append(nid)
                    if not effective:
                        effective = self._can_affect_leaf(state, nid)

        scan_unslotted(close)
        for nid, slot in zip(tail, tail_slots, strict=True):
            if nid not in prefix_ids:
                held = table.get(slot)
                if held is None:
                    table[slot] = [nid]
                    prefix_ids.add(nid)
                elif len(held) < k:
                    held.append(nid)
                    prefix_ids.add(nid)
            if nid not in members:
                fresh.append(nid)
                if not effective:
                    effective = self._can_affect_leaf(state, nid)
        if sender_id != own:
            scan_unslotted((sender_id,))
        if len(prefix_ids) != resident_before:
            # Admissions only ever add, so a length change is exactly
            # "the table mutated" -- the tracker's cached deficit for
            # this node is stale.  Leaf changes dirty via _set_leaf.
            state.stats_dirty = True
        if fresh and effective:
            self._merge_fresh(state, fresh)

    def _can_affect_leaf(self, state: _SetState, nid: int) -> bool:
        fw = (nid - state.node_id) & self._mask
        if fw <= self._half_ring:
            return state.succ_count < self._half_c or fw < state.succ_max
        return (
            state.pred_count < self._half_c
            or self._mask + 1 - fw < state.pred_max
        )

    def _merge_fresh(self, state: _SetState, fresh: list[int]) -> None:
        candidates = state.leaf_members | set(fresh)
        if len(candidates) <= self._c:
            self._set_leaf(state, candidates)
        else:
            self._set_leaf(
                state,
                kernels.select_balanced(
                    candidates,
                    state.node_id,
                    self._mask,
                    self._half_ring,
                    self._half_c,
                ),
            )

    def _set_leaf(self, state: _SetState, members: set) -> None:
        if members == state.leaf_members:
            # Reselect kept the same membership: caches and the
            # tracker's cached deficit stay valid.
            return
        state.leaf_members = members
        state.leaf_sorted = None
        state.stats_dirty = True
        own = state.node_id
        mask = self._mask
        half_ring = self._half_ring
        succ_count = pred_count = 0
        succ_max = pred_max = -1
        for nid in members:
            fw = (nid - own) & mask
            if fw <= half_ring:
                succ_count += 1
                if fw > succ_max:
                    succ_max = fw
            else:
                bw = mask + 1 - fw
                pred_count += 1
                if bw > pred_max:
                    pred_max = bw
        state.succ_count = succ_count
        state.succ_max = succ_max
        state.pred_count = pred_count
        state.pred_max = pred_max
        state.leaf_full = len(members) >= self._c

    # -- convergence measurement ---------------------------------------

    def live_view(self, ids: Sequence[int]) -> set:
        return set(ids)

    def pack_perfect(self, reference: ReferenceTables, node_id: int):
        db = self._digit_bits
        packed_slots = [
            ((row << db) | col, need)
            for (row, col), need in reference.perfect_prefix_counts(
                node_id
            ).items()
        ]
        return reference.perfect_leaf_ids(node_id), packed_slots

    def node_missing(
        self, state: _SetState, packed, live: set, check_live: bool
    ) -> tuple[int, int]:
        perfect_leaf, packed_slots = packed
        members = state.leaf_members
        if check_live and not members <= live:
            members = members & live
        missing_leaf = len(perfect_leaf - members)
        missing_prefix = 0
        slots = state.prefix_slots
        if check_live and not state.prefix_ids <= live:
            for slot, needed in packed_slots:
                held = slots.get(slot)
                have = sum(1 for nid in held if nid in live) if held else 0
                if have < needed:
                    missing_prefix += needed - have
        else:
            for slot, needed in packed_slots:
                held = slots.get(slot)
                have = len(held) if held else 0
                if have < needed:
                    missing_prefix += needed - have
        return missing_leaf, missing_prefix


# ----------------------------------------------------------------------
# Tracker and simulation
# ----------------------------------------------------------------------


class VectorConvergenceTracker:
    """Convergence measurement over vector-engine node states.

    Produces the same :class:`ConvergenceSample` metric as the
    reference tracker; the per-node arithmetic is delegated to the
    active leg's ops (vectorised on numpy, set-based on the fallback).
    """

    def __init__(self, ops, reference: ReferenceTables, states) -> None:
        self._ops = ops
        self.samples: list[ConvergenceSample] = []
        self.rebind(reference, states)

    def rebind(self, reference: ReferenceTables, states) -> None:
        """Swap reference and population, keeping the sample history."""
        self._reference = reference
        self._states = [s for s in states if s.node_id in reference]
        self._live = self._ops.live_view(reference.ids)
        self._packed: dict[int, object] = {}
        # Per-node deficits are cached between measurements and
        # recomputed only for nodes whose tables changed
        # (``stats_dirty``); membership events land here and wipe the
        # cache, so liveness filtering always sees fresh values.
        self._deficits: dict[int, tuple[int, int]] = {}

    def measure(self, cycle: float, check_live: bool) -> ConvergenceSample:
        """Take one network-wide measurement and append it to
        :attr:`samples` (same metric as the reference tracker;
        *check_live* enables dead-entry filtering once any node has
        been killed)."""
        ops = self._ops
        reference = self._reference
        live = self._live
        packed_cache = self._packed
        deficits = self._deficits
        missing_leaf = 0
        missing_prefix = 0
        for state in self._states:
            node_id = state.node_id
            if state.stats_dirty or node_id not in deficits:
                packed = packed_cache.get(node_id)
                if packed is None:
                    packed = packed_cache[node_id] = ops.pack_perfect(
                        reference, node_id
                    )
                deficits[node_id] = ops.node_missing(
                    state, packed, live, check_live
                )
                state.stats_dirty = False
            ml, mp = deficits[node_id]
            missing_leaf += ml
            missing_prefix += mp
        total_leaf, total_prefix = reference.totals()
        sample = ConvergenceSample(
            cycle=cycle,
            missing_leaf=missing_leaf,
            total_leaf=total_leaf,
            missing_prefix=missing_prefix,
            total_prefix=total_prefix,
        )
        self.samples.append(sample)
        return sample


class VectorBootstrapSimulation:
    """Whole-cycle-batched twin of :class:`BootstrapSimulation`.

    Same parameters and experiment surface as the other engines; see
    the module docstring for the relaxed (distributional) equivalence
    contract and :mod:`repro.engine_vector.rng` for the RNG stream.
    """

    engine_name = "vector"

    def __init__(
        self,
        size: int | None = None,
        *,
        ids: Sequence[int] | None = None,
        config: BootstrapConfig = PAPER_CONFIG,
        seed: int = 1,
        network: NetworkModel = RELIABLE,
        sampler: str = "oracle",
        newscast_view_size: int = 30,
        wave: int | None = None,
        absorb: str | None = None,
    ) -> None:
        if sampler not in SAMPLER_KINDS:
            raise ValueError(
                f"sampler must be one of {SAMPLER_KINDS}, got {sampler!r}"
            )
        if wave is not None and wave < 1:
            raise ValueError(f"wave must be >= 1, got {wave}")
        if ids is None:
            if size is None or size < 2:
                raise ValueError("need size >= 2 or an explicit id list")
        self.config = config
        self.seed = seed
        self.network = network
        self.sampler_kind = sampler
        # Wave size: how many exchanges are message-built together
        # from wave-start state per batch (None = ``n // 16`` clamped
        # to [1, 64]); see ``create_wave`` for the staleness bound.
        self._wave = wave
        # Absorb dispatch: ``batch`` drains each wave through the
        # segmented slab pass (bit-identical to ``single``).
        self.absorb_mode = absorb_mode(absorb)
        self.backend = vrng.backend()
        self._ops = (
            _NumpyOps(config) if self.backend == "numpy"
            else _PythonOps(config)
        )
        self._source = RandomSource(seed)
        self._draws = make_draw_source(derive_seed(seed, "vector-rng"))
        space = config.space
        self._space = space
        self._c = config.leaf_set_size
        self._cr = config.random_samples

        if ids is None:
            id_list = space.random_unique_ids(size, self._source.derive("ids"))
        else:
            id_list = list(ids)
            if len(set(id_list)) != len(id_list):
                raise ValueError("identifier list contains duplicates")
            for node_id in id_list:
                space.validate(node_id)
            if len(id_list) < 2:
                raise ValueError("need at least 2 identifiers")

        self.registry = FastRegistry()
        self.nodes: dict[int, object] = {}
        self.newscast: dict[int, VectorNewscastView] = {}
        self._next_address = 0
        self._unstarted: set = set()
        self._pool = None
        # Every identifier ever admitted, in admission order; the
        # sorted numpy form is the wave absorb's dense id universe
        # (dead ids stay -- they persist in tables and messages).
        self._ids_ever: list[int] = []
        self._universe = None

        self._boot = _Layer()
        self._news: _Layer | None = None
        if sampler == "newscast":
            self._news = _Layer()
        self._newscast_view_size = newscast_view_size

        for node_id in id_list:
            self._admit(node_id)
        if sampler == "newscast":
            self._seed_newscast_views()

        self.reference = ReferenceTables(
            space, id_list, config.leaf_set_size, config.entries_per_slot
        )
        self.tracker = VectorConvergenceTracker(
            self._ops, self.reference, self.nodes.values()
        )
        self._membership_dirty = False
        self._ever_killed = False

    # ------------------------------------------------------------------
    # Node admission / removal (same seed-tree names as the reference)
    # ------------------------------------------------------------------

    def _admit(self, node_id: int):
        self._space.validate(node_id)
        self._next_address += 1
        self._ids_ever.append(node_id)
        self._universe = None
        self.registry.add(node_id)
        if self.sampler_kind == "newscast":
            self.newscast[node_id] = VectorNewscastView(
                node_id, self._newscast_view_size
            )
            assert self._news is not None
            self._news.dirty = True
        state = self._ops.new_state(node_id)
        self.nodes[node_id] = state
        self._unstarted.add(node_id)
        self._boot.dirty = True
        return state

    def _seed_newscast_views(self) -> None:
        """Initial NEWSCAST views: same seed-tree derivation as the
        reference, so all engines start from identical views."""
        rng = self._source.derive("newscast-seed")
        for view in self.newscast.values():
            view.seed(
                self.registry.sample(
                    self._newscast_view_size, rng, exclude_id=view.own_id
                )
            )

    # ------------------------------------------------------------------
    # Membership mutation (the schedule-facing surface)
    # ------------------------------------------------------------------

    @property
    def population(self) -> int:
        """Current number of live nodes."""
        return len(self.nodes)

    @property
    def live_ids(self) -> list[int]:
        """Identifiers of live nodes (admission order)."""
        return list(self.nodes)

    def kill_node(self, node_id: int) -> bool:
        """Crash *node_id* (mirrors ``BootstrapSimulation.kill_node``)."""
        state = self.nodes.pop(node_id, None)
        if state is None:
            return False
        self.registry.remove(node_id)
        self._unstarted.discard(node_id)
        self._boot.dirty = True
        if self._news is not None:
            self.newscast.pop(node_id, None)
            self._news.dirty = True
        self._membership_dirty = True
        self._ever_killed = True
        return True

    def spawn_node(self, node_id: int | None = None):
        """Join a brand-new node (same seed-tree derivations as the
        reference, so spawned identifiers match across engines)."""
        if node_id is None:
            rng = self._source.derive(("spawn", self._next_address))
            node_id = self._space.random_id(rng)
            while node_id in self.nodes:
                node_id = self._space.random_id(rng)
        elif node_id in self.nodes:
            raise ValueError(f"identifier {node_id:#x} already live")
        state = self._admit(node_id)
        if self.sampler_kind == "newscast":
            rng = self._source.derive(("newscast-join", node_id))
            self.newscast[node_id].seed(
                self.registry.sample(
                    self._newscast_view_size, rng, exclude_id=node_id
                )
            )
        self._membership_dirty = True
        return state

    def absorb_pool(self, ids: Iterable[int]) -> list[object]:
        """Merge a pool of identifiers into this network."""
        return [self.spawn_node(node_id) for node_id in ids]

    def _wave_universe(self):
        """The sorted dense id universe for the wave absorb (numpy
        leg; the fallback leg's wave loop ignores it)."""
        if self.backend != "numpy":
            return None
        universe = self._universe
        if universe is None:
            count = len(self._ids_ever)
            universe = self._universe = _np.sort(
                _np.fromiter(self._ids_ever, dtype=_np.uint64, count=count)
            )
        return universe

    def _refresh_reference(self) -> None:
        self.reference = ReferenceTables(
            self._space,
            self.nodes.keys(),
            self.config.leaf_set_size,
            self.config.entries_per_slot,
        )
        self.tracker.rebind(self.reference, self.nodes.values())
        self._membership_dirty = False

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._boot.cycle

    def run_cycle(self) -> None:
        """One Δ interval: NEWSCAST gossips first (when live), then
        every bootstrap node performs one exchange."""
        if self._news is not None:
            self._newscast_cycle()
        self._bootstrap_cycle()

    def _bootstrap_cycle(self) -> None:
        layer = self._boot
        nodes = self.nodes
        ops = self._ops
        draws = self._draws
        if layer.dirty:
            layer.order = list(nodes)
            self._pool = ops.live_pool(layer.order)
            layer.dirty = False
        order = list(layer.order)
        draws.shuffle(order)
        n = len(order)
        if n == 0:
            layer.cycle += 1
            return
        cr = self._cr
        oracle = self.sampler_kind == "oracle"
        peer_u = draws.floats(n)
        drop_p = self.network.drop_probability
        req_coins = rep_coins = None
        if drop_p:
            req_coins = draws.floats(n)
            rep_coins = draws.floats(n)
        n_start = len(self._unstarted)
        if oracle:
            start_rows = (
                ops.gather(self._pool, draws.index_matrix(n, n_start, self._c))
                if n_start
                else None
            )
            sample_buf = ops.oracle_samples(
                self._pool, draws.index_matrix(n, 2 * n, cr)
            )
        else:
            start_f = draws.float_matrix(n_start, self._c) if n_start else None
            sample_f = draws.float_matrix(2 * n, cr)
        newscast = self.newscast
        stats = layer.stats
        get = nodes.get
        msg_row = ops.msg_row
        select_peer = ops.select_peer
        create_wave = ops.create_wave
        absorb = ops.absorb
        wave = self._wave or max(1, min(64, n // 16))
        batch = self.absorb_mode == "batch"
        pending: list[tuple] = []

        def flush() -> None:
            jobs = []
            for _, nid_, state_, peer_, target_, rq, rp in pending:
                jobs.append((state_, peer_, rq))
                jobs.append((target_, nid_, rp))
            messages = create_wave(jobs)
            # Drop coins decide which absorbs survive; the survivors
            # are collected in arrival order and drained in one wave
            # (the segmented slab pass, bit-identical to replaying
            # ``absorb`` per survivor -- the ``single`` mode).
            absorbs: list[tuple] = []
            for j, (i_, nid_, state_, peer_, target_, _rq, _rp) in enumerate(
                pending
            ):
                if drop_p and req_coins[i_] < drop_p:
                    stats.requests_dropped += 1
                    stats.suppressed_replies += 1
                    continue
                absorbs.append((target_, messages[2 * j], nid_))
                stats.replies_sent += 1
                if drop_p and rep_coins[i_] < drop_p:
                    stats.replies_dropped += 1
                    continue
                absorbs.append((state_, messages[2 * j + 1], peer_))
            if batch and len(absorbs) > 1:
                ops.absorb_wave(absorbs, self._wave_universe())
            else:
                for state_, message_, sender_ in absorbs:
                    absorb(state_, message_, sender_)
            pending.clear()

        start_ptr = 0
        for i, nid in enumerate(order):
            state = get(nid)
            if state is None:
                continue
            if oracle:
                req_row = msg_row(sample_buf, i)
            else:
                req_row = ops.as_ids(newscast[nid].sample(cr, sample_f[i]))
            if not state.started:
                if oracle:
                    seeds = start_rows[start_ptr]
                else:
                    seeds = ops.as_ids(
                        newscast[nid].sample(self._c, start_f[start_ptr])
                    )
                start_ptr += 1
                ops.start_node(state, seeds)
                self._unstarted.discard(nid)
            peer_id = select_peer(state, peer_u[i], req_row)
            if peer_id is None:
                continue
            target = get(peer_id)
            stats.exchanges += 1
            stats.requests_sent += 1
            if target is None:
                # Void target: the request's content is unobservable
                # (nobody absorbs it) and the batched samples are
                # pre-drawn, so the message build is skipped outright.
                if drop_p and req_coins[i] < drop_p:
                    stats.requests_dropped += 1
                else:
                    stats.void_requests += 1
                stats.suppressed_replies += 1
                continue
            if oracle:
                rep_row = msg_row(sample_buf, n + i)
            else:
                rep_row = ops.as_ids(
                    newscast[peer_id].sample(cr, sample_f[n + i])
                )
            pending.append((i, nid, state, peer_id, target, req_row, rep_row))
            if len(pending) >= wave:
                flush()
        if pending:
            flush()
        layer.cycle += 1

    def _newscast_cycle(self) -> None:
        layer = self._news
        views = self.newscast
        draws = self._draws
        now = float(layer.cycle)
        if layer.dirty:
            layer.order = list(views)
            layer.dirty = False
        order = list(layer.order)
        draws.shuffle(order)
        n = len(order)
        if n == 0:
            layer.cycle += 1
            return
        for view in views.values():
            view.now = now
        peer_u = draws.floats(n)
        drop_p = self.network.drop_probability
        req_coins = rep_coins = None
        if drop_p:
            req_coins = draws.floats(n)
            rep_coins = draws.floats(n)
        stats = layer.stats
        get = views.get
        for i, nid in enumerate(order):
            view = get(nid)
            if view is None:
                continue
            peer_id = view.select_peer(peer_u[i])
            if peer_id is None:
                continue
            request = view.payload()
            stats.exchanges += 1
            stats.requests_sent += 1
            if drop_p and req_coins[i] < drop_p:
                stats.requests_dropped += 1
                stats.suppressed_replies += 1
                continue
            target = get(peer_id)
            if target is None:
                stats.void_requests += 1
                stats.suppressed_replies += 1
                continue
            reply = target.payload()
            target.merge(request)
            stats.replies_sent += 1
            if drop_p and rep_coins[i] < drop_p:
                stats.replies_dropped += 1
                continue
            view.merge(reply)
        layer.cycle += 1

    # ------------------------------------------------------------------
    # Measurement and experiment running (reference API)
    # ------------------------------------------------------------------

    def measure(self) -> ConvergenceSample:
        """Measure convergence now (rebuilding the reference first if
        membership changed)."""
        if self._membership_dirty:
            self._refresh_reference()
        return self.tracker.measure(
            float(self._boot.cycle), self._ever_killed
        )

    def run(
        self,
        max_cycles: int = 60,
        *,
        stop_when_perfect: bool = True,
        schedules: Sequence[object] = (),
        measure_every: int = 1,
    ) -> SimulationResult:
        """Run the experiment (same semantics and parameters as
        ``BootstrapSimulation.run``)."""
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        if measure_every < 1:
            raise ValueError(
                f"measure_every must be >= 1, got {measure_every}"
            )
        started_at = self._boot.cycle
        for cycle_index in range(max_cycles):
            for schedule in schedules:
                schedule.apply(self, cycle_index)
            self.run_cycle()
            if (cycle_index + 1) % measure_every == 0:
                sample = self.measure()
                if stop_when_perfect and sample.is_perfect:
                    break
        if not self.tracker.samples:
            self.measure()
        return self._result(started_at)

    def _result(self, started_at: int = 0) -> SimulationResult:
        converged_at = next(
            (
                s.cycle
                for s in self.tracker.samples
                if s.cycle > started_at and s.is_perfect
            ),
            None,
        )
        return SimulationResult(
            samples=tuple(self.tracker.samples),
            converged_at=converged_at,
            population=self.population,
            transport=self._boot.stats.snapshot(),
            config=self.config,
            seed=self.seed,
            cycles_run=self._boot.cycle - started_at,
            started_at_cycle=started_at,
            engine="vector",
        )
