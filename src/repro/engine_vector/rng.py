"""Batched randomness for the vector engine.

The reference and fast engines spread a run's randomness over many
named ``random.Random`` streams (one per node, per sampler endpoint,
per gossip layer) because their contract is *bit-identical replay*.
The vector engine's contract is **distributional** identity, which
frees it to draw everything a cycle needs -- the activation
permutation, per-exchange peer picks, message-drop coins, and
peer-sampling index matrices -- in a handful of bulk calls against
**one generator per simulation**:

* the numpy leg wraps a single ``numpy.random.Generator``
  (``default_rng`` / PCG64), seeded with
  ``derive_seed(seed, "vector-rng")``;
* the pure-Python fallback wraps a single ``random.Random`` under the
  same derived seed.

Both legs are deterministic per ``(seed, backend)``, but their streams
differ from each other and from the reference engine's -- that is the
documented trade the vector engine makes for whole-cycle batching (see
the package docstring for what is and is not preserved).

Backend selection mirrors :mod:`repro.engine_fast.kernels`:
``REPRO_VECTOR_BACKEND`` pins the session default, and
:func:`set_backend` is the runtime/testing hook.  Unlike the fast
kernels there is no size threshold -- the two legs produce *different*
(equally valid) trajectories, so the choice is per-simulation, never
per-call.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .. import seams

try:  # pragma: no cover - exercised via both backend parametrisations
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "backend",
    "set_backend",
    "make_draw_source",
    "NumpyDrawSource",
    "PythonDrawSource",
    "sample_distinct",
]

_DEFAULT_BACKEND = seams.enum("REPRO_VECTOR_BACKEND")
if _DEFAULT_BACKEND == "numpy" and _np is None:
    raise ImportError(
        "REPRO_VECTOR_BACKEND=numpy but numpy is not installed"
    )
_backend = _DEFAULT_BACKEND


def backend() -> str:
    """The active vector-engine backend: ``"numpy"`` or ``"python"``."""
    return "numpy" if _np is not None and _backend != "python" else "python"


def set_backend(name: str) -> None:
    """Force a backend for subsequently *constructed* simulations.

    ``"auto"`` restores the session default (the
    ``REPRO_VECTOR_BACKEND`` pin captured at import, or numpy-if-
    available).  Running simulations keep the backend they were built
    with -- the two legs' trajectories differ, so switching mid-run
    would make a run neither leg's.
    """
    global _backend
    if name not in ("auto", "numpy", "python"):
        raise ValueError(f"backend must be auto|numpy|python, got {name!r}")
    if name == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is not installed")
    _backend = _DEFAULT_BACKEND if name == "auto" else name


class NumpyDrawSource:
    """All of a simulation's exchange randomness from one
    ``numpy.random.Generator``."""

    kind = "numpy"

    __slots__ = ("_rng",)

    def __init__(self, seed: int) -> None:
        self._rng = _np.random.default_rng(seed)

    def shuffle(self, items: list[int]) -> None:
        """Shuffle a Python list in place (one ``permutation`` draw)."""
        order = self._rng.permutation(len(items))
        items[:] = [items[i] for i in order]

    def floats(self, count: int):
        """*count* uniform floats in ``[0, 1)`` as an ndarray."""
        return self._rng.random(count)

    def index_matrix(self, bound: int, rows: int, cols: int):
        """A ``rows x cols`` matrix of uniform indices below *bound*."""
        if rows == 0 or cols == 0 or bound == 0:
            return _np.empty((rows, cols), dtype=_np.intp)
        return self._rng.integers(0, bound, size=(rows, cols))

    def float_matrix(self, rows: int, cols: int):
        """A ``rows x cols`` matrix of uniform floats in ``[0, 1)``."""
        return self._rng.random((rows, cols))


class PythonDrawSource:
    """The same draw surface over a single ``random.Random`` (the
    no-numpy leg).  Deterministic per seed, but a *different* stream
    from the numpy leg's."""

    kind = "python"

    __slots__ = ("_rng",)

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def shuffle(self, items: list[int]) -> None:
        """Shuffle a Python list in place."""
        self._rng.shuffle(items)

    def floats(self, count: int) -> list[float]:
        """*count* uniform floats in ``[0, 1)`` as a list."""
        rand = self._rng.random
        return [rand() for _ in range(count)]

    def index_matrix(self, bound: int, rows: int, cols: int):
        """A ``rows x cols`` list-of-lists of uniform indices below
        *bound* (float-scaled with a clamp against the 1-ulp edge)."""
        if rows == 0 or cols == 0 or bound == 0:
            return [[] for _ in range(rows)]
        rand = self._rng.random
        last = bound - 1
        return [
            [min(int(rand() * bound), last) for _ in range(cols)]
            for _ in range(rows)
        ]

    def float_matrix(self, rows: int, cols: int):
        """A ``rows x cols`` list-of-lists of uniform floats."""
        rand = self._rng.random
        return [[rand() for _ in range(cols)] for _ in range(rows)]


def make_draw_source(seed: int):
    """Instantiate the active backend's draw source for *seed*."""
    if backend() == "numpy":
        return NumpyDrawSource(seed)
    return PythonDrawSource(seed)


def sample_distinct(
    pool: Sequence[int], count: int, floats: Sequence[float]
) -> list[int]:
    """*count* distinct elements of *pool* via a partial Fisher-Yates
    walk consuming ``floats[:count]`` -- the distribution of
    ``random.sample`` realised from pre-drawn uniforms (used for
    NEWSCAST view sampling, whose pools are small enough that
    distinctness matters).
    """
    n = len(pool)
    if count >= n:
        return list(pool)
    scratch = list(pool)
    out: list[int] = []
    for j in range(count):
        span = n - j
        i = j + min(int(floats[j] * span), span - 1)
        scratch[j], scratch[i] = scratch[i], scratch[j]
        out.append(scratch[j])
    return out
