"""Vectorised-semantics simulation engine (``engine="vector"``).

This package is the third side of the engine seam.  Unlike
:mod:`repro.engine_fast` -- which replays the reference engine's RNG
streams bit-for-bit -- the vector engine relaxes bit-identity to
**distributional** identity: all of a cycle's randomness is drawn in
bulk from one ``numpy.random.Generator`` per simulation (a single
``random.Random`` on the no-numpy fallback leg), and per-node state
lives in sorted id arrays so whole exchanges run as numpy array
operations.  Deterministic per ``(seed, backend)``; statistically
equivalent to the reference engine (mean convergence curves,
convergence-cycle summaries, transport loss fractions), as pinned by
``tests/test_engine_vector.py``.  See :mod:`repro.engine_vector.sim`
for the exact contract and :mod:`repro.engine_vector.rng` for the
stream semantics and the ``REPRO_VECTOR_BACKEND`` override.
"""

from .rng import backend, set_backend
from .sim import (
    VectorBootstrapSimulation,
    VectorConvergenceTracker,
    VectorNewscastView,
)

__all__ = [
    "backend",
    "set_backend",
    "VectorBootstrapSimulation",
    "VectorConvergenceTracker",
    "VectorNewscastView",
]
