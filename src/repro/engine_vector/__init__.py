"""Vectorised-semantics simulation engine (``engine="vector"``).

This package is the third side of the engine seam.  Unlike
:mod:`repro.engine_fast` -- which replays the reference engine's RNG
streams bit-for-bit -- the vector engine relaxes bit-identity to
**distributional** identity: all of a cycle's randomness is drawn in
bulk from one ``numpy.random.Generator`` per simulation (a single
``random.Random`` on the no-numpy fallback leg), and per-node state
lives in sorted id arrays so whole exchanges run as numpy array
operations.  Deterministic per ``(seed, backend)``; statistically
equivalent to the reference engine (mean convergence curves,
convergence-cycle summaries, transport loss fractions), as pinned by
``tests/test_engine_vector.py``.  See :mod:`repro.engine_vector.sim`
for the exact contract and :mod:`repro.engine_vector.rng` for the
stream semantics and the ``REPRO_VECTOR_BACKEND`` override.

On the numpy leg, node state defaults to one pool-resident
structure-of-arrays arena for the whole population
(:mod:`repro.engine_vector.arena`); ``REPRO_VECTOR_STATE=pernode``
restores the per-node array objects, bit-identically.
"""

from .rng import backend, set_backend
from .sim import (
    ABSORB_MODES,
    STATE_MODES,
    VectorBootstrapSimulation,
    VectorConvergenceTracker,
    VectorNewscastView,
    absorb_mode,
    state_mode,
)

__all__ = [
    "ABSORB_MODES",
    "STATE_MODES",
    "absorb_mode",
    "backend",
    "set_backend",
    "state_mode",
    "VectorBootstrapSimulation",
    "VectorConvergenceTracker",
    "VectorNewscastView",
]
