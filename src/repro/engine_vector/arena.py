"""Pool-resident structure-of-arrays state for the vector engine.

The numpy leg originally kept one ``_ArrayState`` object per node --
half a dozen small arrays each -- and every wave kernel re-assembled
slabs from per-node pieces (``[state.leaf for state, _ in per_seg]``).
Past ~2^16 nodes the engine's ceiling is exactly that object layer:
allocator traffic for tiny arrays, pointer-chasing gathers, and a
Python attribute hop per touched field.

This module replaces the layer with one **arena** per simulation:

* fixed-width per-node fields (own id, leaf table + length, ranked
  cache, occupancy counts, admission windows, flags) live in
  preallocated contiguous slabs indexed by a dense node *rank*;
* variable-length per-node tables (prefix ids/slots) live as windows
  over shared growable buffers (:class:`_VarPool`), with per-rank
  offset/length/capacity cursors; the derived known-union cache stays
  an exact-size array on the handle (it churns too fast to pool);
* :class:`_ArenaState` is a two-word handle ``(arena, rank)`` exposing
  the exact ``_ArrayState`` attribute surface as properties over the
  slabs, so every transition kernel runs unchanged on either layout --
  which is what keeps the two layouts **bit-identical** (pinned by the
  differential suite, ``tests/test_engine_vector_arena.py``);
* :class:`SlabMeasure` recomputes convergence deficits for all dirty
  ranks in one slab scan instead of a Python loop per node.

Ranks are recycled through a free list on node death, windows are
compacted when a pool buffer fills, and slabs double when the
population outgrows them -- so churn-heavy schedules keep the arena's
footprint proportional to the live population's tables, not to the
membership event count.

numpy-only: the pure-Python fallback leg keeps its set-based state
(there are no slabs to win without numpy).
"""

from __future__ import annotations

from ..engine_fast import kernels

try:  # pragma: no cover - exercised via both backend parametrisations
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["Arena", "ArenaState", "SlabMeasure"]


class _VarPool:
    """Variable-length per-rank windows over one shared buffer.

    Each rank owns a ``(offset, length, capacity)`` window; writes that
    fit the capacity are in-place, larger writes relocate the window to
    the buffer tail with geometric headroom, and a full buffer is
    compacted into a fresh one sized at 1.25x the in-use capacity.
    Relocation never invalidates data already handed out: views into
    the old buffer keep it alive and are, by construction, only read
    before the write that moved the window.  After a compaction the
    pool tells its owner (*on_compact*) so cached window views can be
    dropped -- otherwise every handle still holding a view would pin
    the superseded buffer, and the resident footprint would grow by a
    whole pool generation per compaction (values are copied, so a
    re-taken view is identical).
    """

    __slots__ = ("buf", "off", "len", "cap", "tail", "on_compact")

    def __init__(
        self, capacity: int, dtype, item_hint: int, on_compact=None
    ) -> None:
        self.off = _np.zeros(capacity, dtype=_np.intp)
        self.len = _np.zeros(capacity, dtype=_np.intp)
        self.cap = _np.zeros(capacity, dtype=_np.intp)
        self.buf = _np.empty(max(64, capacity * item_hint), dtype=dtype)
        self.tail = 0
        self.on_compact = on_compact

    def grow_ranks(self, capacity: int) -> None:
        """Extend the per-rank cursor arrays (new ranks own nothing)."""
        for name in ("off", "len", "cap"):
            old = getattr(self, name)
            arr = _np.zeros(capacity, dtype=_np.intp)
            arr[: old.size] = old
            setattr(self, name, arr)

    def view(self, rank: int):
        o = self.off[rank]
        return self.buf[o:o + self.len[rank]]

    def release(self, rank: int) -> None:
        self.off[rank] = 0
        self.len[rank] = 0
        self.cap[rank] = 0

    def write(self, rank: int, arr, n_ranks: int) -> None:
        n = arr.size
        if n <= self.cap[rank]:
            o = self.off[rank]
            self.buf[o:o + n] = arr
            self.len[rank] = n
            return
        newcap = max(8, n + (n >> 2))
        if self.tail + newcap > self.buf.size:
            self._compact(rank, n_ranks, newcap)
        o = self.tail
        self.buf[o:o + n] = arr
        self.off[rank] = o
        self.len[rank] = n
        self.cap[rank] = newcap
        self.tail = o + newcap

    def _compact(self, rank: int, n_ranks: int, extra: int) -> None:
        """Copy every in-use window (except *rank*'s abandoned one)
        into a fresh buffer with 1.25x headroom.  Windows stabilise
        once the protocol converges, so modest headroom costs a few
        extra warm-up compactions while keeping the pool's resident
        slack (the bytes-per-node gate's biggest term) small."""
        caps = self.cap
        offs = self.off
        lens = self.len
        total = extra
        for r in range(n_ranks):
            if r != rank:
                total += int(caps[r])
        old = self.buf
        buf = _np.empty(max(64, total + (total >> 2)), dtype=old.dtype)
        tail = 0
        for r in range(n_ranks):
            if r == rank:
                continue
            c = int(caps[r])
            if c == 0:
                continue
            ln = int(lens[r])
            o = int(offs[r])
            buf[tail:tail + ln] = old[o:o + ln]
            offs[r] = tail
            tail += c
        self.buf = buf
        self.tail = tail
        if self.on_compact is not None:
            self.on_compact()


class Arena:
    """The population's slabs (see the module docstring for layout)."""

    __slots__ = (
        "n_slots",
        "node_ids",
        "leaf",
        "leaf_len",
        "ranked",
        "ranked_valid",
        "leaf_full",
        "started",
        "stats_dirty",
        "succ_count",
        "succ_max",
        "pred_count",
        "pred_max",
        "accept_lo",
        "accept_hi",
        "slot_count",
        "p_ids",
        "p_slots",
        "p_dense",
        "p_dense_valid",
        "leaf_dense",
        "leaf_dense_valid",
        "dense_universe",
        "def_leaf",
        "def_prefix",
        "def_valid",
        "free",
        "n_ranks",
        "handles",
    )

    def __init__(self, n_slots: int, leaf_width: int, capacity: int) -> None:
        self.n_slots = n_slots
        self.free: list[int] = []
        self.n_ranks = 0
        cap = max(4, capacity)
        self.node_ids = _np.empty(cap, dtype=_np.uint64)
        self.leaf = _np.empty((cap, leaf_width), dtype=_np.uint64)
        self.leaf_len = _np.zeros(cap, dtype=_np.intp)
        self.ranked = _np.empty((cap, leaf_width), dtype=_np.uint64)
        self.ranked_valid = _np.zeros(cap, dtype=bool)
        self.leaf_full = _np.zeros(cap, dtype=bool)
        self.started = _np.zeros(cap, dtype=bool)
        self.stats_dirty = _np.zeros(cap, dtype=bool)
        self.succ_count = _np.zeros(cap, dtype=_np.int64)
        self.succ_max = _np.zeros(cap, dtype=_np.int64)
        self.pred_count = _np.zeros(cap, dtype=_np.int64)
        self.pred_max = _np.zeros(cap, dtype=_np.int64)
        self.accept_lo = _np.zeros(cap, dtype=_np.uint64)
        self.accept_hi = _np.zeros(cap, dtype=_np.uint64)
        # Occupancy fits int16 with lots of slack (``k`` is tiny); it
        # is the widest fixed-cost field, so the narrow dtype halves
        # the dominant flat per-node footprint.
        self.slot_count = _np.zeros((cap, n_slots), dtype=_np.int16)
        # Live handles by rank, so pool compactions can drop the
        # superseded cached window views (see _VarPool.on_compact).
        self.handles: dict[int, ArenaState] = {}
        self.p_ids = _VarPool(
            cap, _np.uint64, 16, self._drop_cached_views("p_ids")
        )
        self.p_slots = _VarPool(
            cap, _np.int16, 16, self._drop_cached_views("p_slots")
        )
        # Pool-resident dense-index caches: each rank's
        # ``universe.searchsorted`` of its prefix/leaf table, refreshed
        # only when the table or the universe changes, so the wave
        # absorb's novelty keys are pure ragged gathers (no handle ever
        # holds a view of these, hence no compaction callback).  int32:
        # dense indices are bounded by the universe size.
        self.p_dense = _VarPool(cap, _np.int32, 16)
        self.p_dense_valid = _np.zeros(cap, dtype=bool)
        self.leaf_dense = _np.empty((cap, leaf_width), dtype=_np.int32)
        self.leaf_dense_valid = _np.zeros(cap, dtype=bool)
        self.dense_universe = None
        # Cached per-rank convergence deficits (see SlabMeasure).
        self.def_leaf = _np.zeros(cap, dtype=_np.int64)
        self.def_prefix = _np.zeros(cap, dtype=_np.int64)
        self.def_valid = _np.zeros(cap, dtype=bool)

    def _drop_cached_views(self, key: str):
        """Compaction callback: pop every live handle's cached view of
        the compacted pool -- and the dense-index cache entry keyed on
        that view -- so the superseded buffer can be freed (the next
        property access re-takes an identical view of the fresh
        buffer)."""
        dense_field = {"p_ids": "prefix"}.get(key)

        def drop() -> None:
            for handle in self.handles.values():
                handle._views.pop(key, None)
                if dense_field is not None:
                    handle.dense_cache.pop(dense_field, None)

        return drop

    @property
    def capacity(self) -> int:
        """Allocated rank slots (grows geometrically, never shrinks)."""
        return self.node_ids.size

    def _grow(self) -> None:
        cap = self.node_ids.size * 2
        for name in (
            "node_ids",
            "leaf_len",
            "ranked_valid",
            "leaf_full",
            "started",
            "stats_dirty",
            "succ_count",
            "succ_max",
            "pred_count",
            "pred_max",
            "accept_lo",
            "accept_hi",
            "def_leaf",
            "def_prefix",
            "def_valid",
            "p_dense_valid",
            "leaf_dense_valid",
        ):
            old = getattr(self, name)
            arr = _np.zeros(cap, dtype=old.dtype)
            arr[: old.size] = old
            setattr(self, name, arr)
        for name in ("leaf", "ranked", "slot_count", "leaf_dense"):
            old = getattr(self, name)
            arr = _np.zeros((cap, old.shape[1]), dtype=old.dtype)
            arr[: old.shape[0]] = old
            setattr(self, name, arr)
        self.p_ids.grow_ranks(cap)
        self.p_slots.grow_ranks(cap)
        self.p_dense.grow_ranks(cap)

    def allocate(self, node_id: int) -> int:
        """Claim a rank (recycling freed ones) and reset its row to a
        brand-new node's state."""
        if self.free:
            rank = self.free.pop()
        else:
            if self.n_ranks == self.node_ids.size:
                self._grow()
            rank = self.n_ranks
            self.n_ranks += 1
        self.node_ids[rank] = node_id
        self.leaf_len[rank] = 0
        self.ranked_valid[rank] = False
        self.leaf_full[rank] = False
        self.started[rank] = False
        self.stats_dirty[rank] = True
        self.succ_count[rank] = 0
        self.succ_max[rank] = -1
        self.pred_count[rank] = 0
        self.pred_max[rank] = -1
        self.accept_lo[rank] = 0
        self.accept_hi[rank] = 0
        self.slot_count[rank, :] = 0
        self.p_ids.len[rank] = 0
        self.p_slots.len[rank] = 0
        self.p_dense.len[rank] = 0
        self.p_dense_valid[rank] = False
        self.leaf_dense_valid[rank] = False
        self.def_valid[rank] = False
        return rank

    def release(self, rank: int) -> None:
        """Return a dead node's rank to the free list and its pool
        windows to the next compaction."""
        self.free.append(rank)
        self.p_ids.release(rank)
        self.p_slots.release(rank)
        self.p_dense.release(rank)
        self.p_dense_valid[rank] = False
        self.leaf_dense_valid[rank] = False
        self.handles.pop(rank, None)


class ArenaState:
    """A node handle: ``_ArrayState``'s attribute surface as
    properties over the arena slabs, so the transition kernels run
    unchanged on either state layout.

    Scalar getters that feed Python ring arithmetic (``succ_max`` and
    friends) return built-in ints -- the 64-bit ring mask overflows
    ``int64`` -- while array-valued fields return slab views, writable
    in place exactly where the per-node layout's arrays were.

    The id-table views (``leaf``/``prefix_ids``/``prefix_slots``/
    ``known``) are cached between writes: every mutation routes
    through the matching setter (the engine rebinds, it never writes
    these arrays in place), so a cached view stays value-correct until
    its setter drops it -- even across slab growth, which copies the
    old values -- and a *stable object identity* between writes is what
    lets the wave kernels key their dense-index caches on the view
    itself.  Pool compaction is the one event that drops cached pool
    views early (via the arena's handle registry): holding them would
    pin the superseded buffer, and the re-taken view carries identical
    values, so the only cost is one dense-cache refresh per handle.
    ``slot_count`` is deliberately not cached: the kernels mutate that
    row in place, so it must always resolve against the current slab.
    """

    __slots__ = ("arena", "rank", "node_id", "_views", "dense_cache")

    def __init__(self, arena: Arena, rank: int, node_id: int) -> None:
        self.arena = arena
        self.rank = rank
        self.node_id = node_id
        self._views: dict = {}
        self.dense_cache: dict = {}
        arena.handles[rank] = self

    @property
    def own_u64(self):
        """This node's identifier as a one-element uint64 view."""
        r = self.rank
        return self.arena.node_ids[r:r + 1]

    @property
    def leaf(self):
        """Sorted leaf-set ids: a view into the arena's leaf slab."""
        view = self._views.get("leaf")
        if view is None:
            a = self.arena
            r = self.rank
            view = self._views["leaf"] = a.leaf[r, : a.leaf_len[r]]
        return view

    @leaf.setter
    def leaf(self, arr) -> None:
        a = self.arena
        r = self.rank
        a.leaf[r, : arr.size] = arr
        a.leaf_len[r] = arr.size
        a.leaf_dense_valid[r] = False
        self._views.pop("leaf", None)

    @property
    def leaf_ranked(self):
        """Distance-ranked leaf cache, or ``None`` when invalidated."""
        a = self.arena
        r = self.rank
        if not a.ranked_valid[r]:
            return None
        return a.ranked[r, : a.leaf_len[r]]

    @leaf_ranked.setter
    def leaf_ranked(self, arr) -> None:
        a = self.arena
        r = self.rank
        if arr is None:
            a.ranked_valid[r] = False
            return
        a.ranked[r, : arr.size] = arr
        a.ranked_valid[r] = True

    @property
    def leaf_full(self) -> bool:
        """Whether the leaf set has reached both balanced quotas."""
        return bool(self.arena.leaf_full[self.rank])

    @leaf_full.setter
    def leaf_full(self, value) -> None:
        self.arena.leaf_full[self.rank] = value

    @property
    def started(self) -> bool:
        """Whether this node has run its bootstrap seeding."""
        return bool(self.arena.started[self.rank])

    @started.setter
    def started(self, value) -> None:
        self.arena.started[self.rank] = value

    @property
    def stats_dirty(self) -> bool:
        """Whether cached leaf statistics need a recompute."""
        return bool(self.arena.stats_dirty[self.rank])

    @stats_dirty.setter
    def stats_dirty(self, value) -> None:
        self.arena.stats_dirty[self.rank] = value

    @property
    def succ_count(self) -> int:
        """Current number of successor-side leaf entries."""
        return int(self.arena.succ_count[self.rank])

    @succ_count.setter
    def succ_count(self, value) -> None:
        self.arena.succ_count[self.rank] = value

    @property
    def succ_max(self) -> int:
        """Balanced successor quota at the last reselect."""
        return int(self.arena.succ_max[self.rank])

    @succ_max.setter
    def succ_max(self, value) -> None:
        self.arena.succ_max[self.rank] = value

    @property
    def pred_count(self) -> int:
        """Current number of predecessor-side leaf entries."""
        return int(self.arena.pred_count[self.rank])

    @pred_count.setter
    def pred_count(self, value) -> None:
        self.arena.pred_count[self.rank] = value

    @property
    def pred_max(self) -> int:
        """Balanced predecessor quota at the last reselect."""
        return int(self.arena.pred_max[self.rank])

    @pred_max.setter
    def pred_max(self, value) -> None:
        self.arena.pred_max[self.rank] = value

    @property
    def accept_lo(self):
        """Lower edge of the leaf admission window (ring distance)."""
        return self.arena.accept_lo[self.rank]

    @accept_lo.setter
    def accept_lo(self, value) -> None:
        self.arena.accept_lo[self.rank] = value

    @property
    def accept_hi(self):
        """Upper edge of the leaf admission window (ring distance)."""
        return self.arena.accept_hi[self.rank]

    @accept_hi.setter
    def accept_hi(self, value) -> None:
        self.arena.accept_hi[self.rank] = value

    @property
    def prefix_ids(self):
        """Sorted resident prefix-table ids (pooled-slab view)."""
        view = self._views.get("p_ids")
        if view is None:
            view = self._views["p_ids"] = self.arena.p_ids.view(self.rank)
        return view

    @prefix_ids.setter
    def prefix_ids(self, arr) -> None:
        a = self.arena
        a.p_ids.write(self.rank, arr, a.n_ranks)
        a.p_dense_valid[self.rank] = False
        self._views.pop("p_ids", None)

    @property
    def prefix_slots(self):
        """Slot index of each resident id, aligned with prefix_ids."""
        view = self._views.get("p_slots")
        if view is None:
            view = self._views["p_slots"] = self.arena.p_slots.view(
                self.rank
            )
        return view

    @prefix_slots.setter
    def prefix_slots(self, arr) -> None:
        a = self.arena
        a.p_slots.write(self.rank, arr, a.n_ranks)
        self._views.pop("p_slots", None)

    @property
    def slot_count(self):
        """Per-slot occupancy, a writable row view: the kernels mutate
        it in place and never rebind it (deliberately no setter)."""
        return self.arena.slot_count[self.rank]

    @property
    def known(self):
        """Cached ``leaf + prefix + own`` union, ``None`` when stale.

        Held as an exact-size array on the handle, not in an arena
        pool: the cache is rebuilt wholesale whenever leaf or prefix
        state changes, and pooling that churn costs compaction copies
        plus resident headroom (the bytes-per-node gate's worst term)
        for a derived value no slab pass ever reads."""
        return self._views.get("known")

    @known.setter
    def known(self, arr) -> None:
        if arr is None:
            self._views.pop("known", None)
        else:
            self._views["known"] = arr


class SlabMeasure:
    """Convergence deficits as one slab scan over dirty ranks.

    The generic tracker walks every node per measurement, paying a
    Python iteration plus a dict probe each even when the cached
    deficit is clean.  Bound to an arena, the dirty set is just
    ``stats_dirty[ranks] | ~def_valid[ranks]`` -- one vector op -- and
    only the dirty ranks' deficits are recomputed, batched:

    * leaf deficits by a segmented sort-merge of the resident leaf
      slab against the flattened perfect-leaf table;
    * prefix deficits by occupancy lookups against the perfect slot
      demands -- or, under liveness filtering, one global
      ``bincount`` over the alive resident entries' composite
      ``rank * n_slots + slot`` keys (numerically identical to the
      per-node filter because occupancy equals the resident-slot
      histogram by invariant).

    The perfect tables are packed lazily on the first measurement
    after a (re)bind, exactly like the generic tracker's per-node
    cache; a rebind invalidates every bound rank's cached deficit (the
    reference, and possibly the liveness filter, changed).
    """

    def __init__(self, ops, arena: Arena, states, reference, live) -> None:
        self._ops = ops
        self._arena = arena
        self._states = list(states)
        self._reference = reference
        self._live = live
        self._ranks = _np.array(
            [state.rank for state in self._states], dtype=_np.intp
        )
        arena.def_valid[self._ranks] = False
        self._packed = False

    def _pack(self) -> None:
        ops = self._ops
        reference = self._reference
        count = len(self._states)
        leaf_parts = []
        slot_parts = []
        need_parts = []
        pl_lens = _np.empty(count, dtype=_np.intp)
        pp_lens = _np.empty(count, dtype=_np.intp)
        for j, state in enumerate(self._states):
            leaf, pslots, needed = ops.pack_perfect(reference, state.node_id)
            leaf_parts.append(leaf)
            slot_parts.append(pslots)
            need_parts.append(needed)
            pl_lens[j] = leaf.size
            pp_lens[j] = pslots.size
        self._pl = (
            _np.concatenate(leaf_parts)
            if leaf_parts
            else _np.empty(0, dtype=_np.uint64)
        )
        self._pl_lens = pl_lens
        self._pl_offs = _np.cumsum(pl_lens) - pl_lens
        self._pp_slots = (
            _np.concatenate(slot_parts)
            if slot_parts
            else _np.empty(0, dtype=_np.int64)
        )
        self._pp_need = (
            _np.concatenate(need_parts)
            if need_parts
            else _np.empty(0, dtype=_np.int64)
        )
        self._pp_lens = pp_lens
        self._pp_offs = _np.cumsum(pp_lens) - pp_lens
        self._packed = True

    def measure(self, check_live: bool) -> tuple[int, int]:
        """Network-wide ``(missing_leaf, missing_prefix)`` totals."""
        ranks = self._ranks
        if not ranks.size:
            return 0, 0
        arena = self._arena
        dirty = arena.stats_dirty[ranks] | ~arena.def_valid[ranks]
        if dirty.any():
            if not self._packed:
                self._pack()
            d = _np.nonzero(dirty)[0]
            self._recompute(d, check_live)
            arena.stats_dirty[ranks[d]] = False
            arena.def_valid[ranks[d]] = True
        return (
            int(arena.def_leaf[ranks].sum()),
            int(arena.def_prefix[ranks].sum()),
        )

    def _recompute(self, d, check_live: bool) -> None:
        arena = self._arena
        ranks = self._ranks[d]
        md = d.size
        # Leaf deficit: merge resident and perfect entries on
        # (segment, id); an adjacent resident/perfect pair is a hit.
        lens_r = arena.leaf_len[ranks]
        rows = arena.leaf[ranks]
        in_row = kernels._arange(rows.shape[1])[None, :] < lens_r[:, None]
        res_ids = rows[in_row]
        res_seg = _np.repeat(kernels._arange(md), lens_r)
        p_lens = self._pl_lens[d]
        perf_ids = kernels.segment_take(self._pl, self._pl_offs[d], p_lens)
        perf_seg = _np.repeat(kernels._arange(md), p_lens)
        ids = _np.concatenate((res_ids, perf_ids))
        seg = _np.concatenate((res_seg, perf_seg))
        flag = _np.zeros(ids.size, dtype=_np.int8)
        flag[res_ids.size:] = 1
        order = _np.lexsort((flag, ids, seg))
        seg_s = seg[order]
        ids_s = ids[order]
        flag_s = flag[order]
        hit = (
            (seg_s[1:] == seg_s[:-1])
            & (ids_s[1:] == ids_s[:-1])
            & (flag_s[1:] > flag_s[:-1])
        )
        matches = _np.bincount(seg_s[1:][hit], minlength=md)
        arena.def_leaf[ranks] = p_lens - matches
        # Prefix deficit: perfect slot demands against occupancy.
        pp_lens_d = self._pp_lens[d]
        slots_sel = kernels.segment_take(
            self._pp_slots, self._pp_offs[d], pp_lens_d
        )
        need_sel = kernels.segment_take(
            self._pp_need, self._pp_offs[d], pp_lens_d
        )
        seg2 = _np.repeat(kernels._arange(md), pp_lens_d)
        n_slots = arena.n_slots
        if check_live:
            pool = arena.p_ids
            plen = pool.len[ranks]
            resp_ids = kernels.segment_take(pool.buf, pool.off[ranks], plen)
            spool = arena.p_slots
            resp_slots = kernels.segment_take(
                spool.buf, spool.off[ranks], spool.len[ranks]
            )
            resp_seg = _np.repeat(kernels._arange(md), plen)
            live = self._live
            if live.size and resp_ids.size:
                pos = _np.minimum(
                    live.searchsorted(resp_ids), live.size - 1
                )
                alive = live[pos] == resp_ids
            else:
                alive = _np.zeros(resp_ids.size, dtype=bool)
            key = resp_seg * n_slots + resp_slots.astype(_np.intp)
            counts = _np.bincount(key[alive], minlength=md * n_slots)
            have = counts[seg2 * n_slots + slots_sel]
        else:
            have = arena.slot_count[ranks[seg2], slots_sel]
        deficit = need_sel - have
        _np.maximum(deficit, 0, out=deficit)
        arena.def_prefix[ranks] = _np.bincount(
            seg2, weights=deficit, minlength=md
        ).astype(_np.int64)
