"""Sequential-join baseline: building the overlay one node at a time.

The paper's opening argument is that classic structured overlays
assume "join operations ... to be uncorrelated": each newcomer routes a
join request through the existing overlay, copies state from the nodes
on the path, and announces itself.  That works for churn-rate joins but
serialises badly when an entire pool must come up at once -- which is
exactly the gap the bootstrapping service fills.

This module implements the textbook Pastry join over a live, mutable
network and accounts its cost, so experiment E13 can put numbers on the
comparison:

* sequential join: ~``N`` *serial* steps (each join needs the previous
  ones completed), ``O(hops + c + table)`` messages per join;
* gossip bootstrap: ``O(log N)`` *parallel* cycles, 2 messages per node
  per cycle.

The join itself is faithful: route from a random seed to the joiner's
identifier, take row ``i`` of the ``i``-th hop's prefix table, take the
final hop's leaf set, then announce to every acquired contact (who
insert the joiner into their own tables).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.descriptor import NodeDescriptor
from ..core.idspace import IDSpace
from ..core.leafset import LeafSet
from ..core.prefixtable import PrefixTable
from ..simulator.random_source import RandomSource

__all__ = ["JoinCostReport", "SequentialJoinNetwork"]


class _LiveNode:
    """Mutable Pastry node used by the incremental-join network."""

    __slots__ = ("node_id", "leaf_set", "prefix_table", "_space")

    def __init__(self, space: IDSpace, node_id: int, config: BootstrapConfig):
        self.node_id = node_id
        self._space = space
        self.leaf_set = LeafSet(space, node_id, config.leaf_set_size)
        self.prefix_table = PrefixTable(
            space, node_id, config.entries_per_slot
        )

    def learn(self, descriptor: NodeDescriptor) -> None:
        """Insert one contact into both tables (join announcement)."""
        self.leaf_set.update([descriptor])
        self.prefix_table.add(descriptor)

    def next_hop(self, target_id: int) -> int | None:
        """Pastry routing step over the live tables."""
        own = self.node_id
        if target_id == own:
            return None
        space = self._space
        if self.leaf_set.covers(target_id):
            best = own
            best_key = (space.ring_distance(own, target_id), own)
            for desc in self.leaf_set:
                key = (
                    space.ring_distance(desc.node_id, target_id),
                    desc.node_id,
                )
                if key < best_key:
                    best = desc.node_id
                    best_key = key
            return None if best == own else best
        candidates = self.prefix_table.route_candidates(target_id)
        if candidates:
            return min(
                (d.node_id for d in candidates),
                key=lambda n: (space.ring_distance(n, target_id), n),
            )
        row = space.common_prefix_digits(own, target_id)
        own_distance = space.ring_distance(own, target_id)
        best = None
        best_key = None
        known = [d.node_id for d in self.leaf_set]
        known.extend(d.node_id for d in self.prefix_table.descriptors())
        for candidate in known:
            if space.common_prefix_digits(candidate, target_id) < row:
                continue
            distance = space.ring_distance(candidate, target_id)
            if distance >= own_distance:
                continue
            key = (distance, candidate)
            if best_key is None or key < best_key:
                best = candidate
                best_key = key
        return best


@dataclass(frozen=True)
class JoinCostReport:
    """Cost accounting for building an overlay by sequential joins.

    Attributes
    ----------
    nodes_joined:
        Final network size (including the seed node).
    serial_steps:
        Number of join operations that had to run one after another.
    total_messages:
        Join-request hops + state-transfer replies + announcements.
    total_route_hops:
        Overlay hops consumed by join-request routing alone.
    mean_route_hops / max_route_hops:
        Route length statistics across joins.
    """

    nodes_joined: int
    serial_steps: int
    total_messages: int
    total_route_hops: int
    mean_route_hops: float
    max_route_hops: int

    def messages_per_node(self) -> float:
        """Average message cost of admitting one node."""
        if self.serial_steps == 0:
            return 0.0
        return self.total_messages / self.serial_steps


class SequentialJoinNetwork:
    """Incrementally grown Pastry overlay (the baseline under test).

    Parameters
    ----------
    config:
        Table geometry (same parameters as the gossip bootstrap, so the
        end states are comparable).
    seed:
        Randomness for identifier generation and seed-node choice.
    """

    def __init__(
        self, config: BootstrapConfig = PAPER_CONFIG, seed: int = 1
    ) -> None:
        self.config = config
        self._space = config.space
        self._source = RandomSource(seed)
        self._rng = self._source.derive("joins")
        self._nodes: dict[int, _LiveNode] = {}
        self._descriptors: dict[int, NodeDescriptor] = {}
        self._sorted_ids: list[int] = []
        self._route_hops: list[int] = []
        self._messages = 0

    @property
    def size(self) -> int:
        """Current network size."""
        return len(self._nodes)

    @property
    def ids(self) -> list[int]:
        """Live identifiers, ascending."""
        return list(self._sorted_ids)

    def node(self, node_id: int) -> _LiveNode:
        """The live node object for *node_id*."""
        return self._nodes[node_id]

    # ------------------------------------------------------------------
    # Join protocol
    # ------------------------------------------------------------------

    def join(self, node_id: int | None = None) -> int:
        """Admit one node via the Pastry join protocol; returns its id."""
        if node_id is None:
            node_id = self._space.random_id(self._rng)
            while node_id in self._nodes:
                node_id = self._space.random_id(self._rng)
        elif node_id in self._nodes:
            raise ValueError(f"identifier {node_id:#x} already joined")

        newcomer = _LiveNode(self._space, node_id, self.config)
        descriptor = NodeDescriptor(node_id=node_id, address=node_id)

        if self._nodes:
            seed_id = self._rng.choice(self._sorted_ids)
            path = self._route_join(seed_id, node_id)
            self._route_hops.append(len(path) - 1)
            # One message per routing hop...
            self._messages += len(path) - 1
            # ...one state-transfer reply per visited node (row i from
            # hop i, leaf set from the last hop)...
            self._messages += len(path)
            for visited_id in path:
                visited = self._nodes[visited_id]
                newcomer.learn(self._descriptors[visited_id])
                for _slot, descs in visited.prefix_table.iter_slots():
                    for desc in descs:
                        newcomer.prefix_table.add(desc)
                        newcomer.leaf_set.update([desc])
            terminal = self._nodes[path[-1]]
            newcomer.leaf_set.update(terminal.leaf_set.descriptors())
            # ...and one announcement per acquired contact.
            contacts = set(newcomer.leaf_set.member_ids())
            contacts.update(newcomer.prefix_table.member_ids())
            self._messages += len(contacts)
            for contact_id in contacts:
                contact = self._nodes.get(contact_id)
                if contact is not None:
                    contact.learn(descriptor)
        else:
            self._route_hops.append(0)

        self._nodes[node_id] = newcomer
        self._descriptors[node_id] = descriptor
        bisect.insort(self._sorted_ids, node_id)
        return node_id

    def _route_join(self, start_id: int, target_id: int) -> list[int]:
        """Route the join request; returns the visited path."""
        path = [start_id]
        current = self._nodes[start_id]
        visited = {start_id}
        for _ in range(64):
            nxt = current.next_hop(target_id)
            if nxt is None or nxt in visited:
                break
            path.append(nxt)
            visited.add(nxt)
            current = self._nodes[nxt]
        return path

    def build(self, size: int) -> JoinCostReport:
        """Grow the network to *size* nodes and report the cost."""
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        while len(self._nodes) < size:
            self.join()
        hops = self._route_hops[1:]  # the seed node routed nowhere
        return JoinCostReport(
            nodes_joined=len(self._nodes),
            serial_steps=len(self._route_hops),
            total_messages=self._messages,
            total_route_hops=sum(hops),
            mean_route_hops=(sum(hops) / len(hops)) if hops else 0.0,
            max_route_hops=max(hops) if hops else 0,
        )

    # ------------------------------------------------------------------
    # Quality inspection (is the incrementally built overlay correct?)
    # ------------------------------------------------------------------

    def leaf_set_deficit(self) -> int:
        """Total missing leaf-set entries versus the perfect tables --
        sequential joins leave staleness behind that gossip repair
        would have to clean up."""
        from ..core.reference import ReferenceTables

        reference = ReferenceTables(
            self._space,
            self._sorted_ids,
            self.config.leaf_set_size,
            self.config.entries_per_slot,
        )
        missing = 0
        for node_id, node in self._nodes.items():
            missing += reference.leaf_missing(
                node_id, node.leaf_set.member_ids()
            )
        return missing
