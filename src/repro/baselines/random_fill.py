"""Random-sampling-only table construction (the no-gossip baseline).

What if every node simply polled the peer sampling service each cycle
and filed whatever came back?  No exchanges, no ring building, no
message optimisation -- just ``cr`` uniform samples per node per cycle
into ``UPDATELEAFSET``/``UPDATEPREFIXTABLE``.

This is the natural straw-man the bootstrap protocol must beat.  It
fills *shallow* prefix rows quickly (row 0 accepts 15/16 of random
identifiers) but stalls on deep rows and on leaf sets: the probability
that a uniform sample is one of a node's ``c`` ring neighbours is
``c/N``, so exact convergence needs ~``N/cr`` cycles -- linear in
network size where the gossip protocol is logarithmic.  Experiment E11
plots both.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceSample, ConvergenceTracker
from ..core.descriptor import NodeDescriptor
from ..core.leafset import LeafSet
from ..core.prefixtable import PrefixTable
from ..core.reference import ReferenceTables
from ..sampling.oracle import MembershipRegistry, OracleSampler
from ..simulator.random_source import RandomSource

__all__ = ["RandomFillNode", "RandomFillSimulation"]


class RandomFillNode:
    """Node state for the sampling-only baseline: the same two tables,
    fed exclusively by the sampling service."""

    __slots__ = ("descriptor", "leaf_set", "prefix_table", "_sampler", "_cr")

    def __init__(
        self,
        descriptor: NodeDescriptor,
        config: BootstrapConfig,
        sampler: OracleSampler,
    ) -> None:
        space = config.space
        self.descriptor = descriptor
        self.leaf_set = LeafSet(
            space, descriptor.node_id, config.leaf_set_size
        )
        self.prefix_table = PrefixTable(
            space, descriptor.node_id, config.entries_per_slot
        )
        self._sampler = sampler
        self._cr = config.random_samples

    @property
    def node_id(self) -> int:
        """This node's identifier."""
        return self.descriptor.node_id

    def step(self) -> None:
        """One cycle: draw ``cr`` samples, update both tables."""
        samples = self._sampler.sample(self._cr)
        self.leaf_set.update(samples)
        self.prefix_table.update(samples)


class RandomFillSimulation:
    """Cycle-driven run of the sampling-only baseline.

    Mirrors :class:`~repro.simulator.BootstrapSimulation`'s measurement
    interface so results are directly comparable.
    """

    def __init__(
        self,
        size: int | None = None,
        *,
        ids: Sequence[int] | None = None,
        config: BootstrapConfig = PAPER_CONFIG,
        seed: int = 1,
    ) -> None:
        self.config = config
        self.seed = seed
        source = RandomSource(seed)
        space = config.space
        if ids is None:
            if size is None or size < 2:
                raise ValueError("need size >= 2 or an explicit id list")
            id_list = space.random_unique_ids(size, source.derive("ids"))
        else:
            id_list = list(ids)

        self.registry = MembershipRegistry()
        self.nodes: dict[int, RandomFillNode] = {}
        for address, node_id in enumerate(id_list):
            descriptor = NodeDescriptor(node_id=node_id, address=address)
            self.registry.add(descriptor)
            sampler = OracleSampler(
                self.registry, node_id, source.derive(("sampler", node_id))
            )
            self.nodes[node_id] = RandomFillNode(descriptor, config, sampler)

        self.reference = ReferenceTables(
            space, id_list, config.leaf_set_size, config.entries_per_slot
        )
        self.tracker = ConvergenceTracker(self.reference, self.nodes.values())
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Completed cycles."""
        return self._cycle

    def run_cycle(self) -> None:
        """Every node draws and files one batch of samples."""
        for node in self.nodes.values():
            node.step()
        self._cycle += 1

    def run(
        self, max_cycles: int = 60, *, stop_when_perfect: bool = True
    ) -> list[ConvergenceSample]:
        """Run and return the per-cycle convergence series."""
        for _ in range(max_cycles):
            self.run_cycle()
            sample = self.tracker.measure(float(self._cycle))
            if stop_when_perfect and sample.is_perfect:
                break
        return self.tracker.samples
