"""Start-signal dissemination over the sampling layer.

The protocol "needs to be started in a loosely synchronized manner ...
we assume here that the protocol is started by a system administrator,
using some form of broadcasting or flooding on top of the peer sampling
service" (Section 4).  This module implements that broadcast as
push gossip: every informed node pushes the signal to ``fanout``
random samples per round.

Coverage grows doubly-exponentially at first and completes in
``O(log N)`` rounds w.h.p., which is what makes the "within an interval
of length Δ" start assumption realistic: the spread of first-reception
times is a handful of gossip rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.random_source import RandomSource

__all__ = ["FloodResult", "simulate_start_flood"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one start-signal broadcast.

    Attributes
    ----------
    rounds_to_full:
        Gossip rounds until every node had received the signal
        (``None`` if the round budget ran out first).
    messages:
        Total push messages sent.
    coverage_series:
        Informed-node count after each round (round 0 = initiator
        only, before any pushes).
    first_reception_round:
        Per-node round of first reception, keyed by node index.
    """

    rounds_to_full: int | None
    messages: int
    coverage_series: tuple[int, ...]
    first_reception_round: dict[int, int]

    @property
    def population(self) -> int:
        """Number of nodes in the broadcast."""
        return len(self.first_reception_round)

    @property
    def start_spread(self) -> int:
        """Spread of first-reception rounds: the 'interval of length Δ'
        the loosely-synchronised start actually needs (in rounds)."""
        rounds = self.first_reception_round.values()
        return max(rounds) - min(rounds)


def simulate_start_flood(
    size: int,
    fanout: int = 3,
    *,
    seed: int = 1,
    max_rounds: int = 64,
) -> FloodResult:
    """Simulate the administrator's start broadcast over *size* nodes.

    The sampling layer is modelled as an oracle (uniform random
    targets), matching its use everywhere else in the harness.  Each
    informed node pushes to *fanout* uniform random nodes per round;
    duplicates waste a message, exactly as real push gossip does.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    rng = RandomSource(seed).derive("flood")

    informed = {0: 0}  # node index -> round of first reception
    coverage = [1]
    messages = 0
    rounds_to_full: int | None = None
    for round_index in range(1, max_rounds + 1):
        # Snapshot: only nodes informed before this round push in it.
        pushers = [n for n, r in informed.items() if r < round_index]
        for _ in pushers:
            for _ in range(fanout):
                target = rng.randrange(size)
                messages += 1
                if target not in informed:
                    informed[target] = round_index
        coverage.append(len(informed))
        if len(informed) == size:
            rounds_to_full = round_index
            break
    return FloodResult(
        rounds_to_full=rounds_to_full,
        messages=messages,
        coverage_series=tuple(coverage),
        first_reception_round=dict(informed),
    )
