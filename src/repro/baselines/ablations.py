"""Protocol-variant ablations (experiment E11).

Section 4 motivates three design ingredients of ``CREATEMESSAGE``:

1. **prefix-table feedback** -- "the gradually improving prefix table is
   fed back into the ring building process, so that the two components
   mutually boost each other";
2. **message optimisation** -- ordering the union "according to distance
   from the peer node" instead of sending arbitrary descriptors;
3. **the prefix-targeted part** -- descriptors "potentially useful for
   the peer for its prefix table";

plus the ``cr`` random samples (ablated by configuration, no variant
class needed: ``config.with_overrides(random_samples=0)``).

Each variant below disables exactly one ingredient; running them
through the standard simulation quantifies the ingredient's
contribution to convergence speed.
"""

from __future__ import annotations


from ..core.descriptor import NodeDescriptor
from ..core.messages import BootstrapMessage
from ..core.protocol import BootstrapNode

__all__ = [
    "NoFeedbackNode",
    "NoPrefixPartNode",
    "UnoptimizedCloseNode",
    "ABLATION_VARIANTS",
]


class NoFeedbackNode(BootstrapNode):
    """Disables the prefix-table -> ring feedback: the union behind
    every outgoing message excludes the prefix table.  The prefix table
    still fills passively from received traffic, but its long-range
    pointers no longer accelerate the ring endgame."""

    def create_message(
        self, peer: NodeDescriptor, is_reply: bool = False
    ) -> BootstrapMessage:
        return self._create_message(
            peer, is_reply=is_reply, feed_prefix_table=False
        )


class NoPrefixPartNode(BootstrapNode):
    """Omits the prefix-targeted part: messages carry only the ``c``
    descriptors closest to the peer.  Ring building is untouched;
    prefix tables must scavenge entries from ring traffic alone."""

    def create_message(
        self, peer: NodeDescriptor, is_reply: bool = False
    ) -> BootstrapMessage:
        return self._create_message(
            peer, is_reply=is_reply, include_prefix_part=False
        )


class UnoptimizedCloseNode(BootstrapNode):
    """Replaces the closest-to-peer selection with a uniform random
    ``c``-subset of the union: tests how much the "optimizes the
    information to be sent" step matters for ring convergence."""

    def create_message(
        self, peer: NodeDescriptor, is_reply: bool = False
    ) -> BootstrapMessage:
        return self._create_message(
            peer, is_reply=is_reply, optimize_close_part=False
        )


#: Name -> node class, for harness parameterisation.  ``"full"`` is the
#: unmodified protocol.
ABLATION_VARIANTS: dict[str, type[BootstrapNode]] = {
    "full": BootstrapNode,
    "no-feedback": NoFeedbackNode,
    "no-prefix-part": NoPrefixPartNode,
    "unoptimized-close": UnoptimizedCloseNode,
}
