"""Baselines and ablations the reproduction compares against.

* :mod:`~repro.baselines.sequential_join` -- the classic one-at-a-time
  overlay construction the paper argues against for massive joins;
* :mod:`~repro.baselines.random_fill` -- sampling-only table filling
  (no gossip exchanges at all);
* :mod:`~repro.baselines.ablations` -- the protocol minus one design
  ingredient at a time;
* :mod:`~repro.baselines.flood` -- the administrator's start-signal
  broadcast over the sampling layer.
"""

from .ablations import (
    ABLATION_VARIANTS,
    NoFeedbackNode,
    NoPrefixPartNode,
    UnoptimizedCloseNode,
)
from .flood import FloodResult, simulate_start_flood
from .random_fill import RandomFillNode, RandomFillSimulation
from .sequential_join import JoinCostReport, SequentialJoinNetwork

__all__ = [
    "ABLATION_VARIANTS",
    "NoFeedbackNode",
    "NoPrefixPartNode",
    "UnoptimizedCloseNode",
    "FloodResult",
    "simulate_start_flood",
    "RandomFillNode",
    "RandomFillSimulation",
    "JoinCostReport",
    "SequentialJoinNetwork",
]
