"""repro: a full reproduction of "The Bootstrapping Service".

Jelasity, Montresor, Babaoglu -- Proc. 26th ICDCS Workshops, 2006
(doi:10.1109/ICDCSW.2006.105).

The paper proposes a two-layer P2P architecture -- a robust **peer
sampling service** below a **bootstrapping service** -- and contributes
a gossip protocol that builds the prefix tables and leaf sets of
Pastry/Kademlia/Tapestry/Bamboo-style routing substrates *from scratch*
at every node simultaneously, in a logarithmic number of cycles, even
under heavy message loss.

Package map
-----------
``repro.core``
    The bootstrapping protocol and its data structures (leaf set,
    prefix table), plus convergence oracles.
``repro.sampling``
    The peer sampling service: NEWSCAST and an idealised oracle.
``repro.simulator``
    Cycle- and event-driven engines, loss models, churn schedules,
    experiment specs (the PeerSim-equivalent substrate).
``repro.overlays``
    Routing substrates consuming bootstrap output: Pastry, Kademlia,
    Chord (prior work, "Chord on demand"), and generic T-Man.
``repro.baselines``
    Comparators and ablations: sequential joins, random-sample-only
    table filling, flooding start signal.
``repro.net``
    Deployable asyncio/UDP prototype of both gossip layers.
``repro.analysis``
    Series handling, statistics, ASCII plotting, table rendering for
    the experiment harness.
``repro.runtime``
    Parallel experiment runtime: multi-axis sweep grids sharded across
    a process pool with deterministic seeding, columnar result
    transport, and analysis-layer merging.
``repro.scenarios``
    Declarative scenario layer: a JSON-round-trippable registry of the
    paper's experiments (``figure3`` .. ``paper_scale``) plus the
    shared executor the CLI and benchmarks use.

Quickstart
----------
>>> from repro import BootstrapSimulation
>>> result = BootstrapSimulation(256, seed=42).run(max_cycles=40)
>>> result.converged
True
"""

from .core import (
    BootstrapConfig,
    BootstrapMessage,
    BootstrapNode,
    ConvergenceSample,
    ConvergenceTracker,
    IDSpace,
    LeafSet,
    NodeDescriptor,
    PAPER_CONFIG,
    PrefixTable,
    ReferenceTables,
)
from .sampling import (
    MembershipRegistry,
    NewscastNode,
    OracleSampler,
    PartialView,
    PeerSamplingService,
)
from .runtime import (
    RunResult,
    RunSpec,
    ScheduleSpec,
    ShardError,
    SweepAggregate,
    SweepGrid,
    SweepRunner,
    merge_results,
)
from .simulator import (
    BootstrapSimulation,
    CatastrophicFailure,
    Churn,
    CycleEngine,
    ExperimentSpec,
    MassiveJoin,
    NetworkModel,
    PAPER_LOSSY,
    RELIABLE,
    SimulationResult,
    run_experiment,
    run_repeats,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BootstrapConfig",
    "PAPER_CONFIG",
    "BootstrapMessage",
    "BootstrapNode",
    "ConvergenceSample",
    "ConvergenceTracker",
    "IDSpace",
    "LeafSet",
    "NodeDescriptor",
    "PrefixTable",
    "ReferenceTables",
    # sampling
    "MembershipRegistry",
    "NewscastNode",
    "OracleSampler",
    "PartialView",
    "PeerSamplingService",
    # simulator
    "BootstrapSimulation",
    "SimulationResult",
    "CycleEngine",
    "ExperimentSpec",
    "NetworkModel",
    "RELIABLE",
    "PAPER_LOSSY",
    "CatastrophicFailure",
    "Churn",
    "MassiveJoin",
    "run_experiment",
    "run_repeats",
    # runtime
    "RunResult",
    "RunSpec",
    "ScheduleSpec",
    "ShardError",
    "SweepAggregate",
    "SweepGrid",
    "SweepRunner",
    "merge_results",
]
