"""The bootstrapping protocol (the paper's primary contribution).

This module implements the node-local protocol of Figure 2 as a pure
state machine, :class:`BootstrapNode`.  It owns a leaf set and a prefix
table and exposes exactly the transitions the paper names:

* ``SELECTPEER``        -> :meth:`BootstrapNode.select_peer`
* ``CREATEMESSAGE(q)``  -> :meth:`BootstrapNode.create_message`
* ``UPDATELEAFSET``/``UPDATEPREFIXTABLE`` -> :meth:`BootstrapNode.absorb`
* active thread body    -> :meth:`BootstrapNode.initiate_exchange` +
  :meth:`BootstrapNode.handle_reply`
* passive thread body   -> :meth:`BootstrapNode.handle_request`

No engine, transport or clock lives here: the cycle-driven simulator,
the event-driven simulator and the asyncio UDP runner all drive the same
object.  Randomness is injected (``random.Random``), as is the peer
sampling service (anything satisfying :class:`Sampler`).

Design notes / faithful-reading decisions
-----------------------------------------
* ``CREATEMESSAGE`` takes "the union of the leaf set, ``cr`` random
  samples taken from the sampling service, the current prefix table, and
  its own descriptor (in other words, all locally available
  information)", sorts it by ring distance from the *destination*, keeps
  the first ``c``, then appends every union member sharing a digit
  prefix with the destination (bounded by the full prefix-table size).
* At protocol start each node initialises its leaf set "with a set of
  random nodes" from the sampling service; the paper does not fix the
  count, we use ``c`` (one leaf set's worth) and document it.
* The passive thread creates its answer *before* applying the received
  descriptors (Figure 2 lines 3-6), which we preserve: the answer
  reflects the responder's pre-exchange state.
* If the leaf set is ever empty (possible only transiently under
  catastrophic failure experiments), ``select_peer`` falls back to one
  fresh random sample so the protocol cannot deadlock.  The paper does
  not discuss this case; the fallback never triggers in the paper's
  scenarios.
"""

from __future__ import annotations

import random
from typing import Protocol

from .config import BootstrapConfig
from .descriptor import NodeDescriptor
from .leafset import LeafSet, select_balanced_ids
from .messages import BootstrapMessage
from .prefixtable import PrefixTable

__all__ = ["Sampler", "BootstrapNode", "ProtocolStats"]


class Sampler(Protocol):
    """Minimal view of the peer sampling service the protocol needs.

    Section 3's NEWSCAST and the idealised oracle sampler both satisfy
    this structurally (no inheritance required).
    """

    def sample(self, count: int) -> list[NodeDescriptor]:
        """Return up to *count* descriptors of (approximately) uniform
        random live peers.  May return fewer when the underlying view is
        small; must never include duplicates of the same node id."""
        ...


class ProtocolStats:
    """Per-node message and convergence accounting.

    The simulators aggregate these to report the cost figures the paper
    argues qualitatively ("cheap", "small number of iterations").
    """

    __slots__ = (
        "requests_sent",
        "replies_sent",
        "requests_received",
        "replies_received",
        "descriptors_sent",
        "descriptors_received",
        "leaf_updates",
        "prefix_entries_added",
    )

    def __init__(self) -> None:
        self.requests_sent = 0
        self.replies_sent = 0
        self.requests_received = 0
        self.replies_received = 0
        self.descriptors_sent = 0
        self.descriptors_received = 0
        self.leaf_updates = 0
        self.prefix_entries_added = 0

    @property
    def messages_sent(self) -> int:
        """Total messages put on the wire by this node."""
        return self.requests_sent + self.replies_sent

    @property
    def messages_received(self) -> int:
        """Total messages delivered to this node."""
        return self.requests_received + self.replies_received

    def snapshot(self) -> dict:
        """Plain-dict copy for traces."""
        return {name: getattr(self, name) for name in self.__slots__}


class BootstrapNode:
    """Node-local state machine of the bootstrapping protocol.

    Parameters
    ----------
    descriptor:
        This node's own descriptor (id + address).
    config:
        Protocol parameters (``b``, ``k``, ``c``, ``cr``, ``Δ``).
    sampler:
        Peer sampling service endpoint for this node.
    rng:
        Source of the protocol's only randomness (peer selection).
    """

    __slots__ = (
        "descriptor",
        "config",
        "leaf_set",
        "prefix_table",
        "stats",
        "_sampler",
        "_rng",
        "_space",
        "_started",
        "_now",
    )

    def __init__(
        self,
        descriptor: NodeDescriptor,
        config: BootstrapConfig,
        sampler: Sampler,
        rng: random.Random,
    ) -> None:
        space = config.space
        space.validate(descriptor.node_id)
        self.descriptor = descriptor
        self.config = config
        self._space = space
        self._sampler = sampler
        self._rng = rng
        self.leaf_set = LeafSet(space, descriptor.node_id, config.leaf_set_size)
        self.prefix_table = PrefixTable(
            space, descriptor.node_id, config.entries_per_slot
        )
        self.stats = ProtocolStats()
        self._started = False
        self._now = 0.0

    # ------------------------------------------------------------------
    # Identity and lifecycle
    # ------------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """This node's overlay identifier."""
        return self.descriptor.node_id

    @property
    def address(self):
        """This node's transport address."""
        return self.descriptor.address

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (loosely synchronised start)."""
        return self._started

    def set_time(self, now: float) -> None:
        """Advance the node's notion of time (stamps its advertisements)."""
        self._now = now

    def start(self) -> None:
        """Begin the protocol (paper Section 4, last paragraph).

        "At start time, all nodes use the peer sampling service to
        initialize their leaf sets with a set of random nodes, and clear
        their prefix table."
        """
        self.prefix_table.clear()
        seed_peers = self._sampler.sample(self.config.leaf_set_size)
        self.leaf_set.update(seed_peers)
        self._started = True

    def restart(self) -> None:
        """Forget all protocol state and start again (used when a pool
        is re-purposed for a new overlay instance)."""
        self.leaf_set = LeafSet(
            self._space, self.node_id, self.config.leaf_set_size
        )
        self.prefix_table.clear()
        self.stats = ProtocolStats()
        self._started = False
        self.start()

    # ------------------------------------------------------------------
    # SELECTPEER
    # ------------------------------------------------------------------

    def select_peer(self) -> NodeDescriptor | None:
        """Pick the next gossip partner (paper's SELECTPEER).

        "sorts the leaf set according to distance from the node's own ID
        in the ring of all possible IDs, and then picks a random element
        from the first half of the sorted list."
        """
        candidates = self.leaf_set.closest_half()
        if candidates:
            return self._rng.choice(candidates)
        # Fallback outside the paper's scenarios: an empty leaf set would
        # otherwise stall the node forever.
        fallback = self._sampler.sample(1)
        return fallback[0] if fallback else None

    # ------------------------------------------------------------------
    # CREATEMESSAGE
    # ------------------------------------------------------------------

    def create_message(
        self, peer: NodeDescriptor, is_reply: bool = False
    ) -> BootstrapMessage:
        """Build the optimised descriptor set for *peer* (CREATEMESSAGE).

        The method "takes the union of the leaf set, ``cr`` random
        samples taken from the sampling service, the current prefix
        table, and its own descriptor", keeps the ``c`` entries closest
        to the peer on the ring, and "adds to the message all node
        descriptors that are potentially useful for the peer for its
        prefix table".  Usefulness is decided by filling a hypothetical
        prefix table centred on the peer from the union: whatever lands
        in a slot is sent.  This realises the paper's stated bound ("not
        fixed but is bounded by the size of the full prefix table, and
        usually is smaller in practice") constructively -- at most ``k``
        descriptors per peer slot, and only for slots the union can
        populate at all.
        """
        return self._create_message(peer, is_reply=is_reply)

    def _create_message(
        self,
        peer: NodeDescriptor,
        *,
        is_reply: bool,
        feed_prefix_table: bool = True,
        include_prefix_part: bool = True,
        optimize_close_part: bool = True,
    ) -> BootstrapMessage:
        """CREATEMESSAGE with ablation hooks.

        The keyword flags exist solely for the ablation study
        (:mod:`repro.baselines.ablations`); the protocol proper always
        uses the defaults.

        ``feed_prefix_table``
            Include the current prefix table in the union ("the
            gradually improving prefix table is fed back into the ring
            building process").
        ``include_prefix_part``
            Append the prefix-targeted descriptors for the peer.
        ``optimize_close_part``
            Select the ``c`` union members closest to the peer; when
            disabled a uniform random ``c`` are sent instead.

        Interpretation note: "closest to the peer" uses the same
        balanced rule as UPDATELEAFSET (``c/2`` nearest successors plus
        ``c/2`` nearest predecessors of the peer, backfilled), not raw
        bidirectional ring distance.  The two differ exactly when one
        of the peer's sides sits across a large identifier gap; the raw
        rule then starves that side -- a sender's ``c`` ring-closest
        descriptors may *never* include the peer's farther-side
        neighbours, leaving a permanent leaf-set hole at small ``c``.
        The balanced rule sends precisely what the peer's
        UPDATELEAFSET retains, which is the stated point of the
        optimisation and matches the paper's always-perfect
        convergence.
        """
        config = self.config
        peer_id = peer.node_id

        # Union of all locally available information, freshest per id.
        if feed_prefix_table:
            union = {d.node_id: d for d in self.prefix_table.descriptors()}
        else:
            union = {}
        for desc in self.leaf_set:
            union[desc.node_id] = desc
        for desc in self._sampler.sample(config.random_samples):
            union.setdefault(desc.node_id, desc)
        own = self.descriptor.refreshed(self._now)
        union[own.node_id] = own
        # The peer gains nothing from its own descriptor.
        union.pop(peer_id, None)

        # Rank by (ring distance to peer, id).  Decorate-sort-undecorate
        # rather than a key callable: this sort runs twice per exchange
        # over ~c + cr + |prefix table| entries, and avoiding the
        # per-element Python call is a measurable win on the hot path.
        # The id tiebreak makes the order identical to the keyed sort.
        mask = self._space.size - 1
        decorated = sorted(
            (
                min((nid - peer_id) & mask, (peer_id - nid) & mask),
                nid,
            )
            for nid in union
        )
        ranked = [union[nid] for _, nid in decorated]
        if optimize_close_part:
            close_ids = select_balanced_ids(
                self._space, peer_id, union, config.half_leaf_set
            )
            close_part = []
            rest = []
            for d in ranked:
                if d.node_id in close_ids:
                    close_part.append(d)
                else:
                    rest.append(d)
        else:
            shuffled = list(union.values())
            self._rng.shuffle(shuffled)
            close_part = shuffled[: config.leaf_set_size]
            close_ids = {d.node_id for d in close_part}
            rest = [d for d in ranked if d.node_id not in close_ids]

        # Prefix-targeted part: fill a hypothetical table for the peer
        # from the remaining union members; whatever finds a slot is
        # "potentially useful for the peer for its prefix table".
        # Inlined slot-counting instead of a throwaway PrefixTable:
        # union ids are unique and never equal to the peer (popped
        # above), so "does this descriptor land in a slot?" reduces to
        # counting occupancy per (row, column) up to k -- the dominant
        # allocation in the exchange hot path before this rewrite.
        prefix_part: list[NodeDescriptor] = []
        if include_prefix_part:
            space = self._space
            bits = space.bits
            digit_bits = space.digit_bits
            base_mask = space.digit_base - 1
            k = config.entries_per_slot
            occupancy: dict[int, int] = {}
            for desc in rest:
                nid = desc.node_id
                diff = peer_id ^ nid
                row = (bits - diff.bit_length()) // digit_bits
                shift = bits - (row + 1) * digit_bits
                slot = (row << digit_bits) | ((nid >> shift) & base_mask)
                count = occupancy.get(slot, 0)
                if count < k:
                    occupancy[slot] = count + 1
                    prefix_part.append(desc)

        payload = tuple(close_part) + tuple(prefix_part)
        return BootstrapMessage(
            sender=own, descriptors=payload, is_reply=is_reply
        )

    # ------------------------------------------------------------------
    # UPDATELEAFSET + UPDATEPREFIXTABLE
    # ------------------------------------------------------------------

    def absorb(self, message: BootstrapMessage) -> None:
        """Apply a received message to the local state (Figure 2 lines
        7-8 / 5-6): UPDATELEAFSET then UPDATEPREFIXTABLE."""
        descriptors = list(message.all_descriptors())
        self.stats.descriptors_received += len(descriptors)
        if self.leaf_set.update(descriptors):
            self.stats.leaf_updates += 1
        self.stats.prefix_entries_added += self.prefix_table.update(
            descriptors
        )

    # ------------------------------------------------------------------
    # Thread bodies (driven by an engine)
    # ------------------------------------------------------------------

    def initiate_exchange(
        self,
    ) -> tuple[NodeDescriptor, BootstrapMessage] | None:
        """One iteration of the active thread, up to the send.

        Returns ``(peer, request)`` for the engine to deliver, or
        ``None`` when no peer is available.  The engine feeds the
        eventual answer to :meth:`handle_reply`.
        """
        peer = self.select_peer()
        if peer is None:
            return None
        return peer, self.initiate_exchange_with(peer)

    def initiate_exchange_with(
        self, peer: NodeDescriptor
    ) -> BootstrapMessage:
        """An active-thread iteration toward a caller-chosen *peer*.

        The degradation path of the live stack: when the selected
        contact keeps timing out, the peer retries the exchange with a
        fresh sample instead of SELECTPEER's pick.  Accounting matches
        :meth:`initiate_exchange` exactly.
        """
        request = self.create_message(peer, is_reply=False)
        self.stats.requests_sent += 1
        self.stats.descriptors_sent += request.payload_size
        return request

    def handle_request(self, message: BootstrapMessage) -> BootstrapMessage:
        """One iteration of the passive thread.

        Creates the answer from the *pre-exchange* state (Figure 2
        passive lines 3-4), then absorbs the received descriptors.
        """
        self.stats.requests_received += 1
        reply = self.create_message(message.sender, is_reply=True)
        self.stats.replies_sent += 1
        self.stats.descriptors_sent += reply.payload_size
        self.absorb(message)
        return reply

    def handle_reply(self, message: BootstrapMessage) -> None:
        """Completion of the active thread: absorb the answer."""
        self.stats.replies_received += 1
        self.absorb(message)

    def __repr__(self) -> str:
        return (
            f"BootstrapNode(id={self.node_id:#x}, "
            f"leaf={len(self.leaf_set)}/{self.config.leaf_set_size}, "
            f"prefix_entries={len(self.prefix_table)})"
        )
