"""Node descriptors: the currency exchanged by every gossip protocol here.

A descriptor bundles a node's overlay identifier with the address needed
to reach it and a logical timestamp recording when the information was
produced.  NEWSCAST (Section 3 of the paper) keeps the *freshest*
descriptors by timestamp; the bootstrapping protocol itself only needs
``(node_id, address)`` but carries timestamps through unchanged so the
two layers can share one message vocabulary.

Addresses are deliberately opaque: the simulators use integer node
indices, while the asyncio prototype uses ``(host, port)`` tuples.  Any
hashable value works.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Hashable, Iterable

__all__ = ["NodeDescriptor", "freshest_by_id", "dedupe_by_id"]


@dataclass(frozen=True)
class NodeDescriptor:
    """Immutable advertisement of a single node.

    Attributes
    ----------
    node_id:
        The node's overlay identifier (an integer in some
        :class:`~repro.core.idspace.IDSpace`).
    address:
        Transport-level address.  Opaque and hashable; equal addresses
        mean "the same endpoint".
    timestamp:
        Logical creation time of this descriptor.  Larger is fresher.
        Gossip layers refresh their own descriptor's timestamp each time
        they advertise themselves.
    """

    node_id: int
    address: Hashable
    timestamp: float = 0.0

    def refreshed(self, timestamp: float) -> NodeDescriptor:
        """Return a copy of this descriptor stamped with *timestamp*."""
        return replace(self, timestamp=timestamp)

    def is_fresher_than(self, other: NodeDescriptor) -> bool:
        """Return whether this descriptor supersedes *other*.

        Only meaningful for descriptors of the same node; the caller is
        responsible for grouping by ``node_id`` first.
        """
        return self.timestamp > other.timestamp

    def __repr__(self) -> str:  # keep simulator dumps readable
        return (
            f"NodeDescriptor(id={self.node_id:#x}, "
            f"addr={self.address!r}, ts={self.timestamp})"
        )


def freshest_by_id(
    descriptors: Iterable[NodeDescriptor],
) -> dict[int, NodeDescriptor]:
    """Collapse *descriptors* to one per node id, keeping the freshest.

    This is the merge rule shared by NEWSCAST views and the bootstrap
    protocol's local caches: stale advertisements of a node never
    overwrite newer ones.
    """
    best: dict[int, NodeDescriptor] = {}
    for desc in descriptors:
        current = best.get(desc.node_id)
        if current is None or desc.timestamp > current.timestamp:
            best[desc.node_id] = desc
    return best


def dedupe_by_id(
    descriptors: Iterable[NodeDescriptor],
) -> list[NodeDescriptor]:
    """Return *descriptors* with duplicate node ids removed (freshest
    wins), preserving no particular order guarantees beyond determinism
    for a deterministic input order."""
    return list(freshest_by_id(descriptors).values())
