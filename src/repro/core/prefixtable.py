"""The prefix (routing) table built by the bootstrapping service.

Section 4 of the paper:

    "The prefix table of a given node contains up to ``k`` IDs for all
    pairs ``(i, j)``, where ``i`` is the length (in digits) of the
    longest common prefix of the ID and the node's own ID, and ``j`` is
    the first differing digit.  The entries may be less than ``k`` if
    there are not enough node IDs with the desired prefix and digit
    among the participating nodes."

This is the table underlying Pastry, Kademlia, Tapestry and Bamboo
routing.  Note that for row ``i`` the column equal to the node's own
``i``-th digit can never be occupied (such an identifier would share a
longer prefix), so a table over base-``2**b`` digits has
``num_digits x (2**b - 1)`` usable slots.

``UPDATEPREFIXTABLE`` "takes a set of node descriptors and fills in any
missing table entries from this set" -- it only *fills*, never evicts,
which is what :meth:`PrefixTable.update` implements.  (Eviction policies
such as proximity optimisation belong to the overlay consuming the
table, not to the bootstrap.)
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .descriptor import NodeDescriptor
from .idspace import IDSpace

__all__ = ["PrefixTable"]


class PrefixTable:
    """Per-node prefix table with up to ``k`` descriptors per slot.

    Parameters
    ----------
    space:
        Identifier space (defines digit geometry).
    own_id:
        The owning node's identifier; determines every other
        identifier's slot.
    entries_per_slot:
        Paper's ``k``.
    """

    __slots__ = ("_space", "_own_id", "_k", "_slots", "_ids", "_bits",
                 "_digit_bits", "_num_digits", "_base_mask")

    def __init__(
        self, space: IDSpace, own_id: int, entries_per_slot: int
    ) -> None:
        if entries_per_slot < 1:
            raise ValueError(
                f"entries_per_slot must be >= 1, got {entries_per_slot}"
            )
        space.validate(own_id)
        self._space = space
        self._own_id = own_id
        self._k = entries_per_slot
        # slot -> {node_id: descriptor}; slots created lazily since only
        # ~log_base(N) rows are ever populated in practice.
        self._slots: dict[tuple[int, int], dict[int, NodeDescriptor]] = {}
        self._ids: set[int] = set()
        # Cached geometry for the hot path.
        self._bits = space.bits
        self._digit_bits = space.digit_bits
        self._num_digits = space.num_digits
        self._base_mask = space.digit_base - 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def own_id(self) -> int:
        """Identifier of the owning node."""
        return self._own_id

    @property
    def entries_per_slot(self) -> int:
        """Paper's ``k``."""
        return self._k

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._ids

    def member_ids(self) -> set[int]:
        """All identifiers stored anywhere in the table (fresh set)."""
        return set(self._ids)

    def descriptors(self) -> list[NodeDescriptor]:
        """Every stored descriptor (all slots flattened)."""
        return [
            desc
            for slot in self._slots.values()
            for desc in slot.values()
        ]

    def iter_slots(
        self,
    ) -> Iterator[tuple[tuple[int, int], list[NodeDescriptor]]]:
        """Yield ``((row, column), descriptors)`` for each non-empty slot."""
        for key, slot in self._slots.items():
            yield key, list(slot.values())

    def slot_entries(self, row: int, column: int) -> list[NodeDescriptor]:
        """Descriptors stored at ``(row, column)`` (possibly empty)."""
        slot = self._slots.get((row, column))
        return list(slot.values()) if slot else []

    def occupancy(self) -> dict[tuple[int, int], int]:
        """Map of slot -> number of stored entries, for convergence
        accounting against the reference tables."""
        return {key: len(slot) for key, slot in self._slots.items() if slot}

    # ------------------------------------------------------------------
    # Slot geometry
    # ------------------------------------------------------------------

    def slot_for(self, node_id: int) -> tuple[int, int]:
        """The ``(row, column)`` where *node_id* belongs in this table."""
        own = self._own_id
        diff = own ^ node_id
        if diff == 0:
            raise ValueError("a node has no slot for its own identifier")
        row = (self._bits - diff.bit_length()) // self._digit_bits
        shift = self._bits - (row + 1) * self._digit_bits
        column = (node_id >> shift) & self._base_mask
        return row, column

    # ------------------------------------------------------------------
    # The paper's UPDATEPREFIXTABLE
    # ------------------------------------------------------------------

    def add(self, desc: NodeDescriptor) -> bool:
        """Insert *desc* if its slot has room and the id is new.

        Returns ``True`` when an entry was actually added.
        """
        node_id = desc.node_id
        if node_id == self._own_id or node_id in self._ids:
            return False
        own = self._own_id
        diff = own ^ node_id
        row = (self._bits - diff.bit_length()) // self._digit_bits
        shift = self._bits - (row + 1) * self._digit_bits
        column = (node_id >> shift) & self._base_mask
        key = (row, column)
        slot = self._slots.get(key)
        if slot is None:
            self._slots[key] = {node_id: desc}
            self._ids.add(node_id)
            return True
        if len(slot) >= self._k:
            return False
        slot[node_id] = desc
        self._ids.add(node_id)
        return True

    def update(self, descriptors: Iterable[NodeDescriptor]) -> int:
        """Fill missing entries from *descriptors* (UPDATEPREFIXTABLE).

        Returns the number of entries added.
        """
        added = 0
        for desc in descriptors:
            if self.add(desc):
                added += 1
        return added

    def clear(self) -> None:
        """Empty the table (protocol start: "clear their prefix table")."""
        self._slots.clear()
        self._ids.clear()

    def forget(self, node_id: int) -> bool:
        """Drop *node_id* if present (used by churn handling in the
        overlays layer; the bootstrap protocol itself never evicts).

        Returns ``True`` when an entry was removed.
        """
        if node_id not in self._ids:
            return False
        key = self.slot_for(node_id)
        slot = self._slots.get(key)
        if slot is not None:
            slot.pop(node_id, None)
            if not slot:
                del self._slots[key]
        self._ids.discard(node_id)
        return True

    # ------------------------------------------------------------------
    # Routing view
    # ------------------------------------------------------------------

    def route_candidates(self, target_id: int) -> list[NodeDescriptor]:
        """Descriptors in the slot matching *target_id*'s next digit.

        This is the prefix-routing step: the slot at
        ``row = |common prefix(own, target)|`` and
        ``column = target's digit at that row`` holds nodes that share
        one more digit with the target than we do.  The paper leans on
        this even before convergence: "the prefix tables -- even before
        completed -- can already fulfil a kind of routing function".
        Returns an empty list when the target equals our own id or the
        slot is empty.
        """
        if target_id == self._own_id:
            return []
        row, column = self.slot_for(target_id)
        return self.slot_entries(row, column)

    def best_match(self, target_id: int) -> NodeDescriptor | None:
        """The stored descriptor sharing the longest prefix with
        *target_id* (ties broken by smaller ring distance is unnecessary
        here; any maximal-prefix entry works for greedy routing)."""
        best: NodeDescriptor | None = None
        best_len = -1
        space = self._space
        for slot in self._slots.values():
            for desc in slot.values():
                cpl = space.common_prefix_digits(desc.node_id, target_id)
                if cpl > best_len:
                    best = desc
                    best_len = cpl
        return best

    def __repr__(self) -> str:
        return (
            f"PrefixTable(own={self._own_id:#x}, k={self._k}, "
            f"entries={len(self._ids)}, slots={len(self._slots)})"
        )
