"""Core of the reproduction: the bootstrapping service itself.

This package implements the paper's primary contribution -- the gossip
protocol that jump-starts prefix-table routing substrates from scratch
(Section 4) -- together with the data structures it builds (leaf sets,
prefix tables) and the oracles used to measure convergence (Section 5).
"""

from .config import BootstrapConfig, PAPER_CONFIG
from .convergence import ConvergenceSample, ConvergenceTracker
from .descriptor import NodeDescriptor, dedupe_by_id, freshest_by_id
from .idspace import IDSpace
from .leafset import LeafSet, select_balanced_ids
from .messages import BootstrapMessage
from .prefixtable import PrefixTable
from .protocol import BootstrapNode, ProtocolStats, Sampler
from .reference import DigitTrie, ReferenceTables

__all__ = [
    "BootstrapConfig",
    "PAPER_CONFIG",
    "ConvergenceSample",
    "ConvergenceTracker",
    "NodeDescriptor",
    "dedupe_by_id",
    "freshest_by_id",
    "IDSpace",
    "LeafSet",
    "select_balanced_ids",
    "BootstrapMessage",
    "PrefixTable",
    "BootstrapNode",
    "ProtocolStats",
    "Sampler",
    "DigitTrie",
    "ReferenceTables",
]
