"""Messages exchanged by the bootstrapping protocol.

The protocol of Figure 2 is a symmetric request/reply gossip: the active
thread sends ``CREATEMESSAGE(q)`` to a selected peer ``q`` and waits for
the answer; the passive thread answers every incoming message with its
own ``CREATEMESSAGE(sender)`` before applying the received descriptors.

A message is simply a bag of node descriptors plus the sender's own
descriptor as the envelope (the receiver needs it to address the reply,
and it is itself useful routing information).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from .descriptor import NodeDescriptor

__all__ = ["BootstrapMessage"]


@dataclass(frozen=True)
class BootstrapMessage:
    """One bootstrap gossip message.

    Attributes
    ----------
    sender:
        Descriptor of the node that produced the message.
    descriptors:
        The payload produced by ``CREATEMESSAGE``: the ``c`` known
        descriptors closest to the destination, plus every locally-known
        descriptor sharing a digit prefix with the destination (bounded
        by the prefix-table capacity).
    is_reply:
        ``True`` for the passive thread's answer.  Transport layers use
        this to model the paper's request/answer loss coupling: a
        dropped request suppresses the answer entirely.
    """

    sender: NodeDescriptor
    descriptors: tuple[NodeDescriptor, ...]
    is_reply: bool = False

    def all_descriptors(self) -> Iterator[NodeDescriptor]:
        """Payload descriptors followed by the envelope sender.

        Everything a receiver learns from this message; feeding the
        sender descriptor through the same update path means answering
        nodes are discoverable even when ``CREATEMESSAGE`` did not
        select their descriptor for the payload.
        """
        yield from self.descriptors
        yield self.sender

    @property
    def payload_size(self) -> int:
        """Number of descriptors carried (excluding the envelope)."""
        return len(self.descriptors)

    def __repr__(self) -> str:
        kind = "reply" if self.is_reply else "request"
        return (
            f"BootstrapMessage({kind}, from={self.sender.node_id:#x}, "
            f"|payload|={len(self.descriptors)})"
        )
