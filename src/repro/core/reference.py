"""Reference ("perfect") tables for convergence measurement.

The paper's experiments run "until the perfect leaf sets and prefix
tables are found at all nodes, based on the actual set of IDs in the
network", plotting per cycle the *proportion of missing entries*.  This
module computes, for a given live identifier set:

* the **perfect leaf set** of every node -- what ``UPDATELEAFSET`` would
  retain given knowledge of every identifier (same selection function);
* the **perfect prefix-table slot counts** -- for each slot ``(i, j)``,
  ``min(k, number of live identifiers with that prefix pattern)``,
  because "the entries may be less than k if there are not enough node
  IDs with the desired prefix and digit".

Perfect prefix counts for *all* nodes at once are derived from a single
**digit trie** over the live identifier set (O(N x digits) to build,
O(base x occupied-depth) per node to query), so per-cycle convergence
checks stay cheap even for large networks.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Sequence

from .idspace import IDSpace
from .leafset import select_balanced_ids

__all__ = ["DigitTrie", "ReferenceTables"]


class _TrieNode:
    """Internal trie node: subtree population and children by digit.

    Subtrees holding a single identifier are not expanded (path
    compression): ``sole_id`` carries the identifier instead, which
    bounds the trie at O(N log N) nodes for random identifier sets.
    """

    __slots__ = ("count", "children", "sole_id")

    def __init__(self) -> None:
        self.count = 0
        self.children: dict[int, _TrieNode] | None = None
        self.sole_id: int | None = None


class DigitTrie:
    """Digit trie over an identifier set, answering prefix-population
    queries for every depth at once."""

    def __init__(self, space: IDSpace, ids: Iterable[int]) -> None:
        self._space = space
        self._root = _TrieNode()
        for node_id in ids:
            self._insert(node_id)

    @property
    def size(self) -> int:
        """Number of identifiers stored."""
        return self._root.count

    def _insert(self, node_id: int) -> None:
        space = self._space
        node = self._root
        node.count += 1
        depth = 0
        while depth < space.num_digits:
            if node.count == 1:
                # First occupant of this subtree: park it, stop expanding.
                node.sole_id = node_id
                return
            if node.sole_id is not None:
                # Second occupant arrives: push the parked id one level
                # down before continuing with the new one.
                parked = node.sole_id
                node.sole_id = None
                if node.children is None:
                    node.children = {}
                parked_child = node.children.setdefault(
                    space.digit(parked, depth), _TrieNode()
                )
                parked_child.count += 1
                self._sink(parked_child, parked, depth + 1)
            if node.children is None:
                node.children = {}
            child = node.children.setdefault(
                space.digit(node_id, depth), _TrieNode()
            )
            child.count += 1
            node = child
            depth += 1

    def _sink(self, node: _TrieNode, node_id: int, depth: int) -> None:
        """Park *node_id* at *node* (which has count 1 and no children)."""
        if depth >= self._space.num_digits:
            return
        node.sole_id = node_id

    def count_prefix_child(
        self, prefix_of: int, depth: int, digit: int
    ) -> int:
        """Number of stored identifiers sharing the first *depth* digits
        of *prefix_of* and having *digit* at position *depth*.

        This is slot ``(depth, digit)`` availability for a node whose
        identifier is *prefix_of*.  Mostly useful for spot checks; the
        bulk path is :meth:`slot_counts_for`.
        """
        counts = self.slot_counts_for(prefix_of, cap=None)
        return counts.get((depth, digit), 0)

    def slot_counts_for(
        self, node_id: int, cap: int | None
    ) -> dict[tuple[int, int], int]:
        """All non-empty slot populations for *node_id*'s prefix table.

        Walks the path of *node_id* through the trie; at depth ``i`` the
        sibling digit-``j`` subtree population is the number of live
        identifiers whose slot in this node's table is ``(i, j)``.  The
        node itself is excluded automatically because its own digit's
        subtree is the path continuation, never a sibling.

        Parameters
        ----------
        cap:
            When given (the paper's ``k``), counts are clamped to it so
            the result is directly the *perfect occupancy*.
        """
        space = self._space
        counts: dict[tuple[int, int], int] = {}
        node = self._root
        depth = 0
        while depth < space.num_digits:
            if node.sole_id is not None:
                # Only this node's own identifier lives below: no
                # siblings at any deeper depth.
                break
            if node.children is None:
                break
            own_digit = space.digit(node_id, depth)
            for digit, child in node.children.items():
                if digit == own_digit:
                    continue
                population = child.count
                if cap is not None and population > cap:
                    population = cap
                counts[(depth, digit)] = population
            next_node = node.children.get(own_digit)
            if next_node is None:
                break
            node = next_node
            depth += 1
        return counts


class ReferenceTables:
    """Perfect leaf sets and prefix tables for a live identifier set.

    Parameters
    ----------
    space:
        Identifier geometry.
    ids:
        The live identifiers ("the actual set of IDs in the network").
    leaf_set_size:
        Paper's ``c``.
    entries_per_slot:
        Paper's ``k``.
    """

    def __init__(
        self,
        space: IDSpace,
        ids: Iterable[int],
        leaf_set_size: int,
        entries_per_slot: int,
    ) -> None:
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise ValueError(
                f"leaf_set_size must be even and >= 2, got {leaf_set_size}"
            )
        if entries_per_slot < 1:
            raise ValueError(
                f"entries_per_slot must be >= 1, got {entries_per_slot}"
            )
        self._space = space
        self._c = leaf_set_size
        self._k = entries_per_slot
        self._sorted_ids: list[int] = sorted(set(ids))
        if not self._sorted_ids:
            raise ValueError("reference tables need at least one identifier")
        self._index: dict[int, int] = {
            node_id: i for i, node_id in enumerate(self._sorted_ids)
        }
        self._trie = DigitTrie(space, self._sorted_ids)
        self._leaf_cache: dict[int, frozenset[int]] = {}
        self._totals: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def space(self) -> IDSpace:
        """The identifier space the reference was built over."""
        return self._space

    @property
    def ids(self) -> Sequence[int]:
        """The live identifiers, ascending."""
        return tuple(self._sorted_ids)

    @property
    def population(self) -> int:
        """Number of live identifiers."""
        return len(self._sorted_ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index

    # ------------------------------------------------------------------
    # Perfect leaf sets
    # ------------------------------------------------------------------

    def perfect_leaf_ids(self, node_id: int) -> frozenset[int]:
        """The converged leaf-set membership for *node_id*.

        Computed by applying the protocol's own selection rule to the
        2c nearest identifiers in ring order -- a superset of every
        identifier the global selection could pick (the closest
        successors/predecessors, plus anything backfill could reach).
        """
        cached = self._leaf_cache.get(node_id)
        if cached is not None:
            return cached
        index = self._index.get(node_id)
        if index is None:
            raise KeyError(f"{node_id:#x} is not a live identifier")
        ids = self._sorted_ids
        n = len(ids)
        reach = min(self._c, n - 1)
        candidates = set()
        for offset in range(1, reach + 1):
            candidates.add(ids[(index + offset) % n])
            candidates.add(ids[(index - offset) % n])
        chosen = frozenset(
            select_balanced_ids(self._space, node_id, candidates, self._c // 2)
        )
        self._leaf_cache[node_id] = chosen
        return chosen

    # ------------------------------------------------------------------
    # Perfect prefix tables
    # ------------------------------------------------------------------

    def perfect_prefix_counts(self, node_id: int) -> dict[tuple[int, int], int]:
        """Perfect occupancy ``slot -> min(k, available)`` for *node_id*."""
        if node_id not in self._index:
            raise KeyError(f"{node_id:#x} is not a live identifier")
        return self._trie.slot_counts_for(node_id, cap=self._k)

    # ------------------------------------------------------------------
    # Network-wide totals (denominators of the paper's metric)
    # ------------------------------------------------------------------

    def totals(self) -> tuple[int, int]:
        """``(total perfect leaf entries, total perfect prefix entries)``
        summed over every live node.  Cached after the first call."""
        if self._totals is None:
            total_leaf = 0
            total_prefix = 0
            for node_id in self._sorted_ids:
                total_leaf += len(self.perfect_leaf_ids(node_id))
                total_prefix += sum(
                    self.perfect_prefix_counts(node_id).values()
                )
            self._totals = (total_leaf, total_prefix)
        return self._totals

    # ------------------------------------------------------------------
    # Per-node deficit measurement
    # ------------------------------------------------------------------

    def leaf_missing(self, node_id: int, current_ids: set[int]) -> int:
        """Number of perfect leaf-set members absent from *current_ids*."""
        return len(self.perfect_leaf_ids(node_id) - current_ids)

    def prefix_missing(
        self, node_id: int, occupancy: dict[tuple[int, int], int]
    ) -> int:
        """Total slot deficit of a prefix table versus perfection.

        *occupancy* maps slot -> number of **live** entries currently
        held (the caller filters dead entries when churn is in play).
        Surplus in one slot never offsets deficit in another.
        """
        missing = 0
        for slot, needed in self.perfect_prefix_counts(node_id).items():
            have = occupancy.get(slot, 0)
            if have < needed:
                missing += needed - have
        return missing

    def nearest_live(self, target_id: int) -> int:
        """The live identifier nearest *target_id* on the ring (useful
        for routing correctness checks)."""
        ids = self._sorted_ids
        pos = bisect.bisect_left(ids, target_id)
        space = self._space
        best = None
        best_dist = None
        for candidate in (ids[pos % len(ids)], ids[(pos - 1) % len(ids)]):
            dist = space.ring_distance(target_id, candidate)
            if best_dist is None or dist < best_dist or (
                dist == best_dist and candidate < best
            ):
                best = candidate
                best_dist = dist
        return best
