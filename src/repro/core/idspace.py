"""Identifier-space arithmetic for prefix-based overlays.

The paper (Section 4) defines node identifiers as fixed-width unsigned
integers interpreted two ways at once:

* as positions on a **ring** of size ``2**bits`` (used by the leaf set,
  which tracks the closest successors and predecessors), and
* as sequences of base-``2**digit_bits`` **digits** (used by the prefix
  table, indexed by longest-common-prefix length and first differing
  digit).

:class:`IDSpace` bundles both views behind one immutable object so that
every component of the library agrees on the geometry.  The paper's
simulations use 64-bit identifiers with ``b = 4`` (hexadecimal digits);
those are the defaults here.

All functions are pure and operate on plain ``int`` identifiers, which
keeps the protocol inner loops cheap (no wrapper objects on the hot
path).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import random

__all__ = ["IDSpace", "DEFAULT_ID_BITS", "DEFAULT_DIGIT_BITS"]

DEFAULT_ID_BITS = 64
DEFAULT_DIGIT_BITS = 4


@dataclass(frozen=True)
class IDSpace:
    """Geometry of a circular, digit-structured identifier space.

    Parameters
    ----------
    bits:
        Width of an identifier in bits.  Identifiers are integers in
        ``[0, 2**bits)``.
    digit_bits:
        The paper's parameter ``b``: each identifier is also read as a
        sequence of ``bits // digit_bits`` digits of ``digit_bits`` bits
        each, most significant digit first.
    """

    bits: int = DEFAULT_ID_BITS
    digit_bits: int = DEFAULT_DIGIT_BITS

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"bits must be positive, got {self.bits}")
        if self.digit_bits <= 0:
            raise ValueError(
                f"digit_bits must be positive, got {self.digit_bits}"
            )
        if self.bits % self.digit_bits != 0:
            raise ValueError(
                "bits must be a multiple of digit_bits "
                f"(got bits={self.bits}, digit_bits={self.digit_bits})"
            )

    # ------------------------------------------------------------------
    # Basic derived quantities
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of identifiers in the space (``2**bits``)."""
        return 1 << self.bits

    @property
    def num_digits(self) -> int:
        """Number of digits in an identifier (``bits / digit_bits``)."""
        return self.bits // self.digit_bits

    @property
    def digit_base(self) -> int:
        """Radix of a digit (``2**digit_bits``); 16 for the paper's b=4."""
        return 1 << self.digit_bits

    @property
    def half(self) -> int:
        """Half the ring circumference; the successor/predecessor divide."""
        return 1 << (self.bits - 1)

    # ------------------------------------------------------------------
    # Validation and generation
    # ------------------------------------------------------------------

    def contains(self, node_id: int) -> bool:
        """Return whether *node_id* is a valid identifier in this space."""
        return 0 <= node_id < self.size

    def validate(self, node_id: int) -> int:
        """Return *node_id* unchanged, raising ``ValueError`` if invalid."""
        if not self.contains(node_id):
            raise ValueError(
                f"identifier {node_id!r} outside [0, 2**{self.bits})"
            )
        return node_id

    def random_id(self, rng: random.Random) -> int:
        """Draw a uniform identifier using the supplied RNG."""
        return rng.getrandbits(self.bits)

    def random_unique_ids(self, count: int, rng: random.Random) -> list[int]:
        """Draw *count* distinct uniform identifiers.

        The paper assumes "all nodes have unique numeric IDs"; collisions
        for 64-bit identifiers are vanishingly rare at practical sizes but
        we guard against them anyway so simulations are well defined.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > self.size:
            raise ValueError(
                f"cannot draw {count} distinct identifiers from a space "
                f"of size 2**{self.bits}"
            )
        seen = set()
        out: list[int] = []
        while len(out) < count:
            candidate = rng.getrandbits(self.bits)
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
        return out

    # ------------------------------------------------------------------
    # Ring arithmetic (leaf-set view)
    # ------------------------------------------------------------------

    def clockwise_distance(self, start: int, end: int) -> int:
        """Distance travelled going from *start* to *end* in increasing
        direction (with wraparound)."""
        return (end - start) & (self.size - 1)

    def ring_distance(self, a: int, b: int) -> int:
        """Shortest distance between *a* and *b* along the ring."""
        forward = (b - a) & (self.size - 1)
        backward = (a - b) & (self.size - 1)
        return forward if forward < backward else backward

    def is_successor(self, own: int, other: int) -> bool:
        """Classify *other* relative to *own* per the paper's rule.

        "If an ID is closer in the increasing direction, it is a
        successor, otherwise it is a predecessor."  Ties on the exact
        antipode count as successors (the increasing direction is not
        strictly closer, but some deterministic rule is needed; the
        choice is irrelevant for 64-bit spaces in practice).
        """
        forward = (other - own) & (self.size - 1)
        return forward <= self.half

    def between_clockwise(self, left: int, mid: int, right: int) -> bool:
        """Return ``True`` when *mid* lies on the clockwise arc
        ``(left, right]``.  Used by ring-routing components (Chord)."""
        return (
            self.clockwise_distance(left, mid)
            <= self.clockwise_distance(left, right)
            and mid != left
        )

    # ------------------------------------------------------------------
    # Digit / prefix arithmetic (prefix-table view)
    # ------------------------------------------------------------------

    def digit(self, node_id: int, index: int) -> int:
        """Return digit *index* of *node_id* (0 = most significant)."""
        if not 0 <= index < self.num_digits:
            raise IndexError(
                f"digit index {index} outside [0, {self.num_digits})"
            )
        shift = self.bits - (index + 1) * self.digit_bits
        return (node_id >> shift) & (self.digit_base - 1)

    def digits(self, node_id: int) -> list[int]:
        """Return all digits of *node_id*, most significant first."""
        base_mask = self.digit_base - 1
        bits = self.bits
        db = self.digit_bits
        return [
            (node_id >> (bits - (i + 1) * db)) & base_mask
            for i in range(self.num_digits)
        ]

    def common_prefix_digits(self, a: int, b: int) -> int:
        """Length (in digits) of the longest common prefix of *a* and *b*.

        Equal identifiers share all ``num_digits`` digits.  Implemented
        via XOR so it costs O(1) rather than a digit-by-digit loop.
        """
        diff = a ^ b
        if diff == 0:
            return self.num_digits
        # Index of the most significant differing bit, counted from the top.
        leading_equal_bits = self.bits - diff.bit_length()
        return leading_equal_bits // self.digit_bits

    def xor_distance(self, a: int, b: int) -> int:
        """Kademlia's XOR metric over the same identifier space."""
        return a ^ b

    def prefix_slot(self, own: int, other: int) -> tuple[int, int]:
        """Return the prefix-table slot ``(row, column)`` that *other*
        occupies in *own*'s table.

        ``row``    -- length of the longest common prefix (paper's *i*).
        ``column`` -- first differing digit of *other* (paper's *j*).

        Raises ``ValueError`` for ``own == other`` because a node never
        stores itself (there is no first differing digit).
        """
        if own == other:
            raise ValueError("a node has no prefix-table slot for itself")
        row = self.common_prefix_digits(own, other)
        return row, self.digit(other, row)

    def shares_prefix(self, a: int, b: int, min_digits: int = 1) -> bool:
        """Return whether *a* and *b* share at least *min_digits* leading
        digits.  ``CREATEMESSAGE`` uses this to pick descriptors that are
        "potentially useful for the peer for its prefix table"."""
        return self.common_prefix_digits(a, b) >= min_digits

    def id_with_prefix(
        self, prefix_digits: Sequence[int], rng: random.Random
    ) -> int:
        """Draw a uniform identifier whose leading digits equal
        *prefix_digits*.  Useful for workload generators and tests."""
        if len(prefix_digits) > self.num_digits:
            raise ValueError(
                f"prefix of {len(prefix_digits)} digits exceeds "
                f"{self.num_digits}-digit identifiers"
            )
        value = 0
        for digit in prefix_digits:
            if not 0 <= digit < self.digit_base:
                raise ValueError(
                    f"digit {digit} outside [0, {self.digit_base})"
                )
            value = (value << self.digit_bits) | digit
        remaining_bits = self.bits - len(prefix_digits) * self.digit_bits
        suffix = rng.getrandbits(remaining_bits) if remaining_bits else 0
        return (value << remaining_bits) | suffix

    def format_id(self, node_id: int) -> str:
        """Render *node_id* as its digit sequence (hex-like string)."""
        width = max(1, (self.digit_bits + 3) // 4)
        return "".join(
            format(d, f"0{width}x") for d in self.digits(node_id)
        )

    # ------------------------------------------------------------------
    # Sorting helpers used by the protocol
    # ------------------------------------------------------------------

    def sort_by_ring_distance(
        self, origin: int, ids: Iterable[int]
    ) -> list[int]:
        """Return *ids* sorted by ring distance from *origin* (closest
        first).  Ties are broken by the identifier value so the order is
        deterministic."""
        size_mask = self.size - 1

        def key(node_id: int) -> tuple[int, int]:
            forward = (node_id - origin) & size_mask
            backward = (origin - node_id) & size_mask
            return (forward if forward < backward else backward, node_id)

        return sorted(ids, key=key)

    def iter_ring(self, start: int, sorted_ids: Sequence[int]) -> Iterator[int]:
        """Iterate *sorted_ids* (ascending) starting from the first
        identifier >= *start*, wrapping around.  Helper for reference
        leaf-set construction."""
        import bisect

        idx = bisect.bisect_left(sorted_ids, start)
        n = len(sorted_ids)
        for offset in range(n):
            yield sorted_ids[(idx + offset) % n]
