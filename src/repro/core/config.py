"""Protocol configuration.

Section 4 of the paper closes by enumerating the protocol's parameters:

    "The prefix table is defined by ``b`` (the number of bits in a digit)
    and ``k``, the number of entries for a specific prefix length and
    first differing digit.  The size of the leaf set is ``c``.  Parameter
    ``Δ`` defines the frequency of communication.  Finally, ``cr`` is the
    number of random samples used for improving the messages to be sent."

:class:`BootstrapConfig` captures exactly that parameter set (plus the
identifier width, fixed at 64 bits in the paper's simulations) with the
paper's Section 5 experimental values as defaults: ``b = 4``, ``k = 3``,
``c = 20``, ``cr = 30``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from .idspace import IDSpace

__all__ = ["BootstrapConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class BootstrapConfig:
    """Parameters of the bootstrapping protocol (paper Section 4/5).

    Attributes
    ----------
    id_bits:
        Identifier width in bits (paper: 64; "the extra bits play no
        role" beyond covering the longest common prefix of any pair).
    digit_bits:
        Paper's ``b``: bits per digit of the prefix table (paper: 4).
    entries_per_slot:
        Paper's ``k``: number of descriptors kept per (prefix length,
        first differing digit) slot (paper: 3; values > 1 support
        proximity optimisation in the consuming overlay).
    leaf_set_size:
        Paper's ``c``: total leaf-set capacity, split as ``c/2`` closest
        successors and ``c/2`` closest predecessors (paper: 20).
    random_samples:
        Paper's ``cr``: number of fresh peer-sampling-service samples
        blended into every outgoing message (paper: 30).  These samples
        are "free" because the sampling layer runs independently.
    cycle_length:
        Paper's ``Δ``: the period of the active thread, in simulated
        time units.  Cycle-driven experiments treat one cycle as one Δ;
        the event-driven engine and the asyncio prototype use the value
        directly.
    """

    id_bits: int = 64
    digit_bits: int = 4
    entries_per_slot: int = 3
    leaf_set_size: int = 20
    random_samples: int = 30
    cycle_length: float = 1.0

    def __post_init__(self) -> None:
        if self.entries_per_slot < 1:
            raise ValueError(
                f"entries_per_slot (k) must be >= 1, "
                f"got {self.entries_per_slot}"
            )
        if self.leaf_set_size < 2:
            raise ValueError(
                f"leaf_set_size (c) must be >= 2, got {self.leaf_set_size}"
            )
        if self.leaf_set_size % 2 != 0:
            raise ValueError(
                "leaf_set_size (c) must be even: the protocol keeps c/2 "
                f"successors and c/2 predecessors, got {self.leaf_set_size}"
            )
        if self.random_samples < 0:
            raise ValueError(
                f"random_samples (cr) must be >= 0, got {self.random_samples}"
            )
        if self.cycle_length <= 0:
            raise ValueError(
                f"cycle_length (Δ) must be positive, got {self.cycle_length}"
            )
        # Delegates bits/digit_bits validation to IDSpace.
        IDSpace(self.id_bits, self.digit_bits)

    @property
    def space(self) -> IDSpace:
        """The :class:`IDSpace` induced by ``id_bits`` and ``digit_bits``."""
        return IDSpace(self.id_bits, self.digit_bits)

    @property
    def half_leaf_set(self) -> int:
        """``c/2``: per-direction leaf-set capacity."""
        return self.leaf_set_size // 2

    @property
    def prefix_table_capacity(self) -> int:
        """Upper bound on prefix-table entries: rows x (base-1) x k.

        ``CREATEMESSAGE`` uses this as the bound on the prefix-targeted
        part of a message ("bounded by the size of the full prefix
        table").
        """
        space = self.space
        return (
            space.num_digits * (space.digit_base - 1) * self.entries_per_slot
        )

    def with_overrides(self, **changes: Any) -> BootstrapConfig:
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    def describe(self) -> dict[str, Any]:
        """Return the parameter set as a plain dict (for trace headers)."""
        return {
            "id_bits": self.id_bits,
            "b": self.digit_bits,
            "k": self.entries_per_slot,
            "c": self.leaf_set_size,
            "cr": self.random_samples,
            "delta": self.cycle_length,
        }


#: The exact parameterisation used in the paper's Section 5 simulations.
PAPER_CONFIG = BootstrapConfig()
