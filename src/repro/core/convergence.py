"""Convergence measurement: the paper's evaluation metric.

Figures 3 and 4 plot, per cycle, the **proportion of missing leaf-set
entries** and the **proportion of missing prefix-table entries** across
the whole network, on a log scale, "ending when perfect convergence is
obtained".  :class:`ConvergenceTracker` produces exactly those series:
it compares every node's live state against :class:`ReferenceTables`
and aggregates the deficits.

Under churn the live identifier set changes; the tracker can be rebuilt
against a new reference while keeping the sample history, and entries
pointing at departed nodes are not counted as present.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from .protocol import BootstrapNode
from .reference import ReferenceTables

__all__ = ["ConvergenceSample", "ConvergenceTracker"]


@dataclass(frozen=True)
class ConvergenceSample:
    """Network-wide table quality at one instant.

    ``missing_*`` are absolute entry deficits summed over all live
    nodes; ``total_*`` are the perfect-table denominators.
    """

    cycle: float
    missing_leaf: int
    total_leaf: int
    missing_prefix: int
    total_prefix: int

    @property
    def leaf_fraction(self) -> float:
        """Proportion of missing leaf-set entries (Figure 3/4 top)."""
        return self.missing_leaf / self.total_leaf if self.total_leaf else 0.0

    @property
    def prefix_fraction(self) -> float:
        """Proportion of missing prefix-table entries (Fig. 3/4 bottom)."""
        return (
            self.missing_prefix / self.total_prefix
            if self.total_prefix
            else 0.0
        )

    @property
    def is_perfect(self) -> bool:
        """Whether every node's tables match the reference exactly."""
        return self.missing_leaf == 0 and self.missing_prefix == 0

    def as_row(self) -> dict[str, float]:
        """Flat representation for traces and data files."""
        return {
            "cycle": self.cycle,
            "missing_leaf": self.missing_leaf,
            "leaf_fraction": self.leaf_fraction,
            "missing_prefix": self.missing_prefix,
            "prefix_fraction": self.prefix_fraction,
        }


class ConvergenceTracker:
    """Measures a population of :class:`BootstrapNode` against a
    reference, accumulating the per-cycle series of the paper's plots.

    Parameters
    ----------
    reference:
        Perfect tables for the current live identifier set.
    nodes:
        The live protocol nodes, keyed or listed in any order; only
        nodes whose identifier is in the reference are measured.
    """

    def __init__(
        self,
        reference: ReferenceTables,
        nodes: Iterable[BootstrapNode],
    ) -> None:
        self._reference = reference
        self._nodes: list[BootstrapNode] = [
            node for node in nodes if node.node_id in reference
        ]
        self._live_ids = set(reference.ids)
        self.samples: list[ConvergenceSample] = []

    @property
    def reference(self) -> ReferenceTables:
        """The perfect-table oracle currently in force."""
        return self._reference

    def rebind(
        self, reference: ReferenceTables, nodes: Iterable[BootstrapNode]
    ) -> None:
        """Swap in a new reference and node population (after churn or a
        merge/split event) while keeping the sample history."""
        self._reference = reference
        self._nodes = [n for n in nodes if n.node_id in reference]
        self._live_ids = set(reference.ids)

    def measure(self, cycle: float) -> ConvergenceSample:
        """Take one network-wide measurement and append it to
        :attr:`samples`."""
        reference = self._reference
        live = self._live_ids
        missing_leaf = 0
        missing_prefix = 0
        for node in self._nodes:
            current = node.leaf_set.member_ids()
            if not current.issubset(live):
                current &= live
            missing_leaf += reference.leaf_missing(node.node_id, current)
            missing_prefix += reference.prefix_missing(
                node.node_id, self._live_occupancy(node)
            )
        total_leaf, total_prefix = reference.totals()
        sample = ConvergenceSample(
            cycle=cycle,
            missing_leaf=missing_leaf,
            total_leaf=total_leaf,
            missing_prefix=missing_prefix,
            total_prefix=total_prefix,
        )
        self.samples.append(sample)
        return sample

    def _live_occupancy(
        self, node: BootstrapNode
    ) -> dict[tuple[int, int], int]:
        """Slot occupancy counting only entries that are still live."""
        table = node.prefix_table
        if node.prefix_table.member_ids() <= self._live_ids:
            return table.occupancy()
        occupancy: dict[tuple[int, int], int] = {}
        for slot, descriptors in table.iter_slots():
            live_count = sum(
                1 for d in descriptors if d.node_id in self._live_ids
            )
            if live_count:
                occupancy[slot] = live_count
        return occupancy

    # ------------------------------------------------------------------
    # Series access
    # ------------------------------------------------------------------

    @property
    def converged_at(self) -> float | None:
        """Cycle of the first perfect sample, or ``None``."""
        for sample in self.samples:
            if sample.is_perfect:
                return sample.cycle
        return None

    def leaf_series(self) -> list[tuple[float, float]]:
        """``(cycle, leaf_fraction)`` pairs -- Figure 3/4 top curve."""
        return [(s.cycle, s.leaf_fraction) for s in self.samples]

    def prefix_series(self) -> list[tuple[float, float]]:
        """``(cycle, prefix_fraction)`` pairs -- Figure 3/4 bottom curve."""
        return [(s.cycle, s.prefix_fraction) for s in self.samples]

    def cycles_to_reach(
        self, leaf_threshold: float = 0.0, prefix_threshold: float = 0.0
    ) -> float | None:
        """First cycle at which both fractions are at or below the given
        thresholds (used by the scalability analysis, experiment E5)."""
        for sample in self.samples:
            if (
                sample.leaf_fraction <= leaf_threshold
                and sample.prefix_fraction <= prefix_threshold
            ):
                return sample.cycle
        return None
