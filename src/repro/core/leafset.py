"""The leaf set: a node's closest ring neighbours.

Section 4 of the paper:

    "Method UPDATELEAFSET takes a set of node descriptors (addresses and
    corresponding IDs) and tries to improve the leaf set using these
    descriptors.  First, it merges the set given as a parameter, and the
    current leaf set, and then sorts this set according to distance from
    the node's own ID in the ring of all possible IDs.  Note that all
    IDs can be classified as successors and predecessors: if an ID is
    closer in the increasing direction, it is a successor, otherwise it
    is a predecessor.  Then, in an effort to collect an equal amount of
    successors and predecessors, the method attempts to keep an equal
    number (c/2) of closest successors and predecessors.  If there are
    not enough successors or predecessors, then the leaf set is filled
    with the closest elements in the other direction."

:class:`LeafSet` implements exactly that rule.  It also provides the
sorted-by-distance view that ``SELECTPEER`` needs ("picks a random
element from the first half of the sorted list").
"""

from __future__ import annotations

from heapq import nsmallest
from collections.abc import Iterable

from .descriptor import NodeDescriptor
from .idspace import IDSpace

__all__ = ["LeafSet", "select_balanced_ids"]


def select_balanced_ids(
    space: IDSpace, own_id: int, candidate_ids: Iterable[int], half_capacity: int
) -> set[int]:
    """The paper's leaf-set selection rule, as a pure function on ids.

    Keeps the *half_capacity* closest successors and *half_capacity*
    closest predecessors of *own_id* among *candidate_ids*, backfilling
    from the other direction when one side runs short.  Shared between
    :class:`LeafSet` and the reference-table oracle so that "perfect
    leaf set" means exactly "what UPDATELEAFSET converges to given every
    identifier".
    """
    mask = space.size - 1
    half_ring = space.half

    successors: list[tuple[int, int]] = []
    predecessors: list[tuple[int, int]] = []
    for node_id in candidate_ids:
        if node_id == own_id:
            continue
        forward = (node_id - own_id) & mask
        if forward <= half_ring:
            successors.append((forward, node_id))
        else:
            predecessors.append((mask + 1 - forward, node_id))

    take_succ = min(half_capacity, len(successors))
    take_pred = min(half_capacity, len(predecessors))
    spare = (half_capacity - take_succ) + (half_capacity - take_pred)
    if spare:
        extra_succ = min(spare, len(successors) - take_succ)
        take_succ += extra_succ
        spare -= extra_succ
        take_pred += min(spare, len(predecessors) - take_pred)

    # nsmallest instead of a full sort: candidate pools are ~c + cr +
    # prefix-table sized while the take is c/2-ish, and this selection
    # runs twice per CREATEMESSAGE.  Distances are unique per side, so
    # the selected sets match the sorted-prefix rule exactly.
    chosen = {node_id for _, node_id in nsmallest(take_succ, successors)}
    chosen.update(
        node_id for _, node_id in nsmallest(take_pred, predecessors)
    )
    return chosen


class LeafSet:
    """Balanced set of the closest successors and predecessors.

    Parameters
    ----------
    space:
        The identifier space (ring geometry).
    own_id:
        Identifier of the node owning this leaf set.  Never stored in
        the set itself.
    size:
        Paper's ``c``: total capacity.  ``c/2`` per direction.
    """

    __slots__ = ("_space", "_own_id", "_size", "_half", "_members", "_mask")

    def __init__(self, space: IDSpace, own_id: int, size: int) -> None:
        if size < 2 or size % 2 != 0:
            raise ValueError(f"leaf-set size must be even and >= 2, got {size}")
        space.validate(own_id)
        self._space = space
        self._own_id = own_id
        self._size = size
        self._half = size // 2
        self._mask = space.size - 1
        self._members: dict[int, NodeDescriptor] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def own_id(self) -> int:
        """Identifier of the owning node."""
        return self._own_id

    @property
    def capacity(self) -> int:
        """Maximum number of members (paper's ``c``)."""
        return self._size

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __iter__(self):
        return iter(self._members.values())

    def member_ids(self) -> set[int]:
        """The identifiers currently held (a fresh set)."""
        return set(self._members)

    def descriptors(self) -> list[NodeDescriptor]:
        """All member descriptors, in unspecified (but stable) order."""
        return list(self._members.values())

    def get(self, node_id: int) -> NodeDescriptor | None:
        """Return the descriptor held for *node_id*, or ``None``."""
        return self._members.get(node_id)

    def remove(self, node_id: int) -> bool:
        """Evict *node_id*; returns whether it was a member.

        The bootstrap protocol itself never evicts (UPDATELEAFSET only
        improves); this exists for the *maintenance* layer that takes
        over once the overlay is built and must purge failed
        neighbours.
        """
        return self._members.pop(node_id, None) is not None

    # ------------------------------------------------------------------
    # The paper's UPDATELEAFSET
    # ------------------------------------------------------------------

    def update(self, descriptors: Iterable[NodeDescriptor]) -> bool:
        """Merge *descriptors* into the leaf set (paper's UPDATELEAFSET).

        Returns ``True`` when membership changed (a useful convergence
        signal for experiments; the protocol itself never needs it).
        """
        own = self._own_id
        merged: dict[int, NodeDescriptor] = dict(self._members)
        new_candidates = False
        refreshed = False
        for desc in descriptors:
            if desc.node_id == own:
                continue
            current = merged.get(desc.node_id)
            if current is None:
                merged[desc.node_id] = desc
                new_candidates = True
            elif desc.timestamp > current.timestamp:
                # Same node, fresher advertisement: keep the new address
                # but membership is unchanged.
                merged[desc.node_id] = desc
                refreshed = True
        if not new_candidates:
            if refreshed:
                # Membership identical, only descriptor contents moved.
                self._members = merged
            return False

        selected = self._select(merged)
        changed = selected.keys() != self._members.keys()
        self._members = selected
        return changed

    def _select(
        self, candidates: dict[int, NodeDescriptor]
    ) -> dict[int, NodeDescriptor]:
        """Keep the c/2 closest successors and c/2 closest predecessors,
        backfilling from the other direction when one side runs short."""
        chosen_ids = select_balanced_ids(
            self._space, self._own_id, candidates, self._half
        )
        return {node_id: candidates[node_id] for node_id in chosen_ids}

    # ------------------------------------------------------------------
    # Views used by the protocol
    # ------------------------------------------------------------------

    def sorted_by_distance(self) -> list[NodeDescriptor]:
        """Members ordered by ring distance from the owner (closest
        first, ties broken by identifier)."""
        own = self._own_id
        mask = self._mask

        def key(desc: NodeDescriptor) -> tuple[int, int]:
            forward = (desc.node_id - own) & mask
            backward = (own - desc.node_id) & mask
            return (min(forward, backward), desc.node_id)

        return sorted(self._members.values(), key=key)

    def closest_half(self) -> list[NodeDescriptor]:
        """The first half of :meth:`sorted_by_distance`.

        ``SELECTPEER`` draws uniformly from this list.  We round the
        half up (``ceil(n/2)``) so that a leaf set holding a single
        member still yields a peer during the very first cycles.
        """
        ordered = self.sorted_by_distance()
        if not ordered:
            return []
        half = (len(ordered) + 1) // 2
        return ordered[:half]

    def successors(self) -> list[NodeDescriptor]:
        """Members in the increasing direction, closest first."""
        own = self._own_id
        mask = self._mask
        half_ring = self._space.half
        out = [
            desc
            for desc in self._members.values()
            if ((desc.node_id - own) & mask) <= half_ring
        ]
        out.sort(key=lambda d: (d.node_id - own) & mask)
        return out

    def predecessors(self) -> list[NodeDescriptor]:
        """Members in the decreasing direction, closest first."""
        own = self._own_id
        mask = self._mask
        half_ring = self._space.half
        out = [
            desc
            for desc in self._members.values()
            if ((desc.node_id - own) & mask) > half_ring
        ]
        out.sort(key=lambda d: (own - d.node_id) & mask)
        return out

    def covers(self, target_id: int) -> bool:
        """Return whether *target_id* falls inside the arc spanned by the
        current leaf set (used by leaf-set routing in the overlays)."""
        if not self._members:
            return False
        succ = self.successors()
        pred = self.predecessors()
        own = self._own_id
        mask = self._mask
        hi = succ[-1].node_id if succ else own
        lo = pred[-1].node_id if pred else own
        # target within [lo, hi] going clockwise through own.
        span = (hi - lo) & mask
        offset = (target_id - lo) & mask
        return offset <= span

    def __repr__(self) -> str:
        return (
            f"LeafSet(own={self._own_id:#x}, size={self._size}, "
            f"members={len(self._members)})"
        )
