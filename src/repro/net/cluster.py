"""In-process clusters of deployable peers.

:class:`LocalCluster` assembles N :class:`~repro.net.peer.AsyncPeer`
instances over either the loopback fabric (deterministic, loss/latency
injectable -- the default) or real UDP sockets on 127.0.0.1, then
walks them through the paper's deployment story:

1. the sampling layer gossips until functional (warm-up);
2. the administrator broadcasts the start signal;
3. the bootstrap converges; convergence is verified against the
   perfect tables, exactly as the simulators do.

On top of the happy path the cluster supervises failure experiments
(the chaos scenarios drive these through
:class:`~repro.net.chaos.ChaosController`):

* :meth:`kill` abruptly fails peers (tasks cancelled, transport gone;
  in-flight datagrams to them vanish) and :meth:`restart_killed`
  revives them with *fresh* state re-entering through the seed path;
* :meth:`hold_back` / :meth:`surge` stage a flash crowd: a fraction
  of the pool stays dormant (offline) and joins all at once;
* the convergence tracker re-binds to the live population after every
  membership event, so :meth:`measure` always scores against the
  perfect tables of the nodes actually alive.

This is the end-to-end integration fixture for the asyncio prototype
and the engine behind the ``asyncio_cluster`` example.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Iterable

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceSample, ConvergenceTracker
from ..core.descriptor import NodeDescriptor
from ..core.reference import ReferenceTables
from ..simulator.random_source import RandomSource
from .peer import AsyncPeer, RetryPolicy
from .transport import LoopbackHub, LoopbackTransport, UdpTransport

__all__ = ["LocalCluster"]


class LocalCluster:
    """A cluster of peers on one machine.

    Build with :meth:`create` (loopback) or :meth:`create_udp` (real
    sockets); always :meth:`shutdown` when done.
    """

    def __init__(
        self,
        peers: dict[int, AsyncPeer],
        config: BootstrapConfig,
        hub: LoopbackHub | None,
        *,
        source: RandomSource | None = None,
        view_size: int = 30,
        newscast_interval: float = 0.05,
        seed_contacts: int = 3,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.peers = peers
        self.config = config
        self.hub = hub
        #: Descriptors of killed peers, awaiting :meth:`restart_killed`.
        self.killed: dict[int, NodeDescriptor] = {}
        self._source = source
        self._view_size = view_size
        self._newscast_interval = newscast_interval
        self._seed_count = seed_contacts
        self._retry = retry
        self._dormant: set[int] = set()
        self._bootstrap_started = False
        self._generation = 0
        self.reference = ReferenceTables(
            config.space,
            list(peers),
            config.leaf_set_size,
            config.entries_per_slot,
        )
        self.tracker = ConvergenceTracker(
            self.reference, (p.bootstrap for p in peers.values())
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    async def create(
        cls,
        size: int,
        *,
        seed: int = 1,
        config: BootstrapConfig | None = None,
        drop_probability: float = 0.0,
        latency: float | None = None,
        view_size: int = 30,
        newscast_interval: float = 0.05,
        seed_contacts: int = 3,
        hub: LoopbackHub | None = None,
        retry: RetryPolicy | None = None,
    ) -> LocalCluster:
        """Spin up *size* peers on a loopback fabric.

        Each peer is seeded with *seed_contacts* random contacts -- a
        deliberately skimpy, non-random join list that the NEWSCAST
        warm-up must randomise (one of the paper's Section 3 claims).
        Pass a pre-built *hub* (e.g. a
        :class:`~repro.net.chaos.ChaosHub`) to run the cluster on a
        fault-injecting fabric; *drop_probability*/*latency* then
        belong to that hub and are ignored here.
        """
        if size < 2:
            raise ValueError(f"size must be >= 2, got {size}")
        if config is None:
            # Sub-second Δ so in-process runs finish quickly.
            config = PAPER_CONFIG.with_overrides(cycle_length=0.05)
        source = RandomSource(seed)
        if hub is None:
            hub = LoopbackHub(
                drop_probability=drop_probability,
                latency=(None if latency is None else (lambda rng: latency)),
                rng=source.derive("hub"),
            )
        space = config.space
        ids = space.random_unique_ids(size, source.derive("ids"))
        descriptors = [
            NodeDescriptor(node_id=node_id, address=index)
            for index, node_id in enumerate(ids)
        ]
        peers: dict[int, AsyncPeer] = {}
        for desc in descriptors:
            peer = AsyncPeer(
                desc,
                config,
                rng=source.derive(("peer", desc.node_id)),
                view_size=view_size,
                newscast_interval=newscast_interval,
                retry=retry,
            )
            peer.attach(
                LoopbackTransport(hub, desc.address, peer.on_datagram)
            )
            peers[desc.node_id] = peer
        cluster = cls(
            peers,
            config,
            hub,
            source=source,
            view_size=view_size,
            newscast_interval=newscast_interval,
            seed_contacts=seed_contacts,
            retry=retry,
        )
        cluster._seed_contacts(descriptors, seed_contacts, source)
        return cluster

    @classmethod
    async def create_udp(
        cls,
        size: int,
        *,
        seed: int = 1,
        config: BootstrapConfig | None = None,
        host: str = "127.0.0.1",
        view_size: int = 30,
        newscast_interval: float = 0.05,
        seed_contacts: int = 3,
    ) -> LocalCluster:
        """Spin up *size* peers on real UDP sockets (ephemeral ports)."""
        if size < 2:
            raise ValueError(f"size must be >= 2, got {size}")
        if config is None:
            config = PAPER_CONFIG.with_overrides(cycle_length=0.05)
        source = RandomSource(seed)
        space = config.space
        ids = space.random_unique_ids(size, source.derive("ids"))
        peers: dict[int, AsyncPeer] = {}
        descriptors: list[NodeDescriptor] = []
        for node_id in ids:
            placeholder = NodeDescriptor(node_id=node_id, address=(host, 0))
            peer = AsyncPeer(
                placeholder,
                config,
                rng=source.derive(("peer", node_id)),
                view_size=view_size,
                newscast_interval=newscast_interval,
            )
            transport = await UdpTransport.create(peer.on_datagram, host=host)
            # Rebind the descriptor now that the real port is known.
            bound = NodeDescriptor(
                node_id=node_id, address=transport.local_address
            )
            peer.descriptor = bound
            peer.newscast.descriptor = bound
            peer.bootstrap.descriptor = bound
            peer.attach(transport)
            peers[node_id] = peer
            descriptors.append(bound)
        cluster = cls(
            peers,
            config,
            None,
            source=source,
            view_size=view_size,
            newscast_interval=newscast_interval,
            seed_contacts=seed_contacts,
        )
        cluster._seed_contacts(descriptors, seed_contacts, source)
        return cluster

    def _seed_contacts(
        self,
        descriptors: list[NodeDescriptor],
        count: int,
        source: RandomSource,
    ) -> None:
        rng = source.derive("seeding")
        for peer in self.peers.values():
            others = [d for d in descriptors if d.node_id != peer.node_id]
            contacts = rng.sample(others, min(count, len(others)))
            peer.seed(contacts)

    # ------------------------------------------------------------------
    # Deployment story
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of peers (live and dormant; killed ones excluded)."""
        return len(self.peers)

    def live_peers(self) -> list[AsyncPeer]:
        """The non-dormant peers, in ascending node-id order."""
        return [
            self.peers[nid]
            for nid in sorted(self.peers)
            if nid not in self._dormant
        ]

    def start_sampling_layer(self) -> None:
        """Start NEWSCAST on every non-dormant peer."""
        for peer in self.live_peers():
            peer.start()

    async def warmup(self, duration: float) -> None:
        """Let the sampling layer gossip for *duration* seconds."""
        await asyncio.sleep(duration)

    def broadcast_start(self) -> None:
        """The administrator's start signal: every live peer begins the
        bootstrap (each peer staggers its first activation within one
        Δ itself).  Peers joining later -- restarted or surged -- get
        the signal on entry."""
        self._bootstrap_started = True
        for peer in self.live_peers():
            peer.start_bootstrap()

    def measure(self) -> ConvergenceSample:
        """Convergence of the live bootstrap tables, now."""
        loop = asyncio.get_event_loop()
        return self.tracker.measure(loop.time())

    async def await_convergence(
        self, timeout: float, poll_interval: float = 0.05
    ) -> bool:
        """Poll until perfect tables everywhere or *timeout* seconds."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if self.measure().is_perfect:
                return True
            await asyncio.sleep(poll_interval)
        return self.measure().is_perfect

    async def shutdown(self) -> dict[int, list[BaseException]]:
        """Stop every peer and release transports.

        Returns the crash report: for each peer whose gossip tasks
        died with an unexpected exception, the reaped exceptions (see
        :attr:`AsyncPeer.crashes`).  One crashed peer never poisons
        the shutdown of the others.
        """
        await asyncio.gather(
            *(peer.stop() for peer in self.peers.values()),
            return_exceptions=True,
        )
        return {
            node_id: list(peer.crashes)
            for node_id, peer in self.peers.items()
            if peer.crashes
        }

    def mean_view_size(self) -> float:
        """Average NEWSCAST view fill (warm-up progress indicator)."""
        if not self.peers:
            return 0.0
        return sum(len(p.newscast.view) for p in self.peers.values()) / len(
            self.peers
        )

    # ------------------------------------------------------------------
    # Failure supervision (the chaos scenarios drive these)
    # ------------------------------------------------------------------

    def choose_victims(
        self, count: int, rng: random.Random, mode: str = "random"
    ) -> list[int]:
        """Pick *count* kill victims among the live peers.

        ``random`` samples uniformly; ``targeted`` ranks peers by
        NEWSCAST in-degree (how many other live views advertise them)
        and kills the most-referenced first -- the adversarial shape
        from the stress-testing literature.  At least two peers always
        survive.
        """
        live = sorted(nid for nid in self.peers if nid not in self._dormant)
        count = max(0, min(count, len(live) - 2))
        if count == 0:
            return []
        if mode == "random":
            return sorted(rng.sample(live, count))
        if mode == "targeted":
            in_degree = dict.fromkeys(live, 0)
            for nid in live:
                for desc in self.peers[nid].newscast.view.descriptors():
                    if desc.node_id != nid and desc.node_id in in_degree:
                        in_degree[desc.node_id] += 1
            ranked = sorted(live, key=lambda n: (-in_degree[n], n))
            return sorted(ranked[:count])
        raise ValueError(f"kill mode must be random|targeted, got {mode!r}")

    async def kill(self, node_ids: Iterable[int]) -> None:
        """Abruptly fail the given peers: tasks cancelled, transport
        unregistered (in-flight datagrams to them vanish).  Their
        descriptors are remembered for :meth:`restart_killed`."""
        for node_id in node_ids:
            peer = self.peers.pop(node_id, None)
            if peer is None:
                continue
            self._dormant.discard(node_id)
            self.killed[node_id] = peer.descriptor
            await peer.stop()
        self._rebind_tracker()

    async def restart_killed(self) -> list[int]:
        """Revive every killed peer with *fresh* state.

        Each rejoins exactly like a new node: a new
        :class:`AsyncPeer` (empty view, empty tables) seeded with a
        few random live contacts, started immediately -- and handed
        the start signal when the administrator already broadcast it.
        Requires the loopback fabric (``create``-built clusters).
        """
        if not self.killed:
            return []
        if self.hub is None or self._source is None:
            raise RuntimeError(
                "restart supervision needs the loopback fabric"
            )
        self._generation += 1
        live_descriptors = [p.descriptor for p in self.live_peers()]
        reseed = self._source.derive(("reseed", self._generation))
        revived: list[int] = []
        for node_id in sorted(self.killed):
            desc = self.killed[node_id]
            peer = AsyncPeer(
                desc,
                self.config,
                rng=self._source.derive(
                    ("restart", self._generation, node_id)
                ),
                view_size=self._view_size,
                newscast_interval=self._newscast_interval,
                retry=self._retry,
            )
            peer.attach(
                LoopbackTransport(self.hub, desc.address, peer.on_datagram)
            )
            contacts = reseed.sample(
                live_descriptors,
                min(self._seed_count, len(live_descriptors)),
            )
            peer.seed(contacts)
            self.peers[node_id] = peer
            peer.start()
            if self._bootstrap_started:
                peer.start_bootstrap()
            revived.append(node_id)
        self.killed.clear()
        self._rebind_tracker()
        return revived

    def hold_back(self, fraction: float, rng: random.Random) -> list[int]:
        """Mark a fraction of the pool dormant (the flash-crowd
        reserve): their transports detach, they run nothing, and the
        convergence reference excludes them until :meth:`surge`.
        Call before :meth:`start_sampling_layer`."""
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        count = min(round(len(self.peers) * fraction), len(self.peers) - 2)
        if count <= 0:
            return []
        ids = sorted(self.peers)
        self._dormant = set(rng.sample(ids, count))
        for node_id in sorted(self._dormant):
            # Offline for real: frames routed to a dormant peer vanish.
            self.peers[node_id]._transport.close()
        self._rebind_tracker()
        return sorted(self._dormant)

    def surge(self) -> list[int]:
        """Wake every dormant peer at once (the flash-crowd join
        surge): re-attach transports, start NEWSCAST, and hand over
        the start signal when it is already out."""
        woken = sorted(self._dormant)
        self._dormant.clear()
        for node_id in woken:
            peer = self.peers[node_id]
            peer.attach(
                LoopbackTransport(
                    self.hub, peer.descriptor.address, peer.on_datagram
                )
            )
            peer.start()
            if self._bootstrap_started:
                peer.start_bootstrap()
        self._rebind_tracker()
        return woken

    def _rebind_tracker(self) -> None:
        """Re-point the tracker at the live population (fresh perfect
        tables, sample history kept)."""
        live = self.live_peers()
        self.reference = ReferenceTables(
            self.config.space,
            [peer.node_id for peer in live],
            self.config.leaf_set_size,
            self.config.entries_per_slot,
        )
        self.tracker.rebind(
            self.reference, (peer.bootstrap for peer in live)
        )
