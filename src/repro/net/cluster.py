"""In-process clusters of deployable peers.

:class:`LocalCluster` assembles N :class:`~repro.net.peer.AsyncPeer`
instances over either the loopback fabric (deterministic, loss/latency
injectable -- the default) or real UDP sockets on 127.0.0.1, then
walks them through the paper's deployment story:

1. the sampling layer gossips until functional (warm-up);
2. the administrator broadcasts the start signal;
3. the bootstrap converges; convergence is verified against the
   perfect tables, exactly as the simulators do.

This is the end-to-end integration fixture for the asyncio prototype
and the engine behind the ``asyncio_cluster`` example.
"""

from __future__ import annotations

import asyncio

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceSample, ConvergenceTracker
from ..core.descriptor import NodeDescriptor
from ..core.reference import ReferenceTables
from ..simulator.random_source import RandomSource
from .peer import AsyncPeer
from .transport import LoopbackHub, LoopbackTransport, UdpTransport

__all__ = ["LocalCluster"]


class LocalCluster:
    """A cluster of peers on one machine.

    Build with :meth:`create` (loopback) or :meth:`create_udp` (real
    sockets); always :meth:`shutdown` when done.
    """

    def __init__(
        self,
        peers: dict[int, AsyncPeer],
        config: BootstrapConfig,
        hub: LoopbackHub | None,
    ) -> None:
        self.peers = peers
        self.config = config
        self.hub = hub
        self.reference = ReferenceTables(
            config.space,
            list(peers),
            config.leaf_set_size,
            config.entries_per_slot,
        )
        self.tracker = ConvergenceTracker(
            self.reference, (p.bootstrap for p in peers.values())
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    async def create(
        cls,
        size: int,
        *,
        seed: int = 1,
        config: BootstrapConfig | None = None,
        drop_probability: float = 0.0,
        latency: float | None = None,
        view_size: int = 30,
        newscast_interval: float = 0.05,
        seed_contacts: int = 3,
    ) -> LocalCluster:
        """Spin up *size* peers on a loopback fabric.

        Each peer is seeded with *seed_contacts* random contacts -- a
        deliberately skimpy, non-random join list that the NEWSCAST
        warm-up must randomise (one of the paper's Section 3 claims).
        """
        if size < 2:
            raise ValueError(f"size must be >= 2, got {size}")
        if config is None:
            # Sub-second Δ so in-process runs finish quickly.
            config = PAPER_CONFIG.with_overrides(cycle_length=0.05)
        source = RandomSource(seed)
        hub = LoopbackHub(
            drop_probability=drop_probability,
            latency=(None if latency is None else (lambda rng: latency)),
            rng=source.derive("hub"),
        )
        space = config.space
        ids = space.random_unique_ids(size, source.derive("ids"))
        descriptors = [
            NodeDescriptor(node_id=node_id, address=index)
            for index, node_id in enumerate(ids)
        ]
        peers: dict[int, AsyncPeer] = {}
        for desc in descriptors:
            peer = AsyncPeer(
                desc,
                config,
                rng=source.derive(("peer", desc.node_id)),
                view_size=view_size,
                newscast_interval=newscast_interval,
            )
            peer.attach(
                LoopbackTransport(hub, desc.address, peer.on_datagram)
            )
            peers[desc.node_id] = peer
        cluster = cls(peers, config, hub)
        cluster._seed_contacts(descriptors, seed_contacts, source)
        return cluster

    @classmethod
    async def create_udp(
        cls,
        size: int,
        *,
        seed: int = 1,
        config: BootstrapConfig | None = None,
        host: str = "127.0.0.1",
        view_size: int = 30,
        newscast_interval: float = 0.05,
        seed_contacts: int = 3,
    ) -> LocalCluster:
        """Spin up *size* peers on real UDP sockets (ephemeral ports)."""
        if size < 2:
            raise ValueError(f"size must be >= 2, got {size}")
        if config is None:
            config = PAPER_CONFIG.with_overrides(cycle_length=0.05)
        source = RandomSource(seed)
        space = config.space
        ids = space.random_unique_ids(size, source.derive("ids"))
        peers: dict[int, AsyncPeer] = {}
        descriptors: list[NodeDescriptor] = []
        for node_id in ids:
            placeholder = NodeDescriptor(node_id=node_id, address=(host, 0))
            peer = AsyncPeer(
                placeholder,
                config,
                rng=source.derive(("peer", node_id)),
                view_size=view_size,
                newscast_interval=newscast_interval,
            )
            transport = await UdpTransport.create(peer.on_datagram, host=host)
            # Rebind the descriptor now that the real port is known.
            bound = NodeDescriptor(
                node_id=node_id, address=transport.local_address
            )
            peer.descriptor = bound
            peer.newscast.descriptor = bound
            peer.bootstrap.descriptor = bound
            peer.attach(transport)
            peers[node_id] = peer
            descriptors.append(bound)
        cluster = cls(peers, config, None)
        cluster._seed_contacts(descriptors, seed_contacts, source)
        return cluster

    def _seed_contacts(
        self,
        descriptors: list[NodeDescriptor],
        count: int,
        source: RandomSource,
    ) -> None:
        rng = source.derive("seeding")
        for peer in self.peers.values():
            others = [d for d in descriptors if d.node_id != peer.node_id]
            contacts = rng.sample(others, min(count, len(others)))
            peer.seed(contacts)

    # ------------------------------------------------------------------
    # Deployment story
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of peers."""
        return len(self.peers)

    def start_sampling_layer(self) -> None:
        """Start NEWSCAST on every peer."""
        for peer in self.peers.values():
            peer.start()

    async def warmup(self, duration: float) -> None:
        """Let the sampling layer gossip for *duration* seconds."""
        await asyncio.sleep(duration)

    def broadcast_start(self) -> None:
        """The administrator's start signal: every peer begins the
        bootstrap (each peer staggers its first activation within one
        Δ itself)."""
        for peer in self.peers.values():
            peer.start_bootstrap()

    def measure(self) -> ConvergenceSample:
        """Convergence of the live bootstrap tables, now."""
        loop = asyncio.get_event_loop()
        return self.tracker.measure(loop.time())

    async def await_convergence(
        self, timeout: float, poll_interval: float = 0.05
    ) -> bool:
        """Poll until perfect tables everywhere or *timeout* seconds."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if self.measure().is_perfect:
                return True
            await asyncio.sleep(poll_interval)
        return self.measure().is_perfect

    async def shutdown(self) -> None:
        """Stop every peer and release transports."""
        await asyncio.gather(
            *(peer.stop() for peer in self.peers.values()),
            return_exceptions=True,
        )

    def mean_view_size(self) -> float:
        """Average NEWSCAST view fill (warm-up progress indicator)."""
        if not self.peers:
            return 0.0
        return sum(len(p.newscast.view) for p in self.peers.values()) / len(
            self.peers
        )
