"""Wire codec for the gossip layers.

The paper designed both layers around "small UDP messages containing
approximately 30 IP addresses, along with the ports, timestamps, and
descriptors such as node IDs".  This codec realises exactly that: a
compact binary framing for descriptor bags, shared by the NEWSCAST and
bootstrap layers so one socket serves the whole stack.

Frame layout (big-endian)::

    magic     u16   0xB007  ("boot")
    version   u8    1
    layer     u8    1 = bootstrap, 2 = newscast
    kind      u8    0 = request, 1 = reply
    count     u16   number of descriptors (sender first)
    descriptor * count

Descriptor layout::

    node_id   u64
    timestamp f64
    addr_kind u8    0 = integer, 1 = (host, port)
    addr      u64              (kind 0)
              u8 len + bytes + u16 port   (kind 1)

The sender's descriptor travels as the first entry, so the payload
proper is ``descriptors[1:]``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from collections.abc import Sequence

from ..core.descriptor import NodeDescriptor
from ..core.messages import BootstrapMessage

__all__ = [
    "CodecError",
    "WireMessage",
    "LAYER_BOOTSTRAP",
    "LAYER_NEWSCAST",
    "encode_message",
    "decode_message",
    "encode_bootstrap",
    "decode_bootstrap",
]

MAGIC = 0xB007
VERSION = 1
LAYER_BOOTSTRAP = 1
LAYER_NEWSCAST = 2

_HEADER = struct.Struct(">HBBBH")
_DESC_FIXED = struct.Struct(">Qd B")
_INT_ADDR = struct.Struct(">Q")
_PORT = struct.Struct(">H")

#: Hard cap on descriptors per frame: a full prefix table plus leaf set
#: plus slack; anything larger indicates a bug or a hostile frame.
MAX_DESCRIPTORS = 4096


class CodecError(ValueError):
    """A frame could not be decoded (truncated, bad magic, bad kinds)."""


@dataclass(frozen=True)
class WireMessage:
    """A decoded frame, layer-agnostic."""

    layer: int
    kind: int
    sender: NodeDescriptor
    descriptors: tuple[NodeDescriptor, ...]

    @property
    def is_reply(self) -> bool:
        """Whether the frame is an answer."""
        return self.kind == 1


def _encode_descriptor(desc: NodeDescriptor, out: list[bytes]) -> None:
    address = desc.address
    if isinstance(address, bool):
        raise CodecError(f"unsupported address type: {type(address)}")
    if isinstance(address, int):
        if not 0 <= address < (1 << 64):
            raise CodecError(f"integer address out of range: {address}")
        out.append(_DESC_FIXED.pack(desc.node_id, float(desc.timestamp), 0))
        out.append(_INT_ADDR.pack(address))
    elif (
        isinstance(address, tuple)
        and len(address) == 2
        and isinstance(address[0], str)
        and isinstance(address[1], int)
    ):
        host_bytes = address[0].encode()
        if len(host_bytes) > 255:
            raise CodecError(f"host name too long: {address[0]!r}")
        if not 0 <= address[1] < 65536:
            raise CodecError(f"port out of range: {address[1]}")
        out.append(_DESC_FIXED.pack(desc.node_id, float(desc.timestamp), 1))
        out.append(bytes([len(host_bytes)]))
        out.append(host_bytes)
        out.append(_PORT.pack(address[1]))
    else:
        raise CodecError(f"unsupported address type: {type(address)}")


def _decode_descriptor(
    data: bytes, offset: int
) -> tuple[NodeDescriptor, int]:
    try:
        node_id, timestamp, addr_kind = _DESC_FIXED.unpack_from(data, offset)
    except struct.error as exc:
        raise CodecError(f"truncated descriptor at offset {offset}") from exc
    offset += _DESC_FIXED.size
    if addr_kind == 0:
        try:
            (address,) = _INT_ADDR.unpack_from(data, offset)
        except struct.error as exc:
            raise CodecError("truncated integer address") from exc
        offset += _INT_ADDR.size
        return (
            NodeDescriptor(
                node_id=node_id, address=address, timestamp=timestamp
            ),
            offset,
        )
    if addr_kind == 1:
        if offset >= len(data):
            raise CodecError("truncated host length")
        host_len = data[offset]
        offset += 1
        host_end = offset + host_len
        if host_end + _PORT.size > len(data):
            raise CodecError("truncated host/port")
        try:
            host = data[offset:host_end].decode("utf-8")
        except UnicodeDecodeError as exc:
            # Without this guard a corrupted host field would escape as
            # UnicodeDecodeError (a ValueError, but not a CodecError)
            # and kill the receive path of whoever decodes the frame.
            raise CodecError(f"undecodable host bytes at offset {offset}") from exc
        (port,) = _PORT.unpack_from(data, host_end)
        offset = host_end + _PORT.size
        return (
            NodeDescriptor(
                node_id=node_id, address=(host, port), timestamp=timestamp
            ),
            offset,
        )
    raise CodecError(f"unknown address kind {addr_kind}")


def encode_message(
    layer: int,
    kind: int,
    sender: NodeDescriptor,
    descriptors: Sequence[NodeDescriptor],
) -> bytes:
    """Encode one frame."""
    if layer not in (LAYER_BOOTSTRAP, LAYER_NEWSCAST):
        raise CodecError(f"unknown layer {layer}")
    if kind not in (0, 1):
        raise CodecError(f"unknown kind {kind}")
    if len(descriptors) + 1 > MAX_DESCRIPTORS:
        raise CodecError(
            f"{len(descriptors) + 1} descriptors exceed the frame cap"
        )
    out: list[bytes] = [
        _HEADER.pack(MAGIC, VERSION, layer, kind, len(descriptors) + 1)
    ]
    _encode_descriptor(sender, out)
    for desc in descriptors:
        _encode_descriptor(desc, out)
    return b"".join(out)


def decode_message(data: bytes) -> WireMessage:
    """Decode one frame (raises :class:`CodecError` on any defect)."""
    try:
        magic, version, layer, kind, count = _HEADER.unpack_from(data, 0)
    except struct.error as exc:
        raise CodecError("truncated header") from exc
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic:#x}")
    if version != VERSION:
        raise CodecError(f"unsupported version {version}")
    if layer not in (LAYER_BOOTSTRAP, LAYER_NEWSCAST):
        raise CodecError(f"unknown layer {layer}")
    if kind not in (0, 1):
        raise CodecError(f"unknown kind {kind}")
    if count < 1 or count > MAX_DESCRIPTORS:
        raise CodecError(f"implausible descriptor count {count}")
    offset = _HEADER.size
    descriptors: list[NodeDescriptor] = []
    for _ in range(count):
        desc, offset = _decode_descriptor(data, offset)
        descriptors.append(desc)
    if offset != len(data):
        raise CodecError(
            f"{len(data) - offset} trailing bytes after descriptors"
        )
    return WireMessage(
        layer=layer,
        kind=kind,
        sender=descriptors[0],
        descriptors=tuple(descriptors[1:]),
    )


def encode_bootstrap(message: BootstrapMessage) -> bytes:
    """Encode a :class:`BootstrapMessage` as a bootstrap-layer frame."""
    return encode_message(
        LAYER_BOOTSTRAP,
        1 if message.is_reply else 0,
        message.sender,
        message.descriptors,
    )


def decode_bootstrap(wire: WireMessage) -> BootstrapMessage:
    """Reconstruct a :class:`BootstrapMessage` from a decoded frame."""
    if wire.layer != LAYER_BOOTSTRAP:
        raise CodecError(f"not a bootstrap frame (layer {wire.layer})")
    return BootstrapMessage(
        sender=wire.sender,
        descriptors=wire.descriptors,
        is_reply=wire.is_reply,
    )
