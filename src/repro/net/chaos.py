"""Deterministic chaos fabric for the asyncio prototype.

The paper's headline claim is *operational robustness*: the service
keeps handing out routing substrates "despite catastrophic failures,
on demand".  This module supplies the machinery to put the live stack
(:mod:`repro.net.peer` / :mod:`repro.net.cluster`) under exactly those
conditions, reproducibly:

* :class:`LinkFaults` -- a per-link fault distribution (drop,
  duplicate, reorder, fixed delay, jitter);
* :class:`ChaosEvent` / :class:`ChaosSchedule` -- a declarative,
  JSON-round-trippable timeline of fault events (like
  :class:`~repro.scenarios.ScenarioSpec`, but for faults);
* :class:`ChaosHub` -- a :class:`~repro.net.transport.LoopbackHub`
  that applies the configured faults and (possibly asymmetric)
  partitions to every datagram, drawing all randomness from one
  injected ``random.Random``;
* :class:`VirtualClockLoop` / :func:`run_virtual` -- an asyncio event
  loop whose clock jumps straight to the next timer, so chaos soaks
  are both fast (no real sleeping) and *deterministic*: the same
  schedule and seed produce the identical interleaving, message
  counters and virtual timestamps on every run;
* :class:`ChaosController` -- the interpreter that walks a schedule
  against a live cluster (partition/heal the hub, kill/restart peers,
  wake a flash crowd).

Determinism contract: with a :class:`VirtualClockLoop`, a loopback
fabric and seeded RNGs, two runs of the same schedule are
byte-identical -- the property ``tests/test_chaos.py`` pins.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import random
from dataclasses import dataclass
from collections.abc import Awaitable, Callable, Hashable, Iterable

from .transport import LoopbackHub

__all__ = [
    "LinkFaults",
    "ChaosEvent",
    "ChaosSchedule",
    "CHAOS_EVENT_KINDS",
    "ChaosHub",
    "VirtualClockLoop",
    "run_virtual",
    "ChaosController",
]


# ----------------------------------------------------------------------
# Fault distributions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LinkFaults:
    """One link's (or the fabric-wide default) fault distribution.

    Attributes
    ----------
    drop:
        Per-datagram loss probability, in ``[0, 1)``.
    duplicate:
        Probability the datagram is delivered twice, in ``[0, 1]``.
    reorder:
        Probability the datagram is held back by :attr:`reorder_delay`
        seconds (overtaken by later traffic), in ``[0, 1]``.
    reorder_delay:
        Hold-back applied to reordered datagrams, seconds.
    delay:
        Fixed one-way delay applied to every datagram, seconds.
    jitter:
        Uniform extra delay in ``[0, jitter]`` seconds per datagram.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 0.05
    delay: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop < 1.0:
            raise ValueError(f"drop must be in [0, 1), got {self.drop}")
        for name in ("duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("reorder_delay", "delay", "jitter"):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @property
    def is_clean(self) -> bool:
        """Whether this distribution perturbs nothing at all.

        A clean distribution draws **zero** random numbers per
        datagram, which is what makes a fault-free :class:`ChaosHub`
        behave identically to a plain ``LoopbackHub`` (pinned by the
        equivalence test).
        """
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.delay == 0.0
            and self.jitter == 0.0
        )

    def to_dict(self) -> dict[str, float]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "reorder_delay": self.reorder_delay,
            "delay": self.delay,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> LinkFaults:
        """Rebuild a distribution from :meth:`to_dict` output."""
        allowed = {
            "drop", "duplicate", "reorder", "reorder_delay", "delay",
            "jitter",
        }
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown LinkFaults fields {sorted(unknown)}")
        return cls(**{key: float(value) for key, value in data.items()})


# ----------------------------------------------------------------------
# Declarative schedules
# ----------------------------------------------------------------------

#: Event kinds and the parameter names each accepts.  ``link_faults``
#: parameters mirror :class:`LinkFaults`; the rest are interpreted by
#: :class:`ChaosController`.
CHAOS_EVENT_KINDS: dict[str, frozenset[str]] = {
    "link_faults": frozenset(
        {"drop", "duplicate", "reorder", "reorder_delay", "delay", "jitter"}
    ),
    "partition": frozenset({"fraction", "symmetric"}),
    "heal": frozenset(),
    "kill": frozenset({"fraction", "count", "mode"}),
    "restart": frozenset(),
    "surge": frozenset(),
}

#: JSON scalar types admissible as event parameter values.
_SCALARS = (bool, int, float, str)


@dataclass(frozen=True)
class ChaosEvent:
    """One timed fault event.

    ``at`` is seconds after the chaos run's start signal; ``params``
    is stored as a sorted tuple of pairs so the event is hashable and
    serialises canonically.  Build with :meth:`of`.
    """

    at: float
    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        allowed = CHAOS_EVENT_KINDS.get(self.kind)
        if allowed is None:
            raise ValueError(
                f"unknown chaos event kind {self.kind!r}; expected one of "
                f"{sorted(CHAOS_EVENT_KINDS)}"
            )
        for key, value in self.params:
            if key not in allowed:
                raise ValueError(
                    f"event {self.kind!r} does not take parameter {key!r} "
                    f"(allowed: {sorted(allowed) or 'none'})"
                )
            if not isinstance(value, _SCALARS):
                raise ValueError(
                    f"event parameter {key}={value!r} is not a JSON scalar"
                )

    @classmethod
    def of(cls, at: float, kind: str, **params: object) -> ChaosEvent:
        """Build an event with keyword parameters (canonical order)."""
        return cls(
            at=float(at),
            kind=kind,
            params=tuple(sorted(params.items())),
        )

    def param_dict(self) -> dict[str, object]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "at": self.at,
            "kind": self.kind,
            "params": self.param_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> ChaosEvent:
        """Rebuild an event from :meth:`to_dict` output."""
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ValueError(f"event params must be an object, got {params!r}")
        return cls.of(float(data["at"]), str(data["kind"]), **params)


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered timeline of :class:`ChaosEvent`, JSON-round-trippable.

    Events are kept sorted by time (ties keep their given order), so
    the schedule *is* the fault sequence -- the controller applies it
    front to back.  ``ChaosSchedule.from_dict(s.to_dict()) == s`` is
    the contract the tests pin, mirroring ``ScenarioSpec``.
    """

    events: tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        times = [event.at for event in self.events]
        if times != sorted(times):
            raise ValueError(
                "chaos events must be ordered by time; use "
                "ChaosSchedule.of(...) to sort"
            )

    @classmethod
    def of(cls, *events: ChaosEvent) -> ChaosSchedule:
        """Build a schedule, sorting the events by time (stable)."""
        return cls(events=tuple(sorted(events, key=lambda e: e.at)))

    def __len__(self) -> int:
        return len(self.events)

    @property
    def last_at(self) -> float:
        """Time of the final event (0.0 for an empty schedule)."""
        return self.events[-1].at if self.events else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> ChaosSchedule:
        """Rebuild a schedule from :meth:`to_dict` output."""
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ValueError(f"events must be a list, got {events!r}")
        return cls.of(*(ChaosEvent.from_dict(e) for e in events))

    def to_json(self, indent: int = 1) -> str:
        """Serialise to a stable JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> ChaosSchedule:
        """Parse a :meth:`to_json` document."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# The fault-injecting fabric
# ----------------------------------------------------------------------


class ChaosHub(LoopbackHub):
    """A loopback fabric that applies :class:`LinkFaults` and partitions.

    Per-datagram behaviour (in order): partition check, drop draw,
    duplicate draw, then per-copy delay (fixed + jitter + reorder
    hold-back).  A link with a clean fault distribution draws **no**
    randomness and delivers via ``call_soon``, exactly like the plain
    ``LoopbackHub`` -- so a fault-free :class:`ChaosHub` is
    behaviourally identical to its parent (pinned by test).

    Parameters
    ----------
    faults:
        Fabric-wide default fault distribution (clean by default).
    rng:
        The single source of fault randomness; inject a seeded
        ``random.Random`` for reproducible runs.
    """

    def __init__(
        self,
        faults: LinkFaults | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(drop_probability=0.0, latency=None, rng=rng)
        self.faults = faults if faults is not None else LinkFaults()
        self._links: dict[tuple[Hashable, Hashable], LinkFaults] = {}
        self._blocks: list[tuple[frozenset, frozenset]] = []
        self.datagrams_duplicated = 0
        self.datagrams_reordered = 0
        self.datagrams_delayed = 0
        self.datagrams_blocked = 0

    # -- configuration ---------------------------------------------------

    def set_faults(self, faults: LinkFaults) -> None:
        """Replace the fabric-wide default fault distribution."""
        self.faults = faults

    def set_link(
        self, source: Hashable, target: Hashable, faults: LinkFaults
    ) -> None:
        """Override the fault distribution of one directed link."""
        self._links[(source, target)] = faults

    def clear_links(self) -> None:
        """Drop every per-link override (the default applies again)."""
        self._links.clear()

    def partition(
        self,
        side_a: Iterable[Hashable],
        side_b: Iterable[Hashable],
        symmetric: bool = True,
    ) -> None:
        """Block traffic from *side_a* to *side_b* (and back, when
        *symmetric*).  Partitions stack until :meth:`heal`."""
        a, b = frozenset(side_a), frozenset(side_b)
        self._blocks.append((a, b))
        if symmetric:
            self._blocks.append((b, a))

    def heal(self) -> None:
        """Remove every partition (traffic flows again)."""
        self._blocks.clear()

    @property
    def partitioned(self) -> bool:
        """Whether any partition is currently in force."""
        return bool(self._blocks)

    def counters(self) -> dict[str, int]:
        """All fabric counters as a plain dict (for reports)."""
        return {
            "datagrams_sent": self.datagrams_sent,
            "datagrams_dropped": self.datagrams_dropped,
            "datagrams_duplicated": self.datagrams_duplicated,
            "datagrams_reordered": self.datagrams_reordered,
            "datagrams_delayed": self.datagrams_delayed,
            "datagrams_blocked": self.datagrams_blocked,
        }

    # -- the datapath ----------------------------------------------------

    def _is_blocked(self, source: Hashable, target: Hashable) -> bool:
        return any(
            source in side_a and target in side_b
            for side_a, side_b in self._blocks
        )

    def send(self, data: bytes, source: Hashable, target: Hashable) -> None:
        """Route one datagram, applying partitions and link faults."""
        self.datagrams_sent += 1
        if self._blocks and self._is_blocked(source, target):
            self.datagrams_blocked += 1
            return
        faults = self._links.get((source, target), self.faults)
        loop = asyncio.get_running_loop()
        if faults.is_clean:
            loop.call_soon(self._deliver, data, source, target)
            return
        rng = self._rng
        if faults.drop and rng.random() < faults.drop:
            self.datagrams_dropped += 1
            return
        copies = 1
        if faults.duplicate and rng.random() < faults.duplicate:
            copies = 2
            self.datagrams_duplicated += 1
        for _ in range(copies):
            delay = faults.delay
            if faults.jitter:
                delay += rng.uniform(0.0, faults.jitter)
            if faults.reorder and rng.random() < faults.reorder:
                delay += faults.reorder_delay
                self.datagrams_reordered += 1
            if delay > 0.0:
                self.datagrams_delayed += 1
                loop.call_later(delay, self._deliver, data, source, target)
            else:
                loop.call_soon(self._deliver, data, source, target)


# ----------------------------------------------------------------------
# The virtual clock
# ----------------------------------------------------------------------


class VirtualClockLoop(asyncio.SelectorEventLoop):
    """An event loop whose clock jumps to the next scheduled timer.

    Whenever the ready queue drains, the loop advances its virtual
    ``time()`` straight to the earliest pending timer instead of
    sleeping -- a ten-virtual-second soak finishes in milliseconds of
    wall clock, and (with loopback transports and seeded RNGs) the
    callback interleaving is a pure function of the program, which is
    what makes chaos runs bit-reproducible.

    Only timer- and callback-driven work advances: real I/O readiness
    (sockets) never fires, so this loop is for loopback fabrics only.
    A state with no ready callbacks and no timers would sleep forever
    on the selector; the loop raises ``RuntimeError`` instead, turning
    accidental deadlock into a diagnosable failure.
    """

    def __init__(self) -> None:
        self._virtual_now = 0.0
        super().__init__()

    def time(self) -> float:
        """The loop's virtual clock (seconds since loop creation)."""
        return self._virtual_now

    def _run_once(self) -> None:
        """One iteration: advance the virtual clock, then run the base
        machinery (whose timeout computes to zero)."""
        if not self._ready and not self._stopping:
            scheduled = self._scheduled
            while scheduled and scheduled[0]._cancelled:
                self._timer_cancelled_count -= 1
                handle = heapq.heappop(scheduled)
                handle._scheduled = False
            if scheduled:
                when = scheduled[0]._when
                if when > self._virtual_now:
                    self._virtual_now = when
            else:
                raise RuntimeError(
                    "virtual-clock deadlock: no ready callbacks and no "
                    "scheduled timers (some await depends on real I/O?)"
                )
        super()._run_once()


def run_virtual(main: Awaitable) -> object:
    """Run *main* to completion on a fresh :class:`VirtualClockLoop`.

    The virtual-clock analogue of ``asyncio.run``: installs the loop
    (so ``get_event_loop`` callers inside the stack see it), runs the
    coroutine, then shuts down async generators and closes the loop.
    """
    loop = VirtualClockLoop()
    asyncio.set_event_loop(loop)
    try:
        return loop.run_until_complete(main)
    finally:
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


# ----------------------------------------------------------------------
# The schedule interpreter
# ----------------------------------------------------------------------


class ChaosController:
    """Walks a :class:`ChaosSchedule` against a live cluster.

    Event semantics:

    ``link_faults``
        Replace the hub's default :class:`LinkFaults` with the event's
        parameters.
    ``partition``
        Split the live peers' addresses into two sides (the first
        ``fraction`` of the sorted address list versus the rest) and
        block cross-traffic; ``symmetric=False`` blocks only the
        A-to-B direction (an asymmetric partition).
    ``heal``
        Remove every partition.
    ``kill``
        Abruptly fail ``count`` peers (or ``fraction`` of the live
        population); ``mode`` is ``random`` or ``targeted`` (highest
        in-degree first; see ``LocalCluster.choose_victims``).
    ``restart``
        Revive every killed peer with fresh state through the seed
        path (``LocalCluster.restart_killed``).
    ``surge``
        Wake every dormant peer at once (the flash crowd).

    Parameters
    ----------
    cluster:
        The live :class:`~repro.net.cluster.LocalCluster`.
    hub:
        Its :class:`ChaosHub` fabric.
    schedule:
        The timeline to apply (times relative to :meth:`run` start).
    rng:
        Randomness for victim selection (seeded for reproducibility).
    """

    def __init__(
        self,
        cluster,
        hub: ChaosHub,
        schedule: ChaosSchedule,
        rng: random.Random,
    ) -> None:
        self.cluster = cluster
        self.hub = hub
        self.schedule = schedule
        self._rng = rng
        #: Applied-event log: one dict per event with its virtual
        #: timestamp and the concrete effect (victims, sides, ...).
        self.applied: list[dict[str, object]] = []

    async def run(self) -> list[dict[str, object]]:
        """Apply every event at its scheduled (virtual) time.

        Returns the applied-event log; also kept on :attr:`applied`.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        for event in self.schedule.events:
            target_time = start + event.at
            delay = target_time - loop.time()
            if delay > 0.0:
                await asyncio.sleep(delay)
            effect = await self._apply(event)
            self.applied.append(
                {
                    "at": event.at,
                    "kind": event.kind,
                    "time": loop.time() - start,
                    **effect,
                }
            )
        return self.applied

    async def _apply(self, event: ChaosEvent) -> dict[str, object]:
        handler: Callable = getattr(self, f"_apply_{event.kind}")
        result = handler(**event.param_dict())
        if asyncio.iscoroutine(result):
            result = await result
        return result

    def _apply_link_faults(self, **params: float) -> dict[str, object]:
        faults = LinkFaults(**params)
        self.hub.set_faults(faults)
        return {"faults": faults.to_dict()}

    def _apply_partition(
        self, fraction: float = 0.5, symmetric: bool = True
    ) -> dict[str, object]:
        addresses = sorted(
            peer.address for peer in self.cluster.live_peers()
        )
        cut = max(1, min(len(addresses) - 1, round(len(addresses) * fraction)))
        side_a, side_b = addresses[:cut], addresses[cut:]
        self.hub.partition(side_a, side_b, symmetric=symmetric)
        return {
            "side_a": len(side_a),
            "side_b": len(side_b),
            "symmetric": symmetric,
        }

    def _apply_heal(self) -> dict[str, object]:
        self.hub.heal()
        return {}

    async def _apply_kill(
        self,
        fraction: float | None = None,
        count: int | None = None,
        mode: str = "random",
    ) -> dict[str, object]:
        live = len(self.cluster.live_peers())
        if count is None:
            count = round(live * (0.5 if fraction is None else fraction))
        victims = self.cluster.choose_victims(count, self._rng, mode=mode)
        await self.cluster.kill(victims)
        return {"mode": mode, "killed": len(victims)}

    async def _apply_restart(self) -> dict[str, object]:
        revived = await self.cluster.restart_killed()
        return {"restarted": len(revived)}

    def _apply_surge(self) -> dict[str, object]:
        woken = self.cluster.surge()
        return {"woken": len(woken)}
