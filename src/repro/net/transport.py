"""Datagram transports for the asyncio prototype.

Two interchangeable transports:

* :class:`UdpTransport` -- real UDP sockets via asyncio's datagram
  support (the deployment path);
* :class:`LoopbackHub` / :class:`LoopbackTransport` -- an in-process
  datagram fabric with injectable loss and latency, so multi-hundred
  node clusters and failure tests run deterministically without
  touching the network stack.

Both deliver ``(data, sender_address)`` to a receive callback; both are
fire-and-forget, like the UDP the paper assumes.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Callable, Hashable

__all__ = ["ReceiveHandler", "UdpTransport", "LoopbackHub", "LoopbackTransport"]

#: Signature of the receive callback: ``handler(data, sender_address)``.
ReceiveHandler = Callable[[bytes, Hashable], None]


class UdpTransport(asyncio.DatagramProtocol):
    """One UDP endpoint bound to ``(host, port)``.

    Create with :meth:`create`; send with :meth:`send`; close with
    :meth:`close`.  Addresses are ``(host, port)`` tuples, matching the
    codec's address kind 1.
    """

    def __init__(self, handler: ReceiveHandler) -> None:
        self._handler = handler
        self._transport: asyncio.DatagramTransport | None = None
        self.local_address: tuple[str, int] | None = None
        #: ICMP-reported send errors (port unreachable etc.).  The
        #: fire-and-forget semantics still ignore them, but soak runs
        #: can observe the count (matching frames_in/frames_bad style).
        self.errors_received = 0

    @classmethod
    async def create(
        cls,
        handler: ReceiveHandler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> UdpTransport:
        """Bind a datagram endpoint (port 0 = ephemeral)."""
        loop = asyncio.get_running_loop()
        protocol = cls(handler)
        transport, _ = await loop.create_datagram_endpoint(
            lambda: protocol, local_addr=(host, port)
        )
        protocol._transport = transport
        sock = transport.get_extra_info("sockname")
        protocol.local_address = (sock[0], sock[1])
        return protocol

    # -- DatagramProtocol callbacks -------------------------------------

    def connection_made(self, transport) -> None:  # pragma: no cover
        self._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self._handler(data, (addr[0], addr[1]))

    def error_received(self, exc: Exception) -> None:
        # Fire-and-forget semantics: ICMP errors do not fail anything
        # (the protocol's design assumes lossy datagrams), but they
        # are counted so failure experiments can see them.
        self.errors_received += 1

    # -- sending ---------------------------------------------------------

    def send(self, data: bytes, address: tuple[str, int]) -> None:
        """Send one datagram (no delivery guarantee, by design)."""
        if self._transport is None:
            raise RuntimeError("transport not created yet")
        self._transport.sendto(data, address)

    def close(self) -> None:
        """Release the socket."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class LoopbackHub:
    """In-process datagram fabric with loss and latency injection.

    Parameters
    ----------
    drop_probability:
        Per-datagram loss probability.
    latency:
        Callable returning a one-way delay in seconds (``None`` =
        immediate delivery on the next loop iteration).
    rng:
        Randomness for drops (and available to latency callables).
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        latency: Callable[[random.Random], float] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self._endpoints: dict[Hashable, LoopbackTransport] = {}
        self.drop_probability = drop_probability
        self._latency = latency
        self._rng = rng if rng is not None else random.Random(0)
        self.datagrams_sent = 0
        self.datagrams_dropped = 0

    def register(self, address: Hashable, endpoint: LoopbackTransport) -> None:
        """Attach an endpoint at *address*."""
        if address in self._endpoints:
            raise ValueError(f"address {address!r} already registered")
        self._endpoints[address] = endpoint

    def unregister(self, address: Hashable) -> None:
        """Detach the endpoint at *address* (crash semantics: in-flight
        datagrams to it vanish)."""
        self._endpoints.pop(address, None)

    def send(self, data: bytes, source: Hashable, target: Hashable) -> None:
        """Route one datagram through the fabric."""
        self.datagrams_sent += 1
        if self.drop_probability and self._rng.random() < self.drop_probability:
            self.datagrams_dropped += 1
            return
        loop = asyncio.get_running_loop()
        if self._latency is None:
            loop.call_soon(self._deliver, data, source, target)
        else:
            loop.call_later(
                self._latency(self._rng), self._deliver, data, source, target
            )

    def _deliver(self, data: bytes, source: Hashable, target: Hashable) -> None:
        endpoint = self._endpoints.get(target)
        if endpoint is not None:
            endpoint._receive(data, source)


class LoopbackTransport:
    """One endpoint on a :class:`LoopbackHub`."""

    def __init__(
        self,
        hub: LoopbackHub,
        address: Hashable,
        handler: ReceiveHandler,
    ) -> None:
        self._hub = hub
        self.local_address = address
        self._handler = handler
        self._closed = False
        hub.register(address, self)

    def send(self, data: bytes, address: Hashable) -> None:
        """Send one datagram through the hub."""
        if self._closed:
            raise RuntimeError("transport closed")
        self._hub.send(data, self.local_address, address)

    def close(self) -> None:
        """Detach from the hub."""
        if not self._closed:
            self._hub.unregister(self.local_address)
            self._closed = True

    def _receive(self, data: bytes, source: Hashable) -> None:
        if not self._closed:
            self._handler(data, source)
