"""A deployable peer: both gossip layers over one datagram endpoint.

:class:`AsyncPeer` is the asyncio realisation of the paper's node
stack (Figure 1's highlighted layers):

* a NEWSCAST instance gossiping on its own timer -- the persistent,
  "liquid" sampling layer;
* a bootstrap protocol instance whose ``cr`` samples come straight from
  the local NEWSCAST view, started on demand (the administrator's
  start signal) and gossiping on the protocol's Δ timer.

Both layers share one transport; frames are multiplexed by the codec's
layer field.  Everything is fire-and-forget UDP semantics: lost frames
are simply lost, which the protocol tolerates by design (Figure 4).
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Hashable, Iterable

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.descriptor import NodeDescriptor
from ..core.protocol import BootstrapNode
from ..sampling.newscast import NewscastNode
from . import codec

__all__ = ["AsyncPeer"]


class AsyncPeer:
    """One node of the deployable stack.

    Parameters
    ----------
    descriptor:
        This node's identity; its ``address`` must match the transport
        the peer is attached to.
    config:
        Bootstrap protocol parameters.  ``config.cycle_length`` is the
        bootstrap Δ in *seconds* here.
    rng:
        Peer-local randomness (selection, jitter).
    view_size:
        NEWSCAST view size.
    newscast_interval:
        NEWSCAST gossip period in seconds (the paper suggests this
        layer runs on a long, heartbeat-like period; scaled down for
        in-process experiments).
    """

    def __init__(
        self,
        descriptor: NodeDescriptor,
        config: BootstrapConfig = PAPER_CONFIG,
        *,
        rng: random.Random | None = None,
        view_size: int = 30,
        newscast_interval: float = 0.05,
    ) -> None:
        self.descriptor = descriptor
        self.config = config
        self._rng = rng if rng is not None else random.Random()
        self.newscast = NewscastNode(
            descriptor,
            random.Random(self._rng.getrandbits(64)),
            view_size=view_size,
        )
        self.bootstrap = BootstrapNode(
            descriptor,
            config,
            self.newscast,
            random.Random(self._rng.getrandbits(64)),
        )
        self._transport = None
        self._newscast_interval = newscast_interval
        self._tasks: list[asyncio.Task] = []
        self._running = False
        self.frames_in = 0
        self.frames_bad = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """This peer's overlay identifier."""
        return self.descriptor.node_id

    @property
    def address(self) -> Hashable:
        """This peer's transport address."""
        return self.descriptor.address

    def attach(self, transport) -> None:
        """Bind the peer to a transport (its receive handler must call
        :meth:`on_datagram`)."""
        self._transport = transport

    def seed(self, descriptors: Iterable[NodeDescriptor]) -> None:
        """Introduce initial contacts (the join/bootstrap list)."""
        self.newscast.seed_view(descriptors)

    # ------------------------------------------------------------------
    # Datagram dispatch
    # ------------------------------------------------------------------

    def on_datagram(self, data: bytes, source: Hashable) -> None:
        """Handle one received frame (transport receive callback)."""
        self.frames_in += 1
        try:
            wire = codec.decode_message(data)
        except codec.CodecError:
            self.frames_bad += 1
            return
        now = self._now()
        if wire.layer == codec.LAYER_NEWSCAST:
            self.newscast.set_time(now)
            if wire.is_reply:
                self.newscast.merge(wire.descriptors + (wire.sender,))
            else:
                reply = self.newscast.gossip_payload()
                self.newscast.merge(wire.descriptors + (wire.sender,))
                self._send(
                    codec.encode_message(
                        codec.LAYER_NEWSCAST,
                        1,
                        self.descriptor.refreshed(now),
                        reply,
                    ),
                    wire.sender.address,
                )
        else:
            message = codec.decode_bootstrap(wire)
            self.bootstrap.set_time(now)
            if message.is_reply:
                self.bootstrap.handle_reply(message)
            else:
                reply = self.bootstrap.handle_request(message)
                self._send(
                    codec.encode_bootstrap(reply), message.sender.address
                )

    # ------------------------------------------------------------------
    # Periodic gossip
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the NEWSCAST layer (the always-on substrate)."""
        if self._transport is None:
            raise RuntimeError("attach a transport before starting")
        if self._running:
            return
        self._running = True
        self._tasks.append(asyncio.ensure_future(self._newscast_loop()))

    def start_bootstrap(self) -> None:
        """Receive the administrator's start signal: initialise the
        bootstrap state and begin its active thread."""
        if not self._running:
            raise RuntimeError("start the peer before the bootstrap")
        self.bootstrap.set_time(self._now())
        if not self.bootstrap.started:
            self.bootstrap.start()
        self._tasks.append(asyncio.ensure_future(self._bootstrap_loop()))

    async def stop(self) -> None:
        """Cancel the gossip tasks and close the transport."""
        self._running = False
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        if self._transport is not None:
            self._transport.close()

    async def _newscast_loop(self) -> None:
        interval = self._newscast_interval
        # Uniform phase so a simultaneously-started cluster does not
        # fire in lockstep.
        await asyncio.sleep(self._rng.uniform(0, interval))
        while self._running:
            now = self._now()
            self.newscast.set_time(now)
            peer = self.newscast.select_peer()
            if peer is not None:
                frame = codec.encode_message(
                    codec.LAYER_NEWSCAST,
                    0,
                    self.descriptor.refreshed(now),
                    self.newscast.gossip_payload(),
                )
                self._send(frame, peer.address)
            await asyncio.sleep(interval)

    async def _bootstrap_loop(self) -> None:
        delta = self.config.cycle_length
        # The loosely synchronised start: first activation at a uniform
        # offset within one Δ.
        await asyncio.sleep(self._rng.uniform(0, delta))
        while self._running:
            self.bootstrap.set_time(self._now())
            begun = self.bootstrap.initiate_exchange()
            if begun is not None:
                peer, request = begun
                self._send(codec.encode_bootstrap(request), peer.address)
            await asyncio.sleep(delta)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _send(self, data: bytes, address: Hashable) -> None:
        if self._transport is not None:
            self._transport.send(data, address)

    @staticmethod
    def _now() -> float:
        return asyncio.get_event_loop().time()

    def __repr__(self) -> str:
        return (
            f"AsyncPeer(id={self.node_id:#x}, addr={self.address!r}, "
            f"running={self._running})"
        )
