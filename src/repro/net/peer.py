"""A deployable peer: both gossip layers over one datagram endpoint.

:class:`AsyncPeer` is the asyncio realisation of the paper's node
stack (Figure 1's highlighted layers):

* a NEWSCAST instance gossiping on its own timer -- the persistent,
  "liquid" sampling layer;
* a bootstrap protocol instance whose ``cr`` samples come straight from
  the local NEWSCAST view, started on demand (the administrator's
  start signal) and gossiping on the protocol's Δ timer.

Both layers share one transport; frames are multiplexed by the codec's
layer field.  The wire stays fire-and-forget UDP, which the protocol
tolerates by design (Figure 4) -- but the *active* bootstrap thread is
resilient on top of it:

* each request is retried up to :attr:`RetryPolicy.attempts` times
  with jittered exponential backoff before the exchange is abandoned;
* per-contact liveness (:class:`ContactTracker`) demotes descriptors
  that keep failing from the NEWSCAST view, and a periodic sweep
  removes entries that have gone stale (failing and unheard-from
  beyond :attr:`RetryPolicy.stale_after`);
* an exhausted exchange degrades gracefully: the peer falls back to
  one fresh NEWSCAST sample instead of spinning on a dead contact.

Crashed gossip tasks are reaped into :attr:`AsyncPeer.crashes` (never
leaked as "Task exception was never retrieved" warnings), and
:meth:`AsyncPeer.stop` awaits every cancelled task.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from collections.abc import Coroutine, Hashable, Iterable

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.descriptor import NodeDescriptor
from ..core.protocol import BootstrapNode
from ..sampling.newscast import NewscastNode
from . import codec

__all__ = ["AsyncPeer", "RetryPolicy", "ContactTracker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff and liveness parameters of the active thread.

    Attributes
    ----------
    attempts:
        Sends per exchange (first transmission included).
    base_timeout:
        Reply timeout of the first attempt, seconds.
    backoff:
        Timeout multiplier per retry (exponential backoff).
    jitter:
        Each attempt's timeout is stretched by a uniform factor in
        ``[1, 1 + jitter]`` (desynchronises retry storms).
    demote_after:
        Consecutive failed exchanges to one contact before its
        descriptor is demoted from the NEWSCAST view.
    stale_after:
        A failing contact unheard-from for this long (seconds) is
        swept from the view by the periodic staleness sweep.
    max_outstanding:
        Cap on concurrently in-flight exchanges; Δ activations beyond
        it are skipped (counted, not queued -- bounded memory under
        blackholes).
    """

    attempts: int = 3
    base_timeout: float = 0.1
    backoff: float = 2.0
    jitter: float = 0.25
    demote_after: int = 2
    stale_after: float = 2.0
    max_outstanding: int = 4

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_timeout <= 0.0:
            raise ValueError(
                f"base_timeout must be > 0, got {self.base_timeout}"
            )
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.demote_after < 1:
            raise ValueError(
                f"demote_after must be >= 1, got {self.demote_after}"
            )
        if self.stale_after <= 0.0:
            raise ValueError(
                f"stale_after must be > 0, got {self.stale_after}"
            )
        if self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )

    def timeout_for(self, attempt: int, rng: random.Random) -> float:
        """The reply timeout of zero-based *attempt*, jittered."""
        timeout = self.base_timeout * self.backoff**attempt
        if self.jitter:
            timeout *= 1.0 + self.jitter * rng.random()
        return timeout

    @classmethod
    def for_config(cls, config: BootstrapConfig) -> RetryPolicy:
        """Defaults scaled to the protocol's Δ: a reply is expected
        well within one cycle, so the first timeout is ``2Δ`` and a
        contact is stale after ``40Δ``."""
        delta = config.cycle_length
        return cls(base_timeout=2.0 * delta, stale_after=40.0 * delta)


class ContactTracker:
    """Per-contact liveness bookkeeping, keyed by transport address.

    Heard-from times come from every decoded frame; failures from
    exhausted exchange retries.  A success clears the failure streak
    (the contact proved live again).
    """

    __slots__ = ("_last_heard", "_failures")

    def __init__(self) -> None:
        self._last_heard: dict[Hashable, float] = {}
        self._failures: dict[Hashable, int] = {}

    def note_heard(self, address: Hashable, now: float) -> None:
        """Record an inbound frame from *address* at *now*."""
        self._last_heard[address] = now
        self._failures.pop(address, None)

    def note_failure(self, address: Hashable) -> int:
        """Record one exhausted exchange; returns the failure streak."""
        streak = self._failures.get(address, 0) + 1
        self._failures[address] = streak
        return streak

    def failures(self, address: Hashable) -> int:
        """Current consecutive-failure streak of *address*."""
        return self._failures.get(address, 0)

    def last_heard(self, address: Hashable) -> float | None:
        """When *address* was last heard from (``None`` = never)."""
        return self._last_heard.get(address)

    def forget(self, address: Hashable) -> None:
        """Drop all state for *address* (descriptor was demoted)."""
        self._last_heard.pop(address, None)
        self._failures.pop(address, None)

    def is_stale(self, address: Hashable, now: float, ttl: float) -> bool:
        """Whether *address* is failing and unheard-from beyond *ttl*."""
        if not self._failures.get(address, 0):
            return False
        heard = self._last_heard.get(address)
        return heard is None or now - heard > ttl


class AsyncPeer:
    """One node of the deployable stack.

    Parameters
    ----------
    descriptor:
        This node's identity; its ``address`` must match the transport
        the peer is attached to.
    config:
        Bootstrap protocol parameters.  ``config.cycle_length`` is the
        bootstrap Δ in *seconds* here.
    rng:
        Peer-local randomness (selection, jitter).
    view_size:
        NEWSCAST view size.
    newscast_interval:
        NEWSCAST gossip period in seconds (the paper suggests this
        layer runs on a long, heartbeat-like period; scaled down for
        in-process experiments).
    retry:
        Retry/backoff and liveness parameters of the active thread
        (default: :meth:`RetryPolicy.for_config` scaled to Δ).
    """

    def __init__(
        self,
        descriptor: NodeDescriptor,
        config: BootstrapConfig = PAPER_CONFIG,
        *,
        rng: random.Random | None = None,
        view_size: int = 30,
        newscast_interval: float = 0.05,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.descriptor = descriptor
        self.config = config
        self._rng = rng if rng is not None else random.Random()
        self.newscast = NewscastNode(
            descriptor,
            random.Random(self._rng.getrandbits(64)),
            view_size=view_size,
        )
        self.bootstrap = BootstrapNode(
            descriptor,
            config,
            self.newscast,
            random.Random(self._rng.getrandbits(64)),
        )
        self.retry = retry if retry is not None else RetryPolicy.for_config(
            config
        )
        self._transport = None
        self._newscast_interval = newscast_interval
        self._tasks: set[asyncio.Task] = set()
        self._exchanges: set[asyncio.Task] = set()
        self._pending: dict[Hashable, list[asyncio.Future]] = {}
        self._contacts = ContactTracker()
        self._running = False
        self.frames_in = 0
        self.frames_bad = 0
        self.retries_sent = 0
        self.exchanges_ok = 0
        self.exchanges_failed = 0
        self.exchange_skips = 0
        self.fallback_exchanges = 0
        self.stale_demotions = 0
        self.bootstrap_stalls = 0
        #: Unexpected exceptions reaped from gossip tasks (surfaced
        #: here instead of leaking as unretrieved-task warnings).
        self.crashes: list[BaseException] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """This peer's overlay identifier."""
        return self.descriptor.node_id

    @property
    def address(self) -> Hashable:
        """This peer's transport address."""
        return self.descriptor.address

    @property
    def contacts(self) -> ContactTracker:
        """Per-contact liveness state (read-mostly; for tests/reports)."""
        return self._contacts

    def attach(self, transport) -> None:
        """Bind the peer to a transport (its receive handler must call
        :meth:`on_datagram`)."""
        self._transport = transport

    def seed(self, descriptors: Iterable[NodeDescriptor]) -> None:
        """Introduce initial contacts (the join/bootstrap list)."""
        self.newscast.seed_view(descriptors)

    def resilience_snapshot(self) -> dict[str, int]:
        """The resilience counters as a plain dict (for reports)."""
        return {
            "frames_in": self.frames_in,
            "frames_bad": self.frames_bad,
            "retries_sent": self.retries_sent,
            "exchanges_ok": self.exchanges_ok,
            "exchanges_failed": self.exchanges_failed,
            "exchange_skips": self.exchange_skips,
            "fallback_exchanges": self.fallback_exchanges,
            "stale_demotions": self.stale_demotions,
            "bootstrap_stalls": self.bootstrap_stalls,
            "crashes": len(self.crashes),
        }

    # ------------------------------------------------------------------
    # Datagram dispatch
    # ------------------------------------------------------------------

    def on_datagram(self, data: bytes, source: Hashable) -> None:
        """Handle one received frame (transport receive callback).

        Any :class:`~repro.net.codec.CodecError` -- a malformed frame
        *or* a well-framed message with a malformed bootstrap payload
        -- is counted in :attr:`frames_bad` and dropped; a hostile
        datagram must never kill the receive path.
        """
        self.frames_in += 1
        try:
            wire = codec.decode_message(data)
        except codec.CodecError:
            self.frames_bad += 1
            return
        now = self._now()
        self._contacts.note_heard(wire.sender.address, now)
        if wire.layer == codec.LAYER_NEWSCAST:
            self.newscast.set_time(now)
            if wire.is_reply:
                self.newscast.merge(wire.descriptors + (wire.sender,))
            else:
                reply = self.newscast.gossip_payload()
                self.newscast.merge(wire.descriptors + (wire.sender,))
                self._send(
                    codec.encode_message(
                        codec.LAYER_NEWSCAST,
                        1,
                        self.descriptor.refreshed(now),
                        reply,
                    ),
                    wire.sender.address,
                )
        else:
            try:
                message = codec.decode_bootstrap(wire)
            except codec.CodecError:
                self.frames_bad += 1
                return
            self.bootstrap.set_time(now)
            if message.is_reply:
                self.bootstrap.handle_reply(message)
                self._resolve_pending(message.sender.address)
            else:
                reply = self.bootstrap.handle_request(message)
                self._send(
                    codec.encode_bootstrap(reply), message.sender.address
                )

    def _resolve_pending(self, address: Hashable) -> None:
        """Wake the oldest exchange awaiting a reply from *address*."""
        waiters = self._pending.get(address)
        if not waiters:
            return
        future = waiters.pop(0)
        if not waiters:
            del self._pending[address]
        if not future.done():
            future.set_result(True)

    # ------------------------------------------------------------------
    # Periodic gossip
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the NEWSCAST layer (the always-on substrate)."""
        if self._transport is None:
            raise RuntimeError("attach a transport before starting")
        if self._running:
            return
        self._running = True
        self._spawn(self._newscast_loop())

    def start_bootstrap(self) -> None:
        """Receive the administrator's start signal: initialise the
        bootstrap state and begin its active thread."""
        if not self._running:
            raise RuntimeError("start the peer before the bootstrap")
        self.bootstrap.set_time(self._now())
        if not self.bootstrap.started:
            self.bootstrap.start()
        self._spawn(self._bootstrap_loop())

    async def stop(self) -> None:
        """Cancel the gossip tasks, await them (exceptions are reaped
        into :attr:`crashes`, never leaked), and close the transport."""
        self._running = False
        tasks = [*self._tasks, *self._exchanges]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()
        self._exchanges.clear()
        self._pending.clear()
        if self._transport is not None:
            self._transport.close()

    def _spawn(
        self, coro: Coroutine, *, exchange: bool = False
    ) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        (self._exchanges if exchange else self._tasks).add(task)
        task.add_done_callback(self._reap)
        return task

    def _reap(self, task: asyncio.Task) -> None:
        """Done-callback of every gossip task: collect its exception
        (if any) so nothing dies silently."""
        self._tasks.discard(task)
        self._exchanges.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.crashes.append(exc)

    async def _newscast_loop(self) -> None:
        interval = self._newscast_interval
        # Uniform phase so a simultaneously-started cluster does not
        # fire in lockstep.
        await asyncio.sleep(self._rng.uniform(0, interval))
        while self._running:
            now = self._now()
            self.newscast.set_time(now)
            self._demote_stale(now)
            peer = self.newscast.select_peer()
            if peer is not None:
                frame = codec.encode_message(
                    codec.LAYER_NEWSCAST,
                    0,
                    self.descriptor.refreshed(now),
                    self.newscast.gossip_payload(),
                )
                self._send(frame, peer.address)
            await asyncio.sleep(interval)

    async def _bootstrap_loop(self) -> None:
        delta = self.config.cycle_length
        # The loosely synchronised start: first activation at a uniform
        # offset within one Δ.
        await asyncio.sleep(self._rng.uniform(0, delta))
        while self._running:
            self.bootstrap.set_time(self._now())
            begun = self.bootstrap.initiate_exchange()
            if begun is not None:
                if len(self._exchanges) < self.retry.max_outstanding:
                    peer, request = begun
                    self._spawn(
                        self._exchange(peer, request), exchange=True
                    )
                else:
                    self.exchange_skips += 1
            await asyncio.sleep(delta)

    # ------------------------------------------------------------------
    # Resilient exchanges
    # ------------------------------------------------------------------

    async def _exchange(self, peer: NodeDescriptor, request) -> None:
        """One active-thread exchange: request with retries, then --
        if the contact is demoted -- one fallback to a fresh sample."""
        frame = codec.encode_bootstrap(request)
        if await self._request_with_retry(peer.address, frame):
            self.exchanges_ok += 1
            return
        self.exchanges_failed += 1
        if self._note_exchange_failure(peer):
            await self._fallback_exchange(exclude=peer.node_id)

    async def _request_with_retry(
        self,
        address: Hashable,
        frame: bytes,
        attempts: int | None = None,
    ) -> bool:
        """Send *frame* to *address*, retrying with jittered
        exponential backoff; ``True`` when a reply arrived in time."""
        policy = self.retry
        attempts = policy.attempts if attempts is None else attempts
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.setdefault(address, []).append(future)
        try:
            for attempt in range(attempts):
                if attempt:
                    self.retries_sent += 1
                self._send(frame, address)
                timeout = policy.timeout_for(attempt, self._rng)
                try:
                    await asyncio.wait_for(
                        asyncio.shield(future), timeout
                    )
                except asyncio.TimeoutError:
                    continue
                return True
            return False
        finally:
            waiters = self._pending.get(address)
            if waiters and future in waiters:
                waiters.remove(future)
                if not waiters:
                    del self._pending[address]

    def _note_exchange_failure(self, peer: NodeDescriptor) -> bool:
        """Record an exhausted exchange; demote the contact from the
        NEWSCAST view once its streak reaches ``demote_after``.
        Returns whether the contact was demoted (fallback trigger)."""
        streak = self._contacts.note_failure(peer.address)
        if streak < self.retry.demote_after:
            return False
        if self.newscast.view.remove(peer.node_id):
            self.stale_demotions += 1
        self._contacts.forget(peer.address)
        return True

    async def _fallback_exchange(self, exclude: int) -> None:
        """Graceful degradation: after a contact is demoted, try one
        single-attempt exchange with a fresh NEWSCAST sample instead
        of spinning on the dead contact."""
        candidates = [
            desc
            for desc in self.newscast.sample(3)
            if desc.node_id not in (exclude, self.node_id)
        ]
        if not candidates or not self._running:
            self.bootstrap_stalls += 1
            return
        peer = candidates[0]
        request = self.bootstrap.initiate_exchange_with(peer)
        self.fallback_exchanges += 1
        if await self._request_with_retry(
            peer.address, codec.encode_bootstrap(request), attempts=1
        ):
            self.exchanges_ok += 1

    def _demote_stale(self, now: float) -> None:
        """Sweep the NEWSCAST view: drop descriptors whose contact is
        failing and unheard-from beyond the staleness TTL."""
        ttl = self.retry.stale_after
        for desc in self.newscast.view.descriptors():
            if self._contacts.is_stale(desc.address, now, ttl):
                if self.newscast.view.remove(desc.node_id):
                    self.stale_demotions += 1
                self._contacts.forget(desc.address)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _send(self, data: bytes, address: Hashable) -> None:
        if self._transport is not None:
            self._transport.send(data, address)

    @staticmethod
    def _now() -> float:
        return asyncio.get_event_loop().time()

    def __repr__(self) -> str:
        return (
            f"AsyncPeer(id={self.node_id:#x}, addr={self.address!r}, "
            f"running={self._running})"
        )
