"""Deployable asyncio/UDP prototype of the paper's node stack.

A compact but real implementation: binary wire codec, UDP and loopback
datagram transports, a peer running both gossip layers over one socket,
and a cluster fixture that walks the paper's deployment story end to
end (sampling warm-up -> start broadcast -> convergence).
"""

from .codec import (
    CodecError,
    LAYER_BOOTSTRAP,
    LAYER_NEWSCAST,
    WireMessage,
    decode_bootstrap,
    decode_message,
    encode_bootstrap,
    encode_message,
)
from .chaos import (
    CHAOS_EVENT_KINDS,
    ChaosController,
    ChaosEvent,
    ChaosHub,
    ChaosSchedule,
    LinkFaults,
    VirtualClockLoop,
    run_virtual,
)
from .cluster import LocalCluster
from .peer import AsyncPeer, ContactTracker, RetryPolicy
from .transport import LoopbackHub, LoopbackTransport, UdpTransport

__all__ = [
    "CodecError",
    "LAYER_BOOTSTRAP",
    "LAYER_NEWSCAST",
    "WireMessage",
    "decode_bootstrap",
    "decode_message",
    "encode_bootstrap",
    "encode_message",
    "CHAOS_EVENT_KINDS",
    "ChaosController",
    "ChaosEvent",
    "ChaosHub",
    "ChaosSchedule",
    "LinkFaults",
    "VirtualClockLoop",
    "run_virtual",
    "LocalCluster",
    "AsyncPeer",
    "ContactTracker",
    "RetryPolicy",
    "LoopbackHub",
    "LoopbackTransport",
    "UdpTransport",
]
