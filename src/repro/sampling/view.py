"""Bounded partial views for gossip membership protocols.

NEWSCAST's node state is a small set of node descriptors ("approximately
30 IP addresses, along with the ports, timestamps, and descriptors such
as node IDs") from which it keeps "a fixed number of freshest addresses
(based on timestamps)" after every exchange.  :class:`PartialView`
implements that bounded freshest-first container.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator

from ..core.descriptor import NodeDescriptor

__all__ = ["PartialView"]


class PartialView:
    """Fixed-capacity descriptor cache keeping the freshest per node.

    Parameters
    ----------
    owner_id:
        Identifier of the owning node; its own descriptor is never
        stored (a node need not sample itself).
    capacity:
        Maximum number of descriptors retained (NEWSCAST's view size).
    """

    __slots__ = ("_owner_id", "_capacity", "_entries")

    def __init__(self, owner_id: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"view capacity must be >= 1, got {capacity}")
        self._owner_id = owner_id
        self._capacity = capacity
        self._entries: dict[int, NodeDescriptor] = {}

    @property
    def capacity(self) -> int:
        """Maximum number of descriptors retained."""
        return self._capacity

    @property
    def owner_id(self) -> int:
        """Identifier of the owning node."""
        return self._owner_id

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __iter__(self) -> Iterator[NodeDescriptor]:
        return iter(self._entries.values())

    def descriptors(self) -> list[NodeDescriptor]:
        """All retained descriptors (order unspecified but stable)."""
        return list(self._entries.values())

    def member_ids(self) -> set[int]:
        """Identifiers currently in the view (fresh set)."""
        return set(self._entries)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def remove(self, node_id: int) -> bool:
        """Forget *node_id*; returns whether it was present."""
        return self._entries.pop(node_id, None) is not None

    # ------------------------------------------------------------------
    # The NEWSCAST merge rule
    # ------------------------------------------------------------------

    def merge(self, descriptors: Iterable[NodeDescriptor]) -> None:
        """Fold *descriptors* into the view, keeping the ``capacity``
        freshest entries (one per node, freshest timestamp wins)."""
        entries = self._entries
        owner = self._owner_id
        for desc in descriptors:
            if desc.node_id == owner:
                continue
            current = entries.get(desc.node_id)
            if current is None or desc.timestamp > current.timestamp:
                entries[desc.node_id] = desc
        if len(entries) > self._capacity:
            # Keep the freshest `capacity` entries; ties broken by id so
            # the outcome is deterministic for deterministic inputs.
            survivors = sorted(
                entries.values(), key=lambda d: (-d.timestamp, d.node_id)
            )[: self._capacity]
            self._entries = {d.node_id: d for d in survivors}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def random_descriptor(
        self, rng: random.Random
    ) -> NodeDescriptor | None:
        """A uniform random entry, or ``None`` when empty."""
        if not self._entries:
            return None
        return rng.choice(list(self._entries.values()))

    def random_sample(
        self, count: int, rng: random.Random
    ) -> list[NodeDescriptor]:
        """Up to *count* distinct uniform random entries."""
        if count <= 0 or not self._entries:
            return []
        pool = list(self._entries.values())
        if count >= len(pool):
            return pool
        return rng.sample(pool, count)

    def oldest(self) -> NodeDescriptor | None:
        """The stalest entry (smallest timestamp); ``None`` when empty.

        Not used by plain NEWSCAST but handy for healing policies and
        tests that reason about freshness."""
        if not self._entries:
            return None
        return min(self._entries.values(), key=lambda d: (d.timestamp, d.node_id))

    def __repr__(self) -> str:
        return (
            f"PartialView(owner={self._owner_id:#x}, "
            f"{len(self._entries)}/{self._capacity})"
        )
