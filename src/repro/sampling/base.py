"""The peer sampling service abstraction (paper Section 3).

"The purpose of this layer is to provide random peer addresses from the
set of participating nodes.  In addition, the layer implicitly defines
membership as being the pool from which the samples are drawn."

Two implementations ship with the library:

* :class:`~repro.sampling.newscast.NewscastNode` -- the gossip protocol
  the paper instantiates the service with;
* :class:`~repro.sampling.oracle.OracleSampler` -- an idealised uniform
  sampler over a membership registry, for controlled experiments (the
  paper's simulations assume "a network where the sampling service is
  already functional", which the oracle models exactly).

Both satisfy :class:`repro.core.protocol.Sampler` structurally; this
module adds the nominal ABC for implementations that want explicit
typing, plus shared helpers.
"""

from __future__ import annotations

import abc

from ..core.descriptor import NodeDescriptor

__all__ = ["PeerSamplingService"]


class PeerSamplingService(abc.ABC):
    """Abstract base for peer sampling service endpoints.

    An *endpoint* is the node-local interface: each node owns one, and
    samples are drawn from that node's perspective (never including the
    node itself).
    """

    @abc.abstractmethod
    def sample(self, count: int) -> list[NodeDescriptor]:
        """Return up to *count* descriptors of random live peers.

        Implementations must not return duplicates of the same node id
        within one call, and must never return the owner's descriptor.
        Fewer than *count* descriptors may be returned when the
        underlying view or membership is small.
        """

    def sample_one(self) -> NodeDescriptor | None:
        """Convenience: a single sample, or ``None`` when unavailable."""
        out = self.sample(1)
        return out[0] if out else None
