"""The peer sampling service layer (paper Section 3).

The bottom, "liquid" layer of the paper's architecture: provides random
peer addresses from the participating pool and implicitly defines
membership.  Ships NEWSCAST (the paper's instantiation) and an
idealised oracle sampler for controlled experiments.
"""

from .base import PeerSamplingService
from .newscast import DEFAULT_VIEW_SIZE, NewscastNode
from .oracle import MembershipRegistry, OracleSampler
from .view import PartialView

__all__ = [
    "PeerSamplingService",
    "NewscastNode",
    "DEFAULT_VIEW_SIZE",
    "MembershipRegistry",
    "OracleSampler",
    "PartialView",
]
