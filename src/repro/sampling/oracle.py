"""Idealised peer sampling over a global membership registry.

The paper's bootstrap experiments "assume that we are given a network
where the sampling service is already functional".  The oracle sampler
models that assumption exactly: uniform samples without replacement from
the true live membership.  Using it isolates the bootstrapping
protocol's behaviour from sampling-layer noise; swapping in real
NEWSCAST (supported by the simulators) quantifies how little the
difference matters.

:class:`MembershipRegistry` is the shared "ground truth" the simulators
mutate under churn and catastrophic failures; every
:class:`OracleSampler` endpoint references it.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from ..core.descriptor import NodeDescriptor
from .base import PeerSamplingService

__all__ = ["MembershipRegistry", "OracleSampler"]


class MembershipRegistry:
    """Mutable set of live node descriptors with O(1) uniform sampling.

    Maintains a dense list plus an id->position index so that removal
    is swap-with-last, keeping :meth:`sample_descriptors` allocation-free
    apart from the result list.
    """

    __slots__ = ("_descriptors", "_positions")

    def __init__(
        self, descriptors: Iterable[NodeDescriptor] | None = None
    ) -> None:
        self._descriptors: list[NodeDescriptor] = []
        self._positions: dict[int, int] = {}
        if descriptors:
            for desc in descriptors:
                self.add(desc)

    def __len__(self) -> int:
        return len(self._descriptors)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._positions

    def live_ids(self) -> list[int]:
        """Identifiers of all live nodes (fresh list)."""
        return list(self._positions)

    def descriptors(self) -> list[NodeDescriptor]:
        """All live descriptors (fresh list)."""
        return list(self._descriptors)

    def get(self, node_id: int) -> NodeDescriptor | None:
        """Descriptor of *node_id* if live, else ``None``."""
        pos = self._positions.get(node_id)
        return self._descriptors[pos] if pos is not None else None

    def add(self, desc: NodeDescriptor) -> bool:
        """Register *desc* as live; returns ``False`` if already present
        (the stored descriptor is then left unchanged)."""
        if desc.node_id in self._positions:
            return False
        self._positions[desc.node_id] = len(self._descriptors)
        self._descriptors.append(desc)
        return True

    def remove(self, node_id: int) -> bool:
        """Deregister *node_id*; returns whether it was live."""
        pos = self._positions.pop(node_id, None)
        if pos is None:
            return False
        last = self._descriptors.pop()
        if pos < len(self._descriptors):
            self._descriptors[pos] = last
            self._positions[last.node_id] = pos
        return True

    def sample_descriptors(
        self, count: int, rng: random.Random, exclude_id: int | None = None
    ) -> list[NodeDescriptor]:
        """Up to *count* distinct uniform live descriptors, optionally
        excluding one identifier (the caller itself)."""
        pool = self._descriptors
        n = len(pool)
        if count <= 0 or n == 0:
            return []
        exclude_present = exclude_id is not None and exclude_id in self._positions
        available = n - (1 if exclude_present else 0)
        if available <= 0:
            return []
        if count >= available:
            return [d for d in pool if d.node_id != exclude_id]
        out: list[NodeDescriptor] = []
        seen = set()
        # Rejection sampling: count << n in every realistic configuration
        # (cr=30 versus thousands of nodes), so this stays O(count).
        while len(out) < count:
            idx = rng.randrange(n)
            if idx in seen:
                continue
            desc = pool[idx]
            if desc.node_id == exclude_id:
                continue
            seen.add(idx)
            out.append(desc)
        return out


class OracleSampler(PeerSamplingService):
    """Per-node endpoint of the idealised sampling service.

    Parameters
    ----------
    registry:
        The shared live-membership ground truth.
    own_id:
        Identifier of the owning node (never returned in samples).
    rng:
        Source of sampling randomness.
    """

    __slots__ = ("_registry", "_own_id", "_rng")

    def __init__(
        self,
        registry: MembershipRegistry,
        own_id: int,
        rng: random.Random,
    ) -> None:
        self._registry = registry
        self._own_id = own_id
        self._rng = rng

    def sample(self, count: int) -> list[NodeDescriptor]:
        """Uniform random live peers, excluding the owner."""
        return self._registry.sample_descriptors(
            count, self._rng, exclude_id=self._own_id
        )

    def __repr__(self) -> str:
        return (
            f"OracleSampler(own={self._own_id:#x}, "
            f"pool={len(self._registry)})"
        )
