"""NEWSCAST: the paper's instantiation of the peer sampling service.

Section 3: "each node periodically sends a small, locally available
random set of node addresses to a member of this random set.  After
receiving such a message, the node keeps a fixed number of freshest
addresses (based on timestamps)."

The exchange is symmetric (the contacted peer answers with its own view)
and cheap: one small UDP message per node per interval.  The properties
the paper relies on -- self-healing after catastrophic failure and fast
randomisation of non-random initial views -- are exercised by the E8
benchmark and the property tests.

:class:`NewscastNode` is engine-agnostic like the bootstrap protocol:
it exposes pure transitions (payload construction / merge) and the
simulators drive the exchanges.  Its :meth:`NewscastNode.sample` method
satisfies :class:`repro.core.protocol.Sampler`, so a running NEWSCAST
layer can directly feed the bootstrapping service, exactly as in the
paper's architecture (Figure 1).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from ..core.descriptor import NodeDescriptor
from .base import PeerSamplingService
from .view import PartialView

__all__ = ["NewscastNode", "DEFAULT_VIEW_SIZE"]

#: "approximately 30 IP addresses" (paper Section 3).
DEFAULT_VIEW_SIZE = 30


class NewscastNode(PeerSamplingService):
    """Node-local NEWSCAST state machine.

    Parameters
    ----------
    descriptor:
        This node's own descriptor.
    rng:
        Source of peer-selection randomness.
    view_size:
        Number of freshest descriptors retained after an exchange.
    """

    __slots__ = ("descriptor", "view", "_rng", "_now")

    def __init__(
        self,
        descriptor: NodeDescriptor,
        rng: random.Random,
        view_size: int = DEFAULT_VIEW_SIZE,
    ) -> None:
        self.descriptor = descriptor
        self.view = PartialView(descriptor.node_id, view_size)
        self._rng = rng
        self._now = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """This node's overlay identifier."""
        return self.descriptor.node_id

    def set_time(self, now: float) -> None:
        """Advance logical time (stamps this node's advertisements)."""
        self._now = now

    def seed_view(self, descriptors: Iterable[NodeDescriptor]) -> None:
        """Initialise the view (join: copy a contact's view, or any
        non-random bootstrap set -- NEWSCAST randomises it quickly)."""
        self.view.merge(descriptors)

    # ------------------------------------------------------------------
    # The gossip exchange
    # ------------------------------------------------------------------

    def select_peer(self) -> NodeDescriptor | None:
        """Uniform random member of the current view."""
        return self.view.random_descriptor(self._rng)

    def gossip_payload(self) -> tuple[NodeDescriptor, ...]:
        """The descriptors sent in one gossip message: the whole view
        plus this node's own freshly-stamped descriptor."""
        own = self.descriptor.refreshed(self._now)
        return tuple(self.view.descriptors()) + (own,)

    def merge(self, payload: Iterable[NodeDescriptor]) -> None:
        """Apply a received gossip payload: keep the freshest
        ``view_size`` descriptors of the union."""
        self.view.merge(payload)

    def exchange_with(self, other: NewscastNode) -> None:
        """Run one full symmetric exchange with *other* in-process.

        Both payloads are built from the pre-exchange views, mirroring
        a real request/answer pair; convenience for tests and the
        cycle simulator's reliable path.
        """
        mine = self.gossip_payload()
        theirs = other.gossip_payload()
        other.merge(mine)
        self.merge(theirs)

    # ------------------------------------------------------------------
    # PeerSamplingService
    # ------------------------------------------------------------------

    def sample(self, count: int) -> list[NodeDescriptor]:
        """Random descriptors drawn from the local view.

        NEWSCAST's central experimental finding (Jelasity et al. 2004)
        is that view entries are a good approximation of uniform random
        live peers; this is what makes the bootstrap's ``cr`` samples
        "free".
        """
        return self.view.random_sample(count, self._rng)

    def __repr__(self) -> str:
        return (
            f"NewscastNode(id={self.node_id:#x}, view={len(self.view)}/"
            f"{self.view.capacity})"
        )
