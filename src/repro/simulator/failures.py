"""Failure, churn, and membership-event schedules.

The paper's motivating scenarios (Section 1) are exactly membership
*events*: massive joins, massive departures, bootstrapping from scratch,
merging networks, splitting networks, catastrophic failure.  These
schedule objects inject such events into a running
:class:`~repro.simulator.bootstrap_sim.BootstrapSimulation`; each is
applied at the start of every cycle and decides internally whether it
has anything to do.

All schedules draw their randomness from the simulation's seed tree, so
runs remain reproducible.
"""

from __future__ import annotations

import random
from typing import Protocol

from .random_source import RandomSource

__all__ = [
    "FailureSchedule",
    "CatastrophicFailure",
    "Churn",
    "MassiveJoin",
]


class FailureSchedule(Protocol):
    """Anything that can mutate a simulation between cycles."""

    def apply(self, sim, cycle: int) -> None:
        """Inject this schedule's events for *cycle* (may be a no-op)."""
        ...


class CatastrophicFailure:
    """Kill a fraction of the network at one instant.

    Section 3 claims the sampling layer survives "up to 70% nodes may
    fail"; applying this schedule mid-bootstrap tests how the
    bootstrapping service copes with losing most of the pool and having
    to converge to the survivors' perfect tables.

    Parameters
    ----------
    at_cycle:
        Cycle index immediately before which the failure strikes.
    fraction:
        Share of live nodes killed, in ``[0, 1)``.
    """

    def __init__(self, at_cycle: int, fraction: float) -> None:
        if at_cycle < 0:
            raise ValueError(f"at_cycle must be >= 0, got {at_cycle}")
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        self.at_cycle = at_cycle
        self.fraction = fraction
        self.killed: list[int] = []

    def apply(self, sim, cycle: int) -> None:
        """Kill the configured fraction at the trigger cycle (once)."""
        if cycle != self.at_cycle or self.killed:
            return
        rng = RandomSource(sim.seed).derive(
            ("catastrophe", self.at_cycle)
        )
        victims_count = int(sim.population * self.fraction)
        victims = rng.sample(sim.live_ids, victims_count)
        for node_id in victims:
            sim.kill_node(node_id)
        self.killed = victims


class Churn:
    """Continuous membership turnover.

    Every cycle in ``[start_cycle, end_cycle)``, a Poisson-like number
    of nodes leave (crash, no goodbye) and the same expected number of
    fresh nodes join, keeping the population roughly stationary -- the
    classic churn model.  Rates are fractions of the current population
    per cycle.

    Parameters
    ----------
    rate:
        Expected fraction of nodes replaced per cycle (e.g. 0.01 = 1%).
    start_cycle / end_cycle:
        Active window; ``end_cycle=None`` means forever.
    """

    def __init__(
        self,
        rate: float,
        start_cycle: int = 0,
        end_cycle: int | None = None,
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = rate
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self.departures = 0
        self.arrivals = 0

    def apply(self, sim, cycle: int) -> None:
        """Replace the expected fraction of nodes for this cycle."""
        if cycle < self.start_cycle:
            return
        if self.end_cycle is not None and cycle >= self.end_cycle:
            return
        if self.rate == 0:
            return
        rng = RandomSource(sim.seed).derive(("churn", cycle))
        expected = sim.population * self.rate
        count = self._integer_draw(expected, rng)
        count = min(count, max(0, sim.population - 2))
        victims = rng.sample(sim.live_ids, count)
        for node_id in victims:
            sim.kill_node(node_id)
        for _ in range(count):
            sim.spawn_node()
        self.departures += count
        self.arrivals += count

    @staticmethod
    def _integer_draw(expected: float, rng: random.Random) -> int:
        """Integer with the given expectation: floor plus a Bernoulli
        on the fractional part."""
        base = int(expected)
        if rng.random() < expected - base:
            base += 1
        return base


class MassiveJoin:
    """A burst of simultaneous joins (the under-supported scenario the
    paper opens with).

    Parameters
    ----------
    at_cycle:
        Cycle index immediately before which the newcomers arrive.
    count:
        Number of joining nodes.
    """

    def __init__(self, at_cycle: int, count: int) -> None:
        if at_cycle < 0:
            raise ValueError(f"at_cycle must be >= 0, got {at_cycle}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.at_cycle = at_cycle
        self.count = count
        self.joined: list[int] = []

    def apply(self, sim, cycle: int) -> None:
        """Admit the configured burst at the trigger cycle (once)."""
        if cycle != self.at_cycle or self.joined:
            return
        for _ in range(self.count):
            node = sim.spawn_node()
            self.joined.append(node.node_id)
