"""Cycle-driven simulation engine (the PeerSim-equivalent substrate).

The paper's experiments ran on PeerSim's cycle-based mode: time is a
sequence of intervals of length ``Δ`` ("for convenience, we call the
consecutive intervals of length Δ cycles"), and within a cycle every
node performs one active protocol step, in random order (which models
the "different random time within an interval of length Δ" start and
the subsequent de-synchronised periods).

Both gossip protocols in this library -- NEWSCAST and the bootstrapping
service -- are request/answer exchanges, so the engine drives a single
abstraction, :class:`RequestReplyActor`, and applies the message-loss
model with the paper's coupling (a dropped request suppresses the
answer).

The engine knows nothing about identifiers beyond using them as
directory keys, and nothing about payloads at all.
"""

from __future__ import annotations

import random
from collections.abc import Hashable
from typing import Generic, TypeVar

from .network import NetworkModel, TransportStats

__all__ = ["RequestReplyActor", "CycleEngine"]

Payload = TypeVar("Payload")


class RequestReplyActor(Generic[Payload]):
    """One protocol endpoint driven by the cycle engine.

    Subclasses adapt a concrete protocol object (a
    :class:`~repro.core.protocol.BootstrapNode`, a
    :class:`~repro.sampling.newscast.NewscastNode`, ...) to the engine's
    three-phase exchange.

    The empty ``__slots__`` keeps concrete actors dict-free when they
    declare their own slots (a population is one actor per node, so the
    per-instance dict would cost real memory at scale); subclasses that
    don't declare ``__slots__`` still get a ``__dict__`` as usual.
    """

    __slots__ = ()

    def set_time(self, now: float) -> None:
        """Advance the actor's logical clock (start of every cycle)."""

    def begin_exchange(self) -> tuple[Hashable, Payload] | None:
        """Active-thread step: pick a partner and build the request.

        Returns ``(target_key, request)`` or ``None`` to skip this
        cycle.
        """
        raise NotImplementedError

    def answer(self, request: Payload) -> Payload | None:
        """Passive-thread step: build the answer (from pre-exchange
        state), then apply the request.  ``None`` means no answer."""
        raise NotImplementedError

    def complete(self, reply: Payload) -> None:
        """Active-thread completion: apply the received answer."""
        raise NotImplementedError

    def on_no_reply(self, target_key: Hashable) -> None:
        """Timeout notification: the exchange this actor initiated with
        *target_key* produced no answer (request lost, answer lost, or
        the target is gone -- indistinguishable over UDP).

        Default: ignore, which is exactly the bootstrap protocol's
        behaviour.  Maintenance protocols override this to drive
        failure suspicion.
        """


class CycleEngine:
    """Runs one :class:`RequestReplyActor` population cycle by cycle.

    Parameters
    ----------
    network:
        Loss model applied to every request and answer.
    rng:
        Drives the per-cycle activation order and the drop decisions.
    stats:
        Optional shared :class:`TransportStats`; one is created when
        omitted.
    """

    __slots__ = (
        "network",
        "stats",
        "_rng",
        "_directory",
        "_cycle",
        "_order",
        "_scratch",
        "_members_dirty",
    )

    def __init__(
        self,
        network: NetworkModel,
        rng: random.Random,
        stats: TransportStats | None = None,
    ) -> None:
        self.network = network
        self.stats = stats if stats is not None else TransportStats()
        self._rng = rng
        self._directory: dict[Hashable, RequestReplyActor] = {}
        self._cycle = 0
        # Reusable activation-order buffers: `_order` mirrors the
        # directory's insertion order and is rebuilt only when
        # membership changes; `_scratch` is the per-cycle shuffle
        # target, so steady-state cycles allocate no new lists.
        self._order: list[Hashable] = []
        self._scratch: list[Hashable] = []
        self._members_dirty = False

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._cycle

    @property
    def population(self) -> int:
        """Number of registered actors."""
        return len(self._directory)

    def actors(self) -> list[RequestReplyActor]:
        """All registered actors (fresh list)."""
        return list(self._directory.values())

    def add_actor(self, key: Hashable, actor: RequestReplyActor) -> None:
        """Register *actor* under *key* (its address in the directory)."""
        if key in self._directory:
            raise ValueError(f"actor key {key!r} already registered")
        self._directory[key] = actor
        self._members_dirty = True

    def remove_actor(self, key: Hashable) -> RequestReplyActor | None:
        """Deregister and return the actor at *key* (``None`` if absent).

        A removed actor stops being reachable immediately: requests
        addressed to it within the same cycle count as
        ``void_requests`` -- exactly what a crashed UDP endpoint does.
        """
        actor = self._directory.pop(key, None)
        if actor is not None:
            self._members_dirty = True
        return actor

    def get_actor(self, key: Hashable) -> RequestReplyActor | None:
        """The actor at *key*, or ``None``."""
        return self._directory.get(key)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_cycle(self) -> None:
        """Execute one full cycle: every live actor initiates one
        exchange, in uniform random order.

        Actors added during the cycle (churn joins) first act in the
        next cycle; actors removed mid-cycle are skipped -- both match
        the semantics of PeerSim's cycle scheduler.
        """
        now = float(self._cycle)
        directory = self._directory
        if self._members_dirty:
            # Rebuild the canonical (insertion-ordered) key list only
            # when membership changed; the common steady-state cycle
            # reuses both buffers.
            self._order = list(directory)
            self._members_dirty = False
        scratch = self._scratch
        scratch[:] = self._order
        for actor in directory.values():
            actor.set_time(now)
        self._rng.shuffle(scratch)
        get = directory.get
        run_exchange = self.run_exchange
        for key in scratch:
            actor = get(key)
            if actor is not None:
                run_exchange(actor)
        self._cycle += 1

    def run_exchange(self, actor: RequestReplyActor) -> None:
        """Drive a single request/answer exchange for *actor*, applying
        the loss model with the paper's request/answer coupling."""
        begun = actor.begin_exchange()
        if begun is None:
            return
        target_key, request = begun
        stats = self.stats
        network = self.network
        rng = self._rng
        stats.exchanges += 1
        stats.requests_sent += 1
        if network.should_drop(rng):
            stats.requests_dropped += 1
            stats.suppressed_replies += 1
            actor.on_no_reply(target_key)
            return
        target = self._directory.get(target_key)
        if target is None:
            stats.void_requests += 1
            stats.suppressed_replies += 1
            actor.on_no_reply(target_key)
            return
        reply = target.answer(request)
        if reply is None:
            stats.suppressed_replies += 1
            actor.on_no_reply(target_key)
            return
        stats.replies_sent += 1
        if network.should_drop(rng):
            stats.replies_dropped += 1
            actor.on_no_reply(target_key)
            return
        actor.complete(reply)

    def run_cycles(self, count: int) -> None:
        """Execute *count* consecutive cycles."""
        for _ in range(count):
            self.run_cycle()
