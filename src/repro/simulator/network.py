"""Network models: delivery, loss, and latency.

The paper "designed the protocol with a cheap, unreliable transport
layer in mind (UDP)" and evaluates robustness by "dropping messages with
a uniform probability" of 20% (Figure 4).  Because the protocol is built
on message-answer pairs, "if the first message is dropped, then the
answer is not sent either", which makes the expected overall loss 28%:
out of the two messages an exchange intends, a dropped request forfeits
both while a dropped answer forfeits one --
``(p * 2 + (1-p) * p * 1) / 2 = 0.28`` for ``p = 0.2``.

:class:`TransportStats` records exactly that accounting so experiment E6
can verify the arithmetic empirically, and :class:`NetworkModel`
centralises the drop/latency decisions for both simulation engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "NetworkModel",
    "TransportStats",
    "RELIABLE",
    "PAPER_LOSSY",
]


class LatencyModel:
    """One-way message delay distribution (event-driven engine only;
    the cycle-driven engine abstracts latency away, as PeerSim does)."""

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way delay."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every message takes exactly *delay* time units."""

    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Delay uniform in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(
                f"need 0 <= low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Exponentially distributed delay with the given *mean* (heavy-ish
    tail; stresses the loose synchronisation assumption)."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean must be positive, got {self.mean}")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class TransportStats:
    """Message accounting with the paper's pair-loss semantics.

    An *exchange* intends two messages: the request and the answer.
    ``intended`` therefore advances by 2 per initiated exchange, while
    ``delivered`` counts what actually arrived; a dropped request both
    loses itself and suppresses the answer (``suppressed_replies``).
    """

    __slots__ = (
        "exchanges",
        "requests_sent",
        "requests_dropped",
        "replies_sent",
        "replies_dropped",
        "suppressed_replies",
        "void_requests",
    )

    def __init__(self) -> None:
        self.exchanges = 0
        self.requests_sent = 0
        self.requests_dropped = 0
        self.replies_sent = 0
        self.replies_dropped = 0
        #: Answers never sent because the request was lost.
        self.suppressed_replies = 0
        #: Requests delivered to a node that no longer exists (churn).
        self.void_requests = 0

    @property
    def intended(self) -> int:
        """Messages the protocol meant to flow: two per exchange."""
        return 2 * self.exchanges

    @property
    def sent(self) -> int:
        """Messages actually put on the wire."""
        return self.requests_sent + self.replies_sent

    @property
    def delivered(self) -> int:
        """Messages that reached a live destination."""
        return (
            self.requests_sent
            - self.requests_dropped
            - self.void_requests
            + self.replies_sent
            - self.replies_dropped
        )

    @property
    def overall_loss_fraction(self) -> float:
        """The paper's 28% metric: share of *intended* messages that
        never arrived (dropped, suppressed, or addressed to the void)."""
        if not self.intended:
            return 0.0
        return 1.0 - self.delivered / self.intended

    @property
    def wire_loss_fraction(self) -> float:
        """Share of *sent* messages dropped in flight (should match the
        configured drop probability)."""
        if not self.sent:
            return 0.0
        return (self.requests_dropped + self.replies_dropped) / self.sent

    def snapshot(self) -> dict:
        """Plain-dict copy for traces."""
        data = {name: getattr(self, name) for name in self.__slots__}
        data["intended"] = self.intended
        data["sent"] = self.sent
        data["delivered"] = self.delivered
        data["overall_loss_fraction"] = self.overall_loss_fraction
        data["wire_loss_fraction"] = self.wire_loss_fraction
        return data


@dataclass(frozen=True)
class NetworkModel:
    """Stochastic properties of the message substrate.

    Parameters
    ----------
    drop_probability:
        Uniform independent loss probability per message (paper Figure 4
        uses 0.2; "unrealistically large" by design).
    latency:
        One-way delay distribution, event-driven engine only.
    """

    drop_probability: float = 0.0
    latency: LatencyModel = field(default_factory=ConstantLatency)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError(
                "drop_probability must be in [0, 1), got "
                f"{self.drop_probability}"
            )

    @property
    def reliable(self) -> bool:
        """Whether the model never drops messages."""
        return self.drop_probability == 0.0

    def should_drop(self, rng: random.Random) -> bool:
        """Decide one message's fate."""
        if self.drop_probability == 0.0:
            return False
        return rng.random() < self.drop_probability

    def sample_latency(self, rng: random.Random) -> float:
        """Draw one one-way delay."""
        return self.latency.sample(rng)

    def expected_overall_loss(self) -> float:
        """Closed form of the paper's pair-loss arithmetic:
        ``(2p + (1-p)p) / 2``; equals 0.28 at ``p = 0.2``."""
        p = self.drop_probability
        return (2 * p + (1 - p) * p) / 2


#: Convenience instances.
RELIABLE = NetworkModel()
PAPER_LOSSY = NetworkModel(drop_probability=0.2)
