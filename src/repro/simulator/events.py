"""Event-driven simulation engine.

The paper's experiments are cycle-driven (PeerSim's cycle mode), which
abstracts away message latency and the exact start offsets.  This
engine removes that abstraction: every node runs its active thread on
its own timer with a uniform-random phase in ``[0, Δ)`` (the paper's
loosely synchronised start, taken literally), messages take latency
drawn from the network model, and drops happen per message in flight.

Comparing the two engines on the same workload validates that the
cycle abstraction does not manufacture the paper's results: convergence
curves agree to within a cycle (see ``tests/test_events.py`` and the
E1 benchmark's cross-check mode).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceTracker
from ..core.descriptor import NodeDescriptor
from ..core.messages import BootstrapMessage
from ..core.protocol import BootstrapNode
from ..core.reference import ReferenceTables
from ..sampling.oracle import MembershipRegistry, OracleSampler
from .bootstrap_sim import SimulationResult
from .network import NetworkModel, RELIABLE, TransportStats
from .random_source import RandomSource

__all__ = ["EventScheduler", "EventDrivenBootstrap"]


class EventScheduler:
    """Minimal discrete-event scheduler: a time-ordered callback heap.

    Ties are broken by insertion order (FIFO), which keeps runs
    deterministic for a deterministic event population.
    """

    __slots__ = ("_heap", "_counter", "_now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired events."""
        return len(self._heap)

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute *time* (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past ({time} < {self._now})"
            )
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* *delay* time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.at(self._now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Fire every event scheduled strictly before *end_time*; leave
        ``now`` at *end_time*."""
        heap = self._heap
        while heap and heap[0][0] < end_time:
            time, _, callback = heapq.heappop(heap)
            self._now = time
            callback()
        self._now = end_time

    def run_all(self, max_events: int | None = None) -> int:
        """Drain the heap (optionally at most *max_events*); returns the
        number of events fired."""
        fired = 0
        heap = self._heap
        while heap:
            if max_events is not None and fired >= max_events:
                break
            time, _, callback = heapq.heappop(heap)
            self._now = time
            callback()
            fired += 1
        return fired


class EventDrivenBootstrap:
    """Latency-aware bootstrap experiment.

    Each node's active thread fires at ``offset + n*Δ`` where ``offset``
    is uniform in ``[0, Δ)``; requests and answers are messages in
    flight with their own latencies and independent drop decisions.
    Measurement happens at every cycle boundary (multiples of Δ), so the
    resulting series is directly comparable with the cycle engine's.

    Parameters mirror :class:`~repro.simulator.BootstrapSimulation`,
    minus the sampler choice (the oracle is used: the event engine's
    purpose is timing realism, not sampling realism).
    """

    def __init__(
        self,
        size: int | None = None,
        *,
        ids: Sequence[int] | None = None,
        config: BootstrapConfig = PAPER_CONFIG,
        seed: int = 1,
        network: NetworkModel = RELIABLE,
    ) -> None:
        self.config = config
        self.seed = seed
        self.network = network
        self._source = RandomSource(seed)
        self._space = config.space
        self.scheduler = EventScheduler()
        self.stats = TransportStats()
        self._drop_rng = self._source.derive("event-drops")
        self._latency_rng = self._source.derive("event-latency")

        if ids is None:
            if size is None or size < 2:
                raise ValueError("need size >= 2 or an explicit id list")
            id_list = self._space.random_unique_ids(
                size, self._source.derive("ids")
            )
        else:
            id_list = list(ids)

        self.registry = MembershipRegistry()
        self.nodes: dict[int, BootstrapNode] = {}
        offset_rng = self._source.derive("offsets")
        delta = config.cycle_length
        for address, node_id in enumerate(id_list):
            descriptor = NodeDescriptor(node_id=node_id, address=address)
            self.registry.add(descriptor)
            sampler = OracleSampler(
                self.registry, node_id, self._source.derive(("sampler", node_id))
            )
            node = BootstrapNode(
                descriptor,
                config,
                sampler,
                self._source.derive(("node", node_id)),
            )
            self.nodes[node_id] = node
            offset = offset_rng.uniform(0.0, delta)
            self.scheduler.at(
                offset, self._make_activation(node, first=True)
            )

        self.reference = ReferenceTables(
            self._space, id_list, config.leaf_set_size, config.entries_per_slot
        )
        self.tracker = ConvergenceTracker(self.reference, self.nodes.values())
        self._stopped = False

    # ------------------------------------------------------------------
    # Node activity
    # ------------------------------------------------------------------

    def _make_activation(
        self, node: BootstrapNode, first: bool = False
    ) -> Callable[[], None]:
        def activate() -> None:
            if self._stopped:
                return
            node.set_time(self.scheduler.now)
            if first and not node.started:
                node.start()
            self._initiate(node)
            self.scheduler.after(
                self.config.cycle_length, self._make_activation(node)
            )

        return activate

    def _initiate(self, node: BootstrapNode) -> None:
        begun = node.initiate_exchange()
        if begun is None:
            return
        peer, request = begun
        self.stats.exchanges += 1
        self._send(request, peer.node_id, is_reply=False, origin=node)

    def _send(
        self,
        message: BootstrapMessage,
        target_id: int,
        is_reply: bool,
        origin: BootstrapNode | None,
    ) -> None:
        stats = self.stats
        if is_reply:
            stats.replies_sent += 1
        else:
            stats.requests_sent += 1
        if self.network.should_drop(self._drop_rng):
            if is_reply:
                stats.replies_dropped += 1
            else:
                stats.requests_dropped += 1
                stats.suppressed_replies += 1
            return
        latency = self.network.sample_latency(self._latency_rng)
        self.scheduler.after(
            latency, lambda: self._deliver(message, target_id, is_reply)
        )

    def _deliver(
        self, message: BootstrapMessage, target_id: int, is_reply: bool
    ) -> None:
        if self._stopped:
            return
        target = self.nodes.get(target_id)
        if target is None:
            self.stats.void_requests += 1
            if not is_reply:
                self.stats.suppressed_replies += 1
            return
        target.set_time(self.scheduler.now)
        if is_reply:
            target.handle_reply(message)
        else:
            reply = target.handle_request(message)
            self._send(
                reply, message.sender.node_id, is_reply=True, origin=target
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self, max_cycles: int = 60, *, stop_when_perfect: bool = True
    ) -> SimulationResult:
        """Run for at most *max_cycles* Δ-intervals, measuring at every
        cycle boundary."""
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        delta = self.config.cycle_length
        cycles_run = 0
        for cycle in range(1, max_cycles + 1):
            self.scheduler.run_until(cycle * delta)
            cycles_run = cycle
            sample = self.tracker.measure(float(cycle))
            if stop_when_perfect and sample.is_perfect:
                break
        self._stopped = True
        return SimulationResult(
            samples=tuple(self.tracker.samples),
            converged_at=self.tracker.converged_at,
            population=len(self.nodes),
            transport=self.stats.snapshot(),
            config=self.config,
            seed=self.seed,
            cycles_run=cycles_run,
            engine="event",
        )
