"""Declarative experiment specifications and sweep running.

The benchmark harness regenerates every figure of the paper from
:class:`ExperimentSpec` objects: a spec pins down network size, seed,
protocol parameters, loss model, and schedules; :func:`run_experiment`
executes it; :func:`run_repeats` handles the paper's independent-repeat
methodology ("we performed 50, 10 and 4 independent experiments" for the
three sizes -- the repeat count scales down with size).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable, Sequence

from ..core.config import BootstrapConfig, PAPER_CONFIG
from .bootstrap_sim import BootstrapSimulation, SimulationResult
from .network import NetworkModel, RELIABLE

__all__ = [
    "ENGINE_KINDS",
    "ExperimentSpec",
    "build_simulation",
    "run_experiment",
    "run_repeats",
    "paper_repeat_counts",
]

#: Selectable cycle-engine implementations.  ``"reference"`` and
#: ``"fast"`` (the array-backed kernel in :mod:`repro.engine_fast`)
#: produce bit-identical trajectories for the same spec, pinned by the
#: differential suite.  ``"vector"`` (:mod:`repro.engine_vector`)
#: batches whole cycles in numpy under a documented seeded-but-
#: different RNG stream: deterministic per seed, *statistically*
#: equivalent to the other two rather than bit-identical.
ENGINE_KINDS = ("reference", "fast", "vector")


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to rerun one simulation bit-for-bit.

    Attributes mirror :class:`BootstrapSimulation`'s constructor plus
    the run budget and the engine selection.
    """

    size: int
    seed: int = 1
    config: BootstrapConfig = PAPER_CONFIG
    network: NetworkModel = RELIABLE
    sampler: str = "oracle"
    max_cycles: int = 60
    stop_when_perfect: bool = True
    measure_every: int = 1
    label: str = ""
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"engine must be one of {ENGINE_KINDS}, got {self.engine!r}"
            )

    def with_seed(self, seed: int) -> ExperimentSpec:
        """This spec under a different master seed."""
        return replace(self, seed=seed)

    def with_engine(self, engine: str) -> ExperimentSpec:
        """This spec on a different engine implementation."""
        return replace(self, engine=engine)

    def describe(self) -> dict[str, object]:
        """Flat summary for trace headers and reports."""
        return {
            "size": self.size,
            "seed": self.seed,
            "drop": self.network.drop_probability,
            "sampler": self.sampler,
            "max_cycles": self.max_cycles,
            "engine": self.engine,
            **self.config.describe(),
        }


def build_simulation(spec: ExperimentSpec):
    """Instantiate the simulation *spec* selects (the engine seam).

    Returns a :class:`BootstrapSimulation`, a
    :class:`repro.engine_fast.FastBootstrapSimulation`, or a
    :class:`repro.engine_vector.VectorBootstrapSimulation`; all expose
    the same ``run``/``measure``/membership API.  The reference and
    fast engines produce identical trajectories for identical specs;
    the vector engine is deterministic per seed but only
    statistically equivalent (its documented RNG relaxation).
    """
    if spec.engine == "fast":
        # Imported lazily: repro.engine_fast builds on this package.
        from ..engine_fast import FastBootstrapSimulation

        sim_class = FastBootstrapSimulation
    elif spec.engine == "vector":
        # Imported lazily: repro.engine_vector builds on this package.
        from ..engine_vector import VectorBootstrapSimulation

        sim_class = VectorBootstrapSimulation
    else:
        sim_class = BootstrapSimulation
    return sim_class(
        spec.size,
        config=spec.config,
        seed=spec.seed,
        network=spec.network,
        sampler=spec.sampler,
    )


def run_experiment(
    spec: ExperimentSpec,
    schedules: Sequence[object] = (),
) -> SimulationResult:
    """Execute *spec* on its selected engine and return its result."""
    sim = build_simulation(spec)
    return sim.run(
        spec.max_cycles,
        stop_when_perfect=spec.stop_when_perfect,
        schedules=schedules,
        measure_every=spec.measure_every,
    )


def run_repeats(
    spec: ExperimentSpec,
    repeats: int,
    schedules_factory: Callable[[], Sequence[object]] | None = None,
    *,
    workers: int = 1,
) -> list[SimulationResult]:
    """Run *repeats* independent instances of *spec*.

    Seeds are derived from the spec's master seed so each repeat is an
    independent network (fresh identifiers, fresh randomness) -- the
    paper's "independent experiments".

    Execution is delegated to :class:`repro.runtime.SweepRunner`, so
    ``workers > 1`` fans the repeats out over a process pool; results
    are identical to the sequential ones for any worker count.  A
    *schedules_factory* (a closure producing fresh schedule objects per
    repeat) is only supported in-process (``workers <= 1``); parallel
    sweeps describe schedules with
    :class:`repro.runtime.ScheduleSpec` instead.

    Raises
    ------
    repro.runtime.ShardError
        When any repeat fails, on both the sequential and parallel
        paths (the original exception is chained as ``__cause__``).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    # Imported lazily: repro.runtime builds on this module.
    from ..runtime import SweepRunner, expand_repeats

    runner = SweepRunner(workers=workers)
    outcomes = runner.run(
        expand_repeats(spec, repeats), schedules_factory=schedules_factory
    )
    return [outcome.result for outcome in outcomes]


def paper_repeat_counts(size: int, budget: int = 50) -> int:
    """The paper's repeat-count policy, rescaled.

    The authors ran 50/10/4 repeats for sizes 2^14 / 2^16 / 2^18: the
    repeat count shrinks ~linearly in network size so total work per
    size stays comparable.  We apply the same rule relative to the
    smallest size in a sweep: ``max(1, budget // (size / base_size))``
    where *budget* repeats are granted to ``base_size = 1024``.
    """
    base_size = 1024
    scale = max(1, size // base_size)
    return max(1, budget // scale)
