"""Deterministic randomness management for simulations.

Every stochastic component in the library (peer selection, sampling,
drop decisions, workload generation, ...) draws from an injected
``random.Random``.  :class:`RandomSource` derives those instances from a
single experiment seed by *name*, so that:

* a given ``(seed, name)`` pair always yields the same stream,
  regardless of creation order or Python hash randomisation;
* adding a new named consumer never perturbs existing streams, keeping
  results comparable across library versions.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomSource", "derive_seed"]


def derive_seed(seed: int, name: str | int) -> int:
    """Stable 64-bit sub-seed for *name* under the master *seed*.

    Uses SHA-256 rather than ``hash()`` so results do not depend on
    ``PYTHONHASHSEED`` or interpreter version.
    """
    material = f"{seed}:{name}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """Factory of independent, reproducible ``random.Random`` streams.

    Parameters
    ----------
    seed:
        The experiment's master seed.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def derive(self, name: str | int) -> random.Random:
        """A fresh ``random.Random`` for the named consumer."""
        return random.Random(derive_seed(self.seed, name))

    def spawn(self, name: str | int) -> RandomSource:
        """A child source whose streams are independent of the parent's
        (for nested components that derive their own sub-streams)."""
        return RandomSource(derive_seed(self.seed, name))

    def __repr__(self) -> str:
        return f"RandomSource(seed={self.seed})"
