"""Simulation substrate (the PeerSim-equivalent).

Cycle-driven and event-driven engines, network loss/latency models,
failure and churn schedules, and declarative experiment running.  The
paper's Section 5 experiments are cycle-driven; the event-driven engine
is provided to validate that the cycle abstraction does not hide timing
artefacts.
"""

from .actors import BootstrapActor, NewscastActor
from .bootstrap_sim import BootstrapSimulation, SimulationResult
from .engine import CycleEngine, RequestReplyActor
from .events import EventDrivenBootstrap, EventScheduler
from .experiment import (
    ENGINE_KINDS,
    ExperimentSpec,
    build_simulation,
    paper_repeat_counts,
    run_experiment,
    run_repeats,
)
from .failures import CatastrophicFailure, Churn, FailureSchedule, MassiveJoin
from .network import (
    PAPER_LOSSY,
    RELIABLE,
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    NetworkModel,
    TransportStats,
    UniformLatency,
)
from .random_source import RandomSource, derive_seed

__all__ = [
    "BootstrapActor",
    "NewscastActor",
    "BootstrapSimulation",
    "SimulationResult",
    "CycleEngine",
    "RequestReplyActor",
    "EventDrivenBootstrap",
    "EventScheduler",
    "ENGINE_KINDS",
    "ExperimentSpec",
    "build_simulation",
    "paper_repeat_counts",
    "run_experiment",
    "run_repeats",
    "CatastrophicFailure",
    "Churn",
    "FailureSchedule",
    "MassiveJoin",
    "NetworkModel",
    "TransportStats",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "RELIABLE",
    "PAPER_LOSSY",
    "RandomSource",
    "derive_seed",
]
