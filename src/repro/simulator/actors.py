"""Adapters binding the protocol state machines to the cycle engine.

The protocol objects in :mod:`repro.core` and :mod:`repro.sampling` are
engine-agnostic; these thin actors translate their transitions into the
:class:`~repro.simulator.engine.RequestReplyActor` interface.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from ..core.messages import BootstrapMessage
from ..core.protocol import BootstrapNode
from ..sampling.newscast import NewscastNode
from .engine import RequestReplyActor

__all__ = ["BootstrapActor", "NewscastActor"]


class BootstrapActor(RequestReplyActor):
    """Drives a :class:`BootstrapNode` through the cycle engine.

    The loosely synchronised start (paper Section 4, last paragraph) is
    modelled by starting the node at its first activation: the engine
    activates nodes in uniform random order within cycle 0, which is
    exactly "each node at a different random time within an interval of
    length Δ".
    """

    __slots__ = ("node",)

    def __init__(self, node: BootstrapNode) -> None:
        self.node = node

    def set_time(self, now: float) -> None:
        self.node.set_time(now)

    def begin_exchange(
        self,
    ) -> tuple[Hashable, BootstrapMessage] | None:
        if not self.node.started:
            self.node.start()
        begun = self.node.initiate_exchange()
        if begun is None:
            return None
        peer, request = begun
        return peer.node_id, request

    def answer(self, request: BootstrapMessage) -> BootstrapMessage:
        return self.node.handle_request(request)

    def complete(self, reply: BootstrapMessage) -> None:
        self.node.handle_reply(reply)


class NewscastActor(RequestReplyActor):
    """Drives a :class:`NewscastNode` through the cycle engine.

    The payload of an exchange is the tuple of descriptors produced by
    :meth:`NewscastNode.gossip_payload`; answers are built from the
    responder's pre-merge view, mirroring a symmetric UDP exchange.
    """

    __slots__ = ("node",)

    def __init__(self, node: NewscastNode) -> None:
        self.node = node

    def set_time(self, now: float) -> None:
        self.node.set_time(now)

    def begin_exchange(self) -> tuple[Hashable, tuple] | None:
        peer = self.node.select_peer()
        if peer is None:
            return None
        return peer.node_id, self.node.gossip_payload()

    def answer(self, request: Iterable) -> tuple:
        reply = self.node.gossip_payload()
        self.node.merge(request)
        return reply

    def complete(self, reply: Iterable) -> None:
        self.node.merge(reply)
