"""End-to-end cycle-driven simulation of the bootstrapping service.

:class:`BootstrapSimulation` assembles the full experimental apparatus
of the paper's Section 5:

* a population of nodes with unique random 64-bit identifiers;
* a functional peer sampling service (idealised oracle by default, or a
  live NEWSCAST layer gossiping in the same cycles);
* the bootstrapping protocol on every node, loosely-synchronised start;
* a message loss model (Figure 4 uses 20% uniform drop);
* failure/churn/merge schedules mutating the membership mid-run;
* per-cycle convergence measurement against the perfect tables.

The scenario of an experiment matches the paper: "We assume that we are
given a network where the sampling service is already functional.  We
start the bootstrapping protocol at each node at a different random time
within an interval of length Δ. ... The protocol is then run until the
perfect leaf sets and prefix tables are found at all nodes, based on the
actual set of IDs in the network."
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceSample, ConvergenceTracker
from ..core.descriptor import NodeDescriptor
from ..core.protocol import BootstrapNode
from ..core.reference import ReferenceTables
from ..sampling.newscast import NewscastNode
from ..sampling.oracle import MembershipRegistry, OracleSampler
from .actors import BootstrapActor, NewscastActor
from .engine import CycleEngine
from .network import NetworkModel, RELIABLE
from .random_source import RandomSource

__all__ = ["BootstrapSimulation", "SimulationResult", "SAMPLER_KINDS"]

SAMPLER_KINDS = ("oracle", "newscast")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one bootstrap run.

    Attributes
    ----------
    samples:
        Per-cycle convergence measurements (the paper's plotted series).
    converged_at:
        First cycle with perfect tables at every node, or ``None`` if
        the run hit its cycle budget first.
    population:
        Final number of live nodes.
    transport:
        Message accounting snapshot (the 28%-loss arithmetic lives here).
    config:
        The protocol parameters used.
    seed:
        Master seed of the run.
    cycles_run:
        Number of cycles this run executed.
    started_at_cycle:
        Engine cycle at which this run began (non-zero when the same
        pool has been run before, e.g. merge/restart scenarios).
    engine:
        Which engine implementation produced this result
        (``"reference"``, ``"fast"``, or ``"vector"``).  The first two
        are bit-identical by contract; the vector engine is
        deterministic per seed but only statistically equivalent, so
        the provenance field is what keeps artefacts comparable.
    """

    samples: tuple[ConvergenceSample, ...]
    converged_at: float | None
    population: int
    transport: dict
    config: BootstrapConfig
    seed: int
    cycles_run: int
    started_at_cycle: int = 0
    engine: str = "reference"

    @property
    def cycles_to_converge(self) -> float | None:
        """Cycles from this run's start to perfection (relative), or
        ``None``.  Equals :attr:`converged_at` for fresh pools."""
        if self.converged_at is None:
            return None
        return self.converged_at - self.started_at_cycle

    @property
    def final_sample(self) -> ConvergenceSample:
        """The last measurement taken."""
        return self.samples[-1]

    @property
    def converged(self) -> bool:
        """Whether perfect convergence was reached."""
        return self.converged_at is not None

    def leaf_series(self) -> list[tuple[float, float]]:
        """``(cycle, missing-leaf fraction)`` pairs."""
        return [(s.cycle, s.leaf_fraction) for s in self.samples]

    def prefix_series(self) -> list[tuple[float, float]]:
        """``(cycle, missing-prefix fraction)`` pairs."""
        return [(s.cycle, s.prefix_fraction) for s in self.samples]

    def messages_per_node_per_cycle(self) -> float:
        """Average wire messages per node per cycle (cost figure)."""
        if not self.cycles_run or not self.population:
            return 0.0
        return self.transport["sent"] / (self.cycles_run * self.population)


class BootstrapSimulation:
    """Cycle-driven simulation of one bootstrap run.

    Parameters
    ----------
    size:
        Number of nodes (ignored when *ids* is given).
    ids:
        Explicit identifier set (distinct), overrides *size*.
    config:
        Protocol parameters; defaults to the paper's.
    seed:
        Master seed; every stochastic stream derives from it.
    network:
        Message loss/latency model shared by both gossip layers.
    sampler:
        ``"oracle"`` (idealised uniform sampling, the paper's "already
        functional" assumption) or ``"newscast"`` (live NEWSCAST layer
        gossiping once per cycle alongside the bootstrap).
    newscast_view_size:
        View size when ``sampler="newscast"``.
    node_factory:
        Constructor for the protocol nodes; defaults to
        :class:`BootstrapNode`.  The ablation study injects protocol
        variants here (they must share ``BootstrapNode``'s interface).
    """

    def __init__(
        self,
        size: int | None = None,
        *,
        ids: Sequence[int] | None = None,
        config: BootstrapConfig = PAPER_CONFIG,
        seed: int = 1,
        network: NetworkModel = RELIABLE,
        sampler: str = "oracle",
        newscast_view_size: int = 30,
        node_factory: type | None = None,
    ) -> None:
        if sampler not in SAMPLER_KINDS:
            raise ValueError(
                f"sampler must be one of {SAMPLER_KINDS}, got {sampler!r}"
            )
        if ids is None:
            if size is None or size < 2:
                raise ValueError("need size >= 2 or an explicit id list")
        self.config = config
        self.seed = seed
        self.network = network
        self.sampler_kind = sampler
        self._source = RandomSource(seed)
        self._space = config.space

        if ids is None:
            id_list = self._space.random_unique_ids(
                size, self._source.derive("ids")
            )
        else:
            id_list = list(ids)
            if len(set(id_list)) != len(id_list):
                raise ValueError("identifier list contains duplicates")
            for node_id in id_list:
                self._space.validate(node_id)
            if len(id_list) < 2:
                raise ValueError("need at least 2 identifiers")

        self.registry = MembershipRegistry()
        self.nodes: dict[int, BootstrapNode] = {}
        self.newscast: dict[int, NewscastNode] = {}
        self._next_address = 0
        self._node_factory = node_factory or BootstrapNode

        self.engine = CycleEngine(
            network, self._source.derive("bootstrap-engine")
        )
        self.newscast_engine: CycleEngine | None = None
        if sampler == "newscast":
            self.newscast_engine = CycleEngine(
                network, self._source.derive("newscast-engine")
            )
        self._newscast_view_size = newscast_view_size

        for node_id in id_list:
            self._admit(node_id)
        if sampler == "newscast":
            self._seed_newscast_views()

        self.reference = ReferenceTables(
            self._space,
            id_list,
            config.leaf_set_size,
            config.entries_per_slot,
        )
        self.tracker = ConvergenceTracker(
            self.reference, self.nodes.values()
        )
        self._membership_dirty = False

    # ------------------------------------------------------------------
    # Node admission / removal (the membership the registry reflects)
    # ------------------------------------------------------------------

    def _admit(self, node_id: int) -> BootstrapNode:
        """Create and wire up one node (registry, sampler, engines)."""
        address = self._next_address
        self._next_address += 1
        descriptor = NodeDescriptor(node_id=node_id, address=address)
        self.registry.add(descriptor)

        if self.sampler_kind == "newscast":
            newscast_node = NewscastNode(
                descriptor,
                self._source.derive(("newscast", node_id)),
                view_size=self._newscast_view_size,
            )
            self.newscast[node_id] = newscast_node
            assert self.newscast_engine is not None
            self.newscast_engine.add_actor(
                node_id, NewscastActor(newscast_node)
            )
            node_sampler = newscast_node
        else:
            node_sampler = OracleSampler(
                self.registry,
                node_id,
                self._source.derive(("sampler", node_id)),
            )

        node = self._node_factory(
            descriptor,
            self.config,
            node_sampler,
            self._source.derive(("node", node_id)),
        )
        self.nodes[node_id] = node
        self.engine.add_actor(node_id, BootstrapActor(node))
        return node

    def _seed_newscast_views(self) -> None:
        """Initialise NEWSCAST views with uniform random live peers:
        the steady state a long-running sampling layer provides."""
        rng = self._source.derive("newscast-seed")
        for node in self.newscast.values():
            node.seed_view(
                self.registry.sample_descriptors(
                    self._newscast_view_size, rng, exclude_id=node.node_id
                )
            )

    # ------------------------------------------------------------------
    # Membership mutation (failure schedules, merge/split scenarios)
    # ------------------------------------------------------------------

    @property
    def population(self) -> int:
        """Current number of live nodes."""
        return len(self.nodes)

    @property
    def live_ids(self) -> list[int]:
        """Identifiers of live nodes."""
        return list(self.nodes)

    def kill_node(self, node_id: int) -> bool:
        """Crash *node_id*: it stops sending, answering, and being a
        valid table entry.  Returns whether the node was live."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            return False
        self.registry.remove(node_id)
        self.engine.remove_actor(node_id)
        if self.newscast_engine is not None:
            self.newscast.pop(node_id, None)
            self.newscast_engine.remove_actor(node_id)
        self._membership_dirty = True
        return True

    def spawn_node(self, node_id: int | None = None) -> BootstrapNode:
        """Join a brand-new node (fresh identifier unless given).

        The newcomer's sampling endpoint is functional immediately
        (oracle) or seeded with random live peers (NEWSCAST join); its
        bootstrap protocol starts at its first activation, next cycle.
        """
        if node_id is None:
            rng = self._source.derive(("spawn", self._next_address))
            node_id = self._space.random_id(rng)
            while node_id in self.nodes:
                node_id = self._space.random_id(rng)
        elif node_id in self.nodes:
            raise ValueError(f"identifier {node_id:#x} already live")
        node = self._admit(node_id)
        if self.sampler_kind == "newscast":
            rng = self._source.derive(("newscast-join", node_id))
            self.newscast[node_id].seed_view(
                self.registry.sample_descriptors(
                    self._newscast_view_size, rng, exclude_id=node_id
                )
            )
        self._membership_dirty = True
        return node

    def absorb_pool(self, ids: Iterable[int]) -> list[BootstrapNode]:
        """Merge a pool of identifiers into this network (the paper's
        network-merge scenario).  Returns the new nodes."""
        new_nodes = [self.spawn_node(node_id) for node_id in ids]
        return new_nodes

    def _refresh_reference(self) -> None:
        """Rebuild the perfect-table oracle after membership changed."""
        self.reference = ReferenceTables(
            self._space,
            self.nodes.keys(),
            self.config.leaf_set_size,
            self.config.entries_per_slot,
        )
        self.tracker.rebind(self.reference, self.nodes.values())
        self._membership_dirty = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self.engine.cycle

    def run_cycle(self) -> None:
        """One Δ interval: the sampling layer gossips (if live), then
        every bootstrap node performs one exchange."""
        if self.newscast_engine is not None:
            self.newscast_engine.run_cycle()
        self.engine.run_cycle()

    def measure(self) -> ConvergenceSample:
        """Measure convergence now (rebuilding the reference first if
        membership changed)."""
        if self._membership_dirty:
            self._refresh_reference()
        return self.tracker.measure(float(self.engine.cycle))

    def run(
        self,
        max_cycles: int = 60,
        *,
        stop_when_perfect: bool = True,
        schedules: Sequence[object] = (),
        measure_every: int = 1,
    ) -> SimulationResult:
        """Run the experiment.

        Parameters
        ----------
        max_cycles:
            Budget; the paper notes the protocol "has no stopping
            criterion" and is simply run "for a fixed number of cycles
            that are known to be sufficient".
        stop_when_perfect:
            End early at the first perfect measurement (how the paper's
            plots end).
        schedules:
            Failure/churn schedule objects (see
            :mod:`repro.simulator.failures`), applied at the start of
            each cycle.
        measure_every:
            Measurement period in cycles (1 = the paper's plots).
        """
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        if measure_every < 1:
            raise ValueError(
                f"measure_every must be >= 1, got {measure_every}"
            )
        started_at = self.engine.cycle
        for cycle_index in range(max_cycles):
            for schedule in schedules:
                schedule.apply(self, cycle_index)
            self.run_cycle()
            if (cycle_index + 1) % measure_every == 0:
                sample = self.measure()
                if stop_when_perfect and sample.is_perfect:
                    break
        if not self.tracker.samples:
            self.measure()
        return self._result(started_at)

    def _result(self, started_at: int = 0) -> SimulationResult:
        converged_at = next(
            (
                s.cycle
                for s in self.tracker.samples
                if s.cycle > started_at and s.is_perfect
            ),
            None,
        )
        return SimulationResult(
            samples=tuple(self.tracker.samples),
            converged_at=converged_at,
            population=self.population,
            transport=self.engine.stats.snapshot(),
            config=self.config,
            seed=self.seed,
            cycles_run=self.engine.cycle - started_at,
            started_at_cycle=started_at,
            engine="reference",
        )
