"""Gossip-based aggregation over the peer sampling service.

Figure 1 of the paper places *aggregation* (reference [7]: Jelasity,
Montresor, Babaoglu, "Gossip-based aggregation in large dynamic
networks", ACM TOCS 2005) among the components that "rely only on
random samples" -- no structured overlay needed.  It is the canonical
demonstration that the sampling layer alone already supports useful
global computations.

The protocol is push-pull averaging: each cycle every node contacts a
random peer and both replace their local estimate with the average of
the two.  The variance of the estimates decays exponentially (by a
factor ~1/(2*sqrt(e)) per cycle in the ideal model), so after O(log N)
cycles every node holds the global mean to high precision.  Derived
aggregates (sum, count, extrema) follow from the mean via the standard
tricks (e.g. network size = 1 / mean of an indicator).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.protocol import Sampler

__all__ = ["AggregationNode", "AggregationExperiment"]


class AggregationNode:
    """Node-local state of push-pull averaging.

    Parameters
    ----------
    node_id:
        Identifier (used only for directory keying).
    value:
        The node's local input value.
    sampler:
        Peer sampling endpoint (the only dependency, per Figure 1).
    """

    __slots__ = ("node_id", "estimate", "_sampler")

    def __init__(self, node_id: int, value: float, sampler: Sampler) -> None:
        self.node_id = node_id
        self.estimate = float(value)
        self._sampler = sampler

    def select_peer(self) -> int | None:
        """A uniform random peer id from the sampling service."""
        sample = self._sampler.sample(1)
        return sample[0].node_id if sample else None

    def push(self) -> float:
        """The estimate sent in a push-pull exchange."""
        return self.estimate

    def pull(self, peer_estimate: float) -> float:
        """Merge a peer's estimate; returns the new shared value.

        Both parties adopt ``(mine + theirs) / 2`` -- the mass-
        conserving update that makes the global mean invariant.
        """
        self.estimate = (self.estimate + peer_estimate) / 2.0
        return self.estimate


class AggregationExperiment:
    """Cycle-driven push-pull averaging over an oracle-sampled pool.

    Parameters
    ----------
    values:
        The local input values, one node each.
    seed:
        Randomness seed (activation order and peer choice).
    """

    def __init__(self, values: Iterable[float], seed: int = 1) -> None:
        from ..core.descriptor import NodeDescriptor
        from ..sampling.oracle import MembershipRegistry, OracleSampler
        from ..simulator.random_source import RandomSource

        values = list(values)
        if len(values) < 2:
            raise ValueError("aggregation needs at least 2 nodes")
        source = RandomSource(seed)
        self._order_rng = source.derive("order")
        self.registry = MembershipRegistry()
        self.nodes: dict[int, AggregationNode] = {}
        for index in range(len(values)):
            self.registry.add(NodeDescriptor(node_id=index, address=index))
        for index, value in enumerate(values):
            sampler = OracleSampler(
                self.registry, index, source.derive(("s", index))
            )
            self.nodes[index] = AggregationNode(index, value, sampler)
        self.true_mean = sum(values) / len(values)
        self.cycle = 0

    def run_cycle(self) -> None:
        """Every node initiates one push-pull exchange, random order."""
        order = list(self.nodes)
        self._order_rng.shuffle(order)
        for node_id in order:
            node = self.nodes[node_id]
            peer_id = node.select_peer()
            if peer_id is None:
                continue
            peer = self.nodes.get(peer_id)
            if peer is None:
                continue
            mine = node.push()
            theirs = peer.push()
            average = (mine + theirs) / 2.0
            node.estimate = average
            peer.estimate = average
        self.cycle += 1

    def variance(self) -> float:
        """Current population variance of the estimates."""
        estimates = [n.estimate for n in self.nodes.values()]
        mean = sum(estimates) / len(estimates)
        return sum((e - mean) ** 2 for e in estimates) / len(estimates)

    def max_error(self) -> float:
        """Worst node-level deviation from the true mean."""
        return max(
            abs(n.estimate - self.true_mean) for n in self.nodes.values()
        )

    def run(
        self, cycles: int, *, tolerance: float | None = None
    ) -> list[tuple[int, float]]:
        """Run for *cycles* (or until max error <= tolerance); returns
        the ``(cycle, variance)`` trace."""
        trace = [(self.cycle, self.variance())]
        for _ in range(cycles):
            self.run_cycle()
            trace.append((self.cycle, self.variance()))
            if tolerance is not None and self.max_error() <= tolerance:
                break
        return trace
