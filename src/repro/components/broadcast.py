"""Probabilistic broadcast over the peer sampling service.

The second "functions" component of Figure 1 (reference [3]: Eugster
et al., "Lightweight probabilistic broadcast", ACM TOCS 2003): reliable-
enough dissemination using nothing but random peers.  The paper also
leans on it operationally -- the bootstrap "is started by a system
administrator, using some form of broadcasting or flooding on top of
the peer sampling service".

The implementation is a rumor-mongering push gossip with bounded
retransmissions: a node that first receives an event pushes it to
``fanout`` random peers for each of the next ``rounds_active`` rounds,
then goes quiet.  Delivery probability approaches 1 exponentially in
the fanout; the benchmark and tests quantify the reliability/cost
trade-off, including under message loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["BroadcastConfig", "BroadcastResult", "GossipBroadcast"]


@dataclass(frozen=True)
class BroadcastConfig:
    """Rumor-mongering parameters.

    Attributes
    ----------
    fanout:
        Push targets per active node per round.
    rounds_active:
        Rounds a node retransmits after first reception.
    drop_probability:
        Per-push loss probability (models the UDP substrate).
    """

    fanout: int = 3
    rounds_active: int = 2
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.rounds_active < 1:
            raise ValueError(
                f"rounds_active must be >= 1, got {self.rounds_active}"
            )
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0,1), got "
                f"{self.drop_probability}"
            )


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one broadcast.

    Attributes
    ----------
    delivered:
        Number of nodes that received the event.
    population:
        Total nodes.
    rounds:
        Rounds until the rumor died out (no active nodes left).
    messages:
        Total pushes sent (including duplicates and losses).
    coverage_series:
        Delivered count after each round.
    """

    delivered: int
    population: int
    rounds: int
    messages: int
    coverage_series: tuple[int, ...]

    @property
    def reliability(self) -> float:
        """Fraction of the population reached."""
        return self.delivered / self.population

    @property
    def complete(self) -> bool:
        """Whether every node was reached."""
        return self.delivered == self.population


class GossipBroadcast:
    """Simulates rumor-mongering broadcast over a uniform sampler.

    The sampling layer is modelled as an oracle (uniform random
    targets), consistent with its use throughout the harness.
    """

    def __init__(
        self, size: int, config: BroadcastConfig = BroadcastConfig(),
        seed: int = 1,
    ) -> None:
        if size < 2:
            raise ValueError(f"size must be >= 2, got {size}")
        self.size = size
        self.config = config
        self._rng = random.Random(seed)

    def broadcast(self, origin: int = 0) -> BroadcastResult:
        """Disseminate one event from *origin*; returns the outcome."""
        if not 0 <= origin < self.size:
            raise ValueError(f"origin {origin} outside [0, {self.size})")
        config = self.config
        rng = self._rng
        informed: set[int] = {origin}
        # node -> remaining active rounds
        active: dict[int, int] = {origin: config.rounds_active}
        coverage = [1]
        messages = 0
        rounds = 0
        while active:
            rounds += 1
            next_active: dict[int, int] = {}
            for node, remaining in active.items():
                for _ in range(config.fanout):
                    target = rng.randrange(self.size)
                    messages += 1
                    if (
                        config.drop_probability
                        and rng.random() < config.drop_probability
                    ):
                        continue
                    if target not in informed:
                        informed.add(target)
                        next_active[target] = config.rounds_active
                if remaining > 1:
                    next_active.setdefault(node, 0)
                    next_active[node] = max(next_active[node], remaining - 1)
            active = {n: r for n, r in next_active.items() if r > 0}
            coverage.append(len(informed))
        return BroadcastResult(
            delivered=len(informed),
            population=self.size,
            rounds=rounds,
            messages=messages,
            coverage_series=tuple(coverage),
        )

    def reliability_over(self, trials: int, origin: int = 0) -> float:
        """Mean reliability across *trials* independent broadcasts."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        total = 0.0
        for _ in range(trials):
            total += self.broadcast(origin).reliability
        return total / trials
