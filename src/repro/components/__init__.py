"""The architecture's "functions" layer (Figure 1).

Components that, like the bootstrapping service, need nothing below
them but the peer sampling service: gossip-based aggregation
(reference [7]) and probabilistic broadcast (reference [3], also the
administrator's start-signal channel).  Their presence demonstrates the
paper's architectural point: random samples alone already support a
family of global functions, with structured overlays bootstrapped on
demand only when routing is required.
"""

from .aggregation import AggregationExperiment, AggregationNode
from .broadcast import BroadcastConfig, BroadcastResult, GossipBroadcast

__all__ = [
    "AggregationExperiment",
    "AggregationNode",
    "BroadcastConfig",
    "BroadcastResult",
    "GossipBroadcast",
]
