"""Zero-copy shared-memory result transport (``REPRO_TRANSPORT=shm``).

On the pickled path every worker outcome crosses the process boundary
as a full :meth:`RunColumns.__reduce__` payload: the three float64
curve buffers are serialised into the pickle stream, copied into the
pool's result pipe, read back, and copied again into rebuilt buffers
-- the transport-bound regime "Parallel Optimisation of Bootstrapping
in R" measures once the per-run compute is fast.  This module replaces
the wire form with a :class:`multiprocessing.shared_memory` **ring of
float64 blocks**: a worker writes its curves straight into the slot
the parent assigned it, and only a tiny :class:`ShmSlot` descriptor
(scalars + curve lengths + slot index) is pickled back.  Bytes copied
per run drop by the curve payload (gated by
``benchmarks/bench_shm_transport.py``); merged aggregates stay
**byte-identical** to the pickled path, which the test suite pins.

Design notes:

* **Parent-assigned slots, no cross-process locks.**  The parent only
  submits a shard when a free slot exists and reclaims the slot after
  copying the curves out, so ring exhaustion is natural back-pressure
  and two workers can never race for a block.
* **Fallbacks keep the seam total.**  ``shm`` is only active when
  numpy and ``multiprocessing.shared_memory`` are importable and the
  runner actually crosses a process boundary; anything else silently
  uses the pickled path (the no-numpy leg's contract).  A single run
  whose curves overflow the slot (more measurements than the grid's
  cycle budget implies) falls back to pickling just that run.
* **Crash safety.**  The ring is unlinked in a ``finally`` around the
  dispatch loop: worker crashes (``BrokenProcessPool`` ->
  :class:`~repro.runtime.runner.ShardError`), sink failures, and
  cancellation all release the segment.  Workers attach untracked
  (or unregister immediately on Python < 3.13) so a worker's
  resource tracker can never unlink the parent's live segment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from collections.abc import Sequence

from .. import seams
from .columns import RunColumns, _buffer_from_bytes
from .spec import RunSpec, execute_run

try:  # numpy is an optional extra throughout this package
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    _np = None

try:  # pragma: no cover - absent on exotic platforms only
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "TRANSPORT_KINDS",
    "ShmRing",
    "ShmSlot",
    "execute_run_columns_shm",
    "ring_slots",
    "slot_bytes_for",
    "shm_available",
    "transport",
]

#: Result-transport kinds behind ``REPRO_TRANSPORT``: ``pickle`` ships
#: full :class:`RunColumns` payloads (the default, and the only option
#: without numpy); ``shm`` ships curve buffers through a shared-memory
#: ring and pickles only descriptors.
TRANSPORT_KINDS = ("pickle", "shm")

_FLOAT = 8  # bytes per float64 curve element


def transport() -> str:
    """Resolve the requested result transport (``REPRO_TRANSPORT``)."""
    return seams.enum("REPRO_TRANSPORT")


def shm_available() -> bool:
    """Whether the shm transport can run here (numpy + shared_memory).

    When it cannot, a requested ``shm`` transport silently degrades to
    the pickled path -- the documented no-numpy fallback semantics.
    """
    return _np is not None and _shared_memory is not None


def ring_slots(workers: int) -> int:
    """Ring capacity in blocks: enough for every worker to be writing
    while the parent drains, bounded away from tiny rings.

    ``REPRO_SHM_BLOCKS`` overrides (tests pin it to 1 to exercise the
    back-pressure path).
    """
    blocks = seams.integer("REPRO_SHM_BLOCKS")
    if blocks is not None:
        return blocks
    return max(2 * workers, 4)


def slot_bytes_for(specs: Sequence[RunSpec]) -> int:
    """Block size covering any shard of *specs*: three float64 curves
    of at most ``max_cycles + 2`` measurements each (one measurement
    per cycle plus the initial and safety measurements)."""
    budget = max(spec.experiment.max_cycles for spec in specs)
    return 3 * (budget + 2) * _FLOAT


@dataclass(frozen=True)
class ShmSlot:
    """The pickled descriptor of one run whose curves live in the ring.

    ``fields`` carries the scalar positional fields of
    :meth:`RunColumns.__reduce__` (everything except the three curve
    buffers); ``lengths`` the element counts of the cycles/leaf/prefix
    curves, laid out back-to-back at ``slot * slot_bytes``.
    """

    slot: int
    lengths: tuple[int, int, int]
    fields: tuple


def _attach(name: str):
    """Attach to the parent's segment without resource tracking.

    A tracked attach would register the segment with this process's
    resource tracker, which unlinks it when the worker exits -- the
    classic premature-unlink hazard (`track=False` exists from Python
    3.13; earlier versions need the unregister workaround).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: no track= parameter.  Suppress registration
        # for the duration of the attach -- unregistering *after* the
        # fact would corrupt a fork-shared tracker's cache (the
        # parent's own registration lives in the same set).
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


#: Worker-side attach cache: one mapping per (process, ring) pair.
_ATTACHED: dict = {}


def _worker_segment(name: str):
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = _ATTACHED[name] = _attach(name)
    return segment


def execute_run_columns_shm(
    spec: RunSpec, ring_name: str, slot: int, slot_bytes: int
) -> ShmSlot | RunColumns:
    """Worker entry point of the shm transport.

    Executes the shard exactly like
    :func:`~repro.runtime.columns.execute_run_columns`, then writes
    the three curves into the assigned ring slot and returns the
    :class:`ShmSlot` descriptor.  Curves too large for the slot fall
    back to returning the full :class:`RunColumns` (pickled path) for
    just this run.
    """
    columns = RunColumns.from_run_result(execute_run(spec))
    crash_after = seams.integer("REPRO_SHM_TEST_CRASH_BYTES")
    curves = (columns.cycles, columns.leaf, columns.prefix)
    lengths = tuple(len(curve) for curve in curves)
    total = sum(lengths)
    if total * _FLOAT > slot_bytes:
        return columns
    segment = _worker_segment(ring_name)
    view = _np.ndarray(
        (total,),
        dtype=_np.float64,
        buffer=segment.buf,
        offset=slot * slot_bytes,
    )
    cursor = 0
    for curve, length in zip(curves, lengths, strict=True):
        view[cursor:cursor + length] = curve
        cursor += length
        if crash_after is not None and cursor * _FLOAT >= crash_after:
            # Test hook: die mid-write the way a preempted worker
            # does -- no cleanup, a half-written slot left behind.
            os.kill(os.getpid(), 9)
    scalars = (
        columns.shard,
        columns.replica,
        columns.size,
        columns.drop,
        columns.sampler,
        columns.schedules,
        columns.engine,
        columns.seed,
        columns.converged_at,
        columns.population,
        columns.cycles_run,
        columns.started_at_cycle,
        columns.transport,
        columns.wall_seconds,
    )
    return ShmSlot(slot=slot, lengths=lengths, fields=scalars)


class ShmRing:
    """The parent-side ring: one shared segment of equal float64 blocks.

    Created once per pooled sweep, unlinked in the dispatch loop's
    ``finally`` (crash, cancellation, and clean paths alike).
    """

    def __init__(self, segment, slots: int, slot_bytes: int) -> None:
        self._segment = segment
        self.slots = slots
        self.slot_bytes = slot_bytes

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> ShmRing:
        """Allocate a fresh ring of *slots* blocks of *slot_bytes*."""
        if slots < 1:
            raise ValueError(f"ring needs >= 1 slot, got {slots}")
        if slot_bytes < _FLOAT:
            raise ValueError(
                f"slot_bytes must hold at least one float64, "
                f"got {slot_bytes}"
            )
        segment = _shared_memory.SharedMemory(
            create=True, size=slots * slot_bytes
        )
        return cls(segment, slots, slot_bytes)

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._segment.name

    def restore(
        self, outcome: ShmSlot | RunColumns
    ) -> RunColumns:
        """Rebuild a worker outcome into a standalone
        :class:`RunColumns`.

        Descriptor outcomes copy their curves out of the ring (the
        slot is reusable the moment this returns); overflow fallbacks
        are already complete and pass through.  Buffers are rebuilt
        through the same :func:`_buffer_from_bytes` as the pickled
        path, so the two transports are byte-identical by
        construction.
        """
        if isinstance(outcome, RunColumns):
            return outcome
        total = sum(outcome.lengths)
        view = _np.ndarray(
            (total,),
            dtype=_np.float64,
            buffer=self._segment.buf,
            offset=outcome.slot * self.slot_bytes,
        )
        buffers = []
        cursor = 0
        for length in outcome.lengths:
            buffers.append(
                _buffer_from_bytes(view[cursor:cursor + length].tobytes())
            )
            cursor += length
        fields = (
            outcome.fields[:12] + tuple(buffers) + outcome.fields[12:]
        )
        return RunColumns(*fields)

    def destroy(self) -> None:
        """Release and unlink the segment (idempotent)."""
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        try:
            self._segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass

    def __repr__(self) -> str:
        return (
            f"ShmRing(name={self.name!r}, slots={self.slots}, "
            f"slot_bytes={self.slot_bytes})"
        )
