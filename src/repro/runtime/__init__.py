"""Parallel experiment runtime.

Shards a multi-axis experiment grid (population sizes x drop rates x
samplers x schedule sets x engines x replicas) across a process pool
with deterministic per-replica seeding, then merges shard results into
the analysis-layer aggregates.  Sequential (``workers=1``) and
parallel (``workers=N``) execution share one code path and produce
byte-identical merged statistics for the same base seed, on every
axis.

Results cross process boundaries in one of two forms: rich
:class:`RunResult` objects (the legacy transport) or compact
:class:`RunColumns` float64 buffers (the columnar transport --
several times fewer pickled bytes per run, the default for scenario
sweeps).  Both merge byte-identically.

Typical use::

    from repro.runtime import SweepGrid, SweepRunner, merge_columns

    grid = SweepGrid(sizes=(1024, 4096), drop_rates=(0.0, 0.2),
                     replicas=4, base_seed=7,
                     engines=("reference", "vector"))
    columns = SweepRunner(workers=4).run_grid_columns(grid)
    aggregate = merge_columns(columns)

For replica-heavy grids, the streaming path folds each shard outcome
as it arrives (constant collector memory) and can journal completed
cells to a checkpoint directory for kill-safe resume::

    from repro.runtime import CheckpointStore, StreamingMerge

    merge = StreamingMerge()
    SweepRunner(workers=4).stream_columns(grid.expand(), merge.add)
    aggregate = merge.finalize()   # byte-identical to merge_columns
"""

from .checkpoint import CheckpointError, CheckpointStore, grid_digest
from .columns import (
    TRANSPORT_COUNTERS,
    RunColumns,
    RunTiming,
    execute_run_columns,
)
from .merge import (
    CellAggregate,
    CellFold,
    StreamingMerge,
    SweepAggregate,
    cell_label,
    merge_columns,
    merge_results,
    throughput_summary,
)
from .runner import ShardError, SweepGrid, SweepRunner, expand_repeats
from .shm import (
    TRANSPORT_KINDS,
    ShmRing,
    execute_run_columns_shm,
    shm_available,
    transport,
)
from .spec import (
    SCHEDULE_KINDS,
    RunResult,
    RunSpec,
    ScheduleSpec,
    execute_run,
    replica_seed,
    schedule_key,
)

__all__ = [
    "SCHEDULE_KINDS",
    "TRANSPORT_COUNTERS",
    "TRANSPORT_KINDS",
    "CellAggregate",
    "CellFold",
    "CheckpointError",
    "CheckpointStore",
    "RunColumns",
    "RunResult",
    "RunSpec",
    "RunTiming",
    "ScheduleSpec",
    "ShardError",
    "ShmRing",
    "StreamingMerge",
    "SweepAggregate",
    "SweepGrid",
    "SweepRunner",
    "cell_label",
    "execute_run",
    "execute_run_columns",
    "execute_run_columns_shm",
    "expand_repeats",
    "grid_digest",
    "merge_columns",
    "merge_results",
    "replica_seed",
    "schedule_key",
    "shm_available",
    "throughput_summary",
    "transport",
]
