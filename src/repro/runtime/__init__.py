"""Parallel experiment runtime.

Shards an experiment grid (population sizes x drop rates x replicas)
across a process pool with deterministic per-replica seeding, then
merges shard results into the analysis-layer aggregates.  Sequential
(``workers=1``) and parallel (``workers=N``) execution share one code
path and produce byte-identical merged statistics for the same base
seed.

Typical use::

    from repro.runtime import SweepGrid, SweepRunner, merge_results

    grid = SweepGrid(sizes=(1024, 4096), drop_rates=(0.0, 0.2),
                     replicas=4, base_seed=7)
    results = SweepRunner(workers=4).run_grid(grid)
    aggregate = merge_results(results)
"""

from .merge import (
    CellAggregate,
    SweepAggregate,
    merge_results,
    throughput_summary,
)
from .runner import ShardError, SweepGrid, SweepRunner, expand_repeats
from .spec import (
    SCHEDULE_KINDS,
    RunResult,
    RunSpec,
    ScheduleSpec,
    execute_run,
    replica_seed,
)

__all__ = [
    "SCHEDULE_KINDS",
    "CellAggregate",
    "RunResult",
    "RunSpec",
    "ScheduleSpec",
    "ShardError",
    "SweepAggregate",
    "SweepGrid",
    "SweepRunner",
    "execute_run",
    "expand_repeats",
    "merge_results",
    "replica_seed",
    "throughput_summary",
]
