"""Columnar result transport: what worker processes send back.

A :class:`~repro.runtime.spec.RunResult` is the *rich* outcome of one
shard: a tuple of per-cycle :class:`ConvergenceSample` objects, the
full transport-counter snapshot, the config, and the complete
:class:`RunSpec` -- thousands of pickled bytes per run, nearly all of
it object overhead.  At paper scale (hundreds of replicas per sweep)
the process pool spends more wall-clock pickling and unpickling those
objects than the vectorised engines spend simulating; the same
transport-bound regime the online-bootstrapping literature reports
once the inner loop is fast (Qin et al., *Efficient Online
Bootstrapping for Large Scale Learning*).

:class:`RunColumns` is the compact wire form: the three plotted curves
as flat float64 buffers (numpy arrays when numpy is installed, stdlib
``array('d')`` on the fallback leg -- both pickle as raw machine
bytes), the summable transport counters as one integer tuple, and the
scalar summary fields.  Everything the merge step
(:func:`repro.runtime.merge.merge_columns`) folds comes straight from
these columns; no per-cycle objects are ever rebuilt.

``REPRO_COLUMNS_BACKEND=numpy|python`` forces the buffer backend (the
same convention as ``REPRO_FAST_BACKEND`` / ``REPRO_VECTOR_BACKEND``).
Both backends hold identical float64 values, so merged statistics are
byte-identical across them -- and byte-identical to the legacy
object-transport path, which is pinned by the test suite.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from collections.abc import Sequence

from .. import seams
from .spec import RunResult, RunSpec, ScheduleSpec, execute_run

try:  # numpy is an optional extra throughout this package
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    _np = None

__all__ = [
    "TRANSPORT_COUNTERS",
    "RunColumns",
    "RunTiming",
    "backend",
    "execute_run_columns",
]

#: Transport counters that sum exactly across shards (integers only;
#: derived fractions are recomputed from the sums at merge time).
#: Order is part of the wire format of :attr:`RunColumns.transport`.
TRANSPORT_COUNTERS = (
    "exchanges",
    "requests_sent",
    "requests_dropped",
    "replies_sent",
    "replies_dropped",
    "suppressed_replies",
    "void_requests",
    "intended",
    "sent",
    "delivered",
)


def backend() -> str:
    """The active column-buffer backend (``"numpy"`` or ``"python"``).

    Resolution mirrors the engine kernels: ``REPRO_COLUMNS_BACKEND``
    forces a backend (raising if numpy is requested but missing),
    otherwise numpy is used when importable.
    """
    forced = seams.enum("REPRO_COLUMNS_BACKEND")
    if forced:
        if forced == "numpy" and _np is None:
            raise RuntimeError(
                "REPRO_COLUMNS_BACKEND=numpy but numpy is not installed"
            )
        return forced
    return "numpy" if _np is not None else "python"


def _pack(values: Sequence[float]):
    """Pack floats into the active backend's flat float64 buffer."""
    if backend() == "numpy":
        return _np.asarray(values, dtype=_np.float64)
    return array("d", values)


def _buffer_bytes(buffer) -> bytes:
    """A buffer's raw float64 machine bytes (both backends)."""
    return buffer.tobytes()


def _buffer_from_bytes(raw: bytes):
    """Rebuild a buffer from :func:`_buffer_bytes` output.

    The numpy leg must copy: ``frombuffer`` over a ``bytes`` object is
    a *read-only* view, and restored columns feed in-place folds (the
    streaming merge, analysis consumers) exactly like freshly-built
    ones -- a frozen buffer would raise only on the numpy backend,
    after transport, which is the worst kind of latent asymmetry.
    """
    if backend() == "numpy":
        return _np.frombuffer(raw, dtype=_np.float64).copy()
    rebuilt = array("d")
    rebuilt.frombytes(raw)
    return rebuilt


@dataclass(frozen=True, eq=False)
class RunColumns:
    """One shard's outcome as flat columns plus scalar summaries.

    Attributes
    ----------
    shard / replica:
        Position in the sweep, exactly as on :class:`RunSpec`.
    size / drop / sampler / schedules / engine:
        The full grid-cell coordinate (every sweepable axis), so the
        merge step can group replicas without the originating
        :class:`RunSpec`.
    seed:
        The run's master seed (provenance).
    converged_at / population / cycles_run / started_at_cycle:
        Scalar summary fields of the underlying
        :class:`SimulationResult`.
    cycles / leaf / prefix:
        The measurement curves as flat float64 buffers: measurement
        cycle, missing-leaf fraction, missing-prefix fraction.
    transport:
        The summable counters, in :data:`TRANSPORT_COUNTERS` order.
    wall_seconds:
        In-worker wall time (excluded from merged statistics, exactly
        like on :class:`RunResult`).
    """

    shard: int
    replica: int
    size: int
    drop: float
    sampler: str
    schedules: tuple[ScheduleSpec, ...]
    engine: str
    seed: int
    converged_at: float | None
    population: int
    cycles_run: int
    started_at_cycle: int
    cycles: Sequence[float]
    leaf: Sequence[float]
    prefix: Sequence[float]
    transport: tuple[int, ...]
    wall_seconds: float

    @classmethod
    def from_run_result(cls, run: RunResult) -> RunColumns:
        """Flatten one rich :class:`RunResult` into columns.

        This is the worker-side conversion: the rich object never
        crosses the process boundary.  It is also the *only* path from
        results to columns, so the legacy and columnar merge paths are
        equivalent by construction.
        """
        spec = run.spec
        result = run.result
        samples = result.samples
        return cls(
            shard=spec.shard,
            replica=spec.replica,
            size=spec.size,
            drop=spec.drop,
            sampler=spec.sampler,
            schedules=spec.schedules,
            engine=spec.engine,
            seed=spec.experiment.seed,
            converged_at=result.converged_at,
            population=result.population,
            cycles_run=result.cycles_run,
            started_at_cycle=result.started_at_cycle,
            cycles=_pack([s.cycle for s in samples]),
            leaf=_pack([s.leaf_fraction for s in samples]),
            prefix=_pack([s.prefix_fraction for s in samples]),
            transport=tuple(
                int(result.transport[name]) for name in TRANSPORT_COUNTERS
            ),
            wall_seconds=run.wall_seconds,
        )

    def __reduce__(self):
        """Compact wire form: positional values, raw curve bytes.

        The default dataclass pickle repeats every field name per
        instance and carries each buffer's constructor overhead; for a
        payload whose whole point is being small, that roughly halves
        the win.  Reducing to a positional tuple with the three curves
        as raw float64 machine bytes keeps the pickled run at "data
        plus a few dozen framing bytes".
        """
        return (
            _rebuild_columns,
            (
                self.shard,
                self.replica,
                self.size,
                self.drop,
                self.sampler,
                self.schedules,
                self.engine,
                self.seed,
                self.converged_at,
                self.population,
                self.cycles_run,
                self.started_at_cycle,
                _buffer_bytes(self.cycles),
                _buffer_bytes(self.leaf),
                _buffer_bytes(self.prefix),
                self.transport,
                self.wall_seconds,
            ),
        )

    # -- the same summary surface RunResult exposes --------------------

    @property
    def cell(self) -> tuple[int, float, str, tuple[ScheduleSpec, ...], str]:
        """The grid cell this shard belongs to (all five axes)."""
        return (self.size, self.drop, self.sampler, self.schedules,
                self.engine)

    @property
    def converged(self) -> bool:
        """Whether the run reached perfect tables."""
        return self.converged_at is not None

    @property
    def cycles_to_converge(self) -> float | None:
        """Cycles from the run's start to perfection, or ``None``."""
        if self.converged_at is None:
            return None
        return self.converged_at - self.started_at_cycle

    @property
    def cycles_per_second(self) -> float:
        """Engine throughput of this shard (0 for instant runs)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles_run / self.wall_seconds

    @property
    def final_leaf_fraction(self) -> float:
        """Missing-leaf fraction at the last measurement."""
        return float(self.leaf[-1])

    @property
    def final_prefix_fraction(self) -> float:
        """Missing-prefix fraction at the last measurement."""
        return float(self.prefix[-1])

    def transport_counters(self) -> dict:
        """The summable counters as a name -> value mapping."""
        return dict(zip(TRANSPORT_COUNTERS, self.transport, strict=True))

    def leaf_series(self) -> list[tuple[float, float]]:
        """``(cycle, missing-leaf fraction)`` pairs."""
        return list(zip(map(float, self.cycles), map(float, self.leaf), strict=True))

    def prefix_series(self) -> list[tuple[float, float]]:
        """``(cycle, missing-prefix fraction)`` pairs."""
        return list(zip(map(float, self.cycles), map(float, self.prefix), strict=True))

    def timing(self) -> RunTiming:
        """The shard's throughput scalars, detached from the buffers.

        The streaming collector keeps these (a few machine words per
        shard) after dropping the curve columns, so throughput
        reporting survives the constant-memory fold.
        """
        return RunTiming(
            shard=self.shard,
            engine=self.engine,
            cycles_run=self.cycles_run,
            wall_seconds=self.wall_seconds,
        )


@dataclass(frozen=True)
class RunTiming:
    """One shard's wall-clock scalars (never merged into aggregates).

    Carries exactly what :func:`repro.runtime.merge.throughput_summary`
    reads -- ``wall_seconds`` and the derived ``cycles_per_second`` --
    so the streaming path can report throughput without retaining the
    full :class:`RunColumns`.
    """

    shard: int
    engine: str
    cycles_run: int
    wall_seconds: float

    @property
    def cycles_per_second(self) -> float:
        """Engine throughput of this shard (0 for instant runs)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles_run / self.wall_seconds


def _rebuild_columns(*values) -> RunColumns:
    """Unpickle hook for :meth:`RunColumns.__reduce__`."""
    fields = list(values)
    for index in (12, 13, 14):  # cycles, leaf, prefix
        fields[index] = _buffer_from_bytes(fields[index])
    return RunColumns(*fields)


def execute_run_columns(spec: RunSpec) -> RunColumns:
    """Execute one shard and return its columnar outcome.

    This is the function worker processes run on the columnar
    transport path: the simulation executes exactly as under
    :func:`~repro.runtime.spec.execute_run`, and only the flattened
    columns are pickled back.
    """
    return RunColumns.from_run_result(execute_run(spec))
