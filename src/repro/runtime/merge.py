"""Merging shard results into analysis-layer aggregates.

The merge step is the deterministic tail of a sweep: it takes the
shard outcomes (already in shard order -- the runner guarantees that
regardless of worker count) and folds them into the existing analysis
primitives:

* per-cell convergence-time :class:`~repro.analysis.stats.Summary`
  (via :func:`repro.analysis.stats.summarize`);
* per-cell mean convergence curves (via
  :func:`repro.analysis.series.mean_series`);
* per-cell transport-counter totals and the derived loss fractions.

The canonical input is the columnar wire form,
:class:`~repro.runtime.columns.RunColumns` -- the fold consumes flat
curve buffers and counter tuples directly and never rebuilds per-cycle
sample objects.  :func:`merge_results` accepts the legacy rich
:class:`~repro.runtime.spec.RunResult` list by flattening each result
through :meth:`RunColumns.from_run_result` first, so both transports
share one fold and produce byte-identical aggregates (a pinned test
property).

A cell is the full multi-axis coordinate ``(size, drop, sampler,
schedules, engine)``.  Two fields stay out of
:meth:`SweepAggregate.to_dict` by design:

* wall-clock timing, so "same base seed, any worker count =>
  byte-identical merged statistics" holds (throughput lives in
  :func:`throughput_summary`);
* the engine coordinate, so "reference and fast engines => identical
  merged trajectories" stays a byte-comparable property (engine
  provenance lives on the :class:`CellAggregate` dataclass itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.series import Series, mean_series
from ..analysis.stats import Summary, summarize
from .columns import RunColumns, TRANSPORT_COUNTERS
from .spec import RunResult, ScheduleSpec, schedule_key

__all__ = [
    "CellAggregate",
    "SweepAggregate",
    "cell_label",
    "merge_columns",
    "merge_results",
    "throughput_summary",
]


def cell_label(
    size: int,
    drop: float,
    sampler: str = "oracle",
    schedules: Tuple[ScheduleSpec, ...] = (),
    engine: str = "reference",
) -> str:
    """Human-readable cell coordinate for curve labels and tables.

    The historical ``N=<size>[ drop=<p>]`` prefix is kept verbatim;
    non-default variant axes append their coordinate, so legacy
    size x drop sweeps keep their exact labels.
    """
    label = f"N={size}" if drop == 0.0 else f"N={size} drop={drop:g}"
    if sampler != "oracle":
        label += f" {sampler}"
    if schedules:
        label += f" {schedule_key(schedules)}"
    if engine != "reference":
        label += f" [{engine}]"
    return label


@dataclass(frozen=True)
class CellAggregate:
    """Merged statistics of one grid cell (one point of the
    size x drop x sampler x schedules x engine product)."""

    size: int
    drop: float
    runs: int
    converged_runs: int
    cycles: Optional[Summary]
    mean_leaf: Series
    mean_prefix: Series
    transport: Tuple[Tuple[str, int], ...]
    sampler: str = "oracle"
    schedules: Tuple[ScheduleSpec, ...] = ()
    engine: str = "reference"

    @property
    def label(self) -> str:
        """The cell's display label (same as its curve labels)."""
        return cell_label(
            self.size, self.drop, self.sampler, self.schedules, self.engine
        )

    @property
    def all_converged(self) -> bool:
        """Whether every replica reached perfect tables."""
        return self.converged_runs == self.runs

    @property
    def overall_loss_fraction(self) -> float:
        """Share of intended messages lost, cell-wide."""
        counters = dict(self.transport)
        intended = counters.get("intended", 0)
        if not intended:
            return 0.0
        return 1.0 - counters.get("delivered", 0) / intended

    @property
    def wire_loss_fraction(self) -> float:
        """Share of sent messages dropped in flight, cell-wide."""
        counters = dict(self.transport)
        sent = counters.get("sent", 0)
        if not sent:
            return 0.0
        dropped = counters.get("requests_dropped", 0) + counters.get(
            "replies_dropped", 0
        )
        return dropped / sent

    def to_dict(self) -> dict:
        """Stable primitive representation (no timing, no objects).

        The engine coordinate is deliberately omitted: reference and
        fast runs of the same seeds must serialize identically (the
        cross-engine golden property), just as any worker count must.
        """
        return {
            "size": self.size,
            "drop": self.drop,
            "sampler": self.sampler,
            "schedules": [spec.to_dict() for spec in self.schedules],
            "runs": self.runs,
            "converged_runs": self.converged_runs,
            "cycles": (
                None
                if self.cycles is None
                else {
                    "count": self.cycles.count,
                    "mean": self.cycles.mean,
                    "std": self.cycles.std,
                    "min": self.cycles.minimum,
                    "max": self.cycles.maximum,
                    "median": self.cycles.median,
                }
            ),
            "mean_leaf": [list(p) for p in self.mean_leaf.points],
            "mean_prefix": [list(p) for p in self.mean_prefix.points],
            "transport": {name: value for name, value in self.transport},
            "overall_loss_fraction": self.overall_loss_fraction,
            "wire_loss_fraction": self.wire_loss_fraction,
        }


@dataclass(frozen=True)
class SweepAggregate:
    """Merged statistics of a whole sweep, cell by cell."""

    cells: Tuple[CellAggregate, ...]

    def cell(
        self,
        size: int,
        drop: float = 0.0,
        *,
        sampler: Optional[str] = None,
        schedules: Optional[Tuple[ScheduleSpec, ...]] = None,
        engine: Optional[str] = None,
    ) -> CellAggregate:
        """The first aggregate matching the given coordinates.

        The variant axes are filters: ``None`` matches any value, so
        single-variant sweeps keep the historical two-argument lookup.
        """
        for cell in self.cells:
            if cell.size != size or cell.drop != drop:
                continue
            if sampler is not None and cell.sampler != sampler:
                continue
            if schedules is not None and cell.schedules != schedules:
                continue
            if engine is not None and cell.engine != engine:
                continue
            return cell
        coordinate = f"size={size}, drop={drop}"
        for name, value in (
            ("sampler", sampler),
            ("schedules", schedules),
            ("engine", engine),
        ):
            if value is not None:
                coordinate += f", {name}={value!r}"
        raise KeyError(f"no cell ({coordinate}) in sweep")

    def leaf_curves(self) -> List[Series]:
        """Mean missing-leaf curves, one per cell (figure order)."""
        return [cell.mean_leaf for cell in self.cells]

    def prefix_curves(self) -> List[Series]:
        """Mean missing-prefix curves, one per cell (figure order)."""
        return [cell.mean_prefix for cell in self.cells]

    def to_dict(self) -> dict:
        """Stable primitive representation of the whole sweep.

        Two sweeps with the same base seed serialize to identical
        bytes (e.g. via ``json.dumps(..., sort_keys=True)``) no matter
        how many workers executed them.
        """
        return {"cells": [cell.to_dict() for cell in self.cells]}


def merge_columns(columns: Sequence[RunColumns]) -> SweepAggregate:
    """Fold columnar shard outcomes into per-cell aggregates.

    Shards are grouped by their full grid cell; cells appear in
    first-shard order and replicas within a cell in shard order, so the
    output is a pure function of the (deterministically seeded) inputs.
    The fold reads flat buffers and counter tuples only -- per-cycle
    sample objects are never rebuilt.
    """
    if not columns:
        raise ValueError("cannot merge an empty result list")
    ordered = sorted(columns, key=lambda c: c.shard)
    by_cell: Dict[tuple, List[RunColumns]] = {}
    for run in ordered:
        by_cell.setdefault(run.cell, []).append(run)

    cells: List[CellAggregate] = []
    for (size, drop, sampler, schedules, engine), runs in by_cell.items():
        label = cell_label(size, drop, sampler, schedules, engine)
        converged = [
            r.cycles_to_converge for r in runs if r.converged
        ]
        counters = {name: 0 for name in TRANSPORT_COUNTERS}
        for run in runs:
            for name, value in zip(TRANSPORT_COUNTERS, run.transport):
                counters[name] += value
        cells.append(
            CellAggregate(
                size=size,
                drop=drop,
                sampler=sampler,
                schedules=schedules,
                engine=engine,
                runs=len(runs),
                converged_runs=len(converged),
                cycles=summarize(converged) if converged else None,
                mean_leaf=mean_series(
                    label,
                    [
                        Series.from_pairs(label, r.leaf_series())
                        for r in runs
                    ],
                ),
                mean_prefix=mean_series(
                    label,
                    [
                        Series.from_pairs(label, r.prefix_series())
                        for r in runs
                    ],
                ),
                transport=tuple(sorted(counters.items())),
            )
        )
    return SweepAggregate(cells=tuple(cells))


def merge_results(results: Sequence[RunResult]) -> SweepAggregate:
    """Fold rich shard results into per-cell aggregates.

    The legacy object-transport entry point: each
    :class:`RunResult` is flattened through
    :meth:`RunColumns.from_run_result` and folded by
    :func:`merge_columns`, so both transports share one merge and
    produce byte-identical aggregates.
    """
    if not results:
        raise ValueError("cannot merge an empty result list")
    return merge_columns(
        [RunColumns.from_run_result(run) for run in results]
    )


def throughput_summary(
    results: Sequence[object],
) -> Optional[Summary]:
    """Per-shard cycles/sec summary (``None`` for empty input).

    Accepts both :class:`RunResult` and :class:`RunColumns` sequences
    (each exposes ``wall_seconds`` and ``cycles_per_second``).
    Reported separately from the merge because wall-clock timing must
    not contaminate the deterministic aggregates.
    """
    rates = [
        r.cycles_per_second  # type: ignore[attr-defined]
        for r in results
        if r.wall_seconds > 0  # type: ignore[attr-defined]
    ]
    if not rates:
        return None
    return summarize(rates)
