"""Merging shard results into analysis-layer aggregates.

The merge step is the deterministic tail of a sweep: it takes the
:class:`~repro.runtime.spec.RunResult` list (already in shard order --
the runner guarantees that regardless of worker count) and folds it
into the existing analysis primitives:

* per-cell convergence-time :class:`~repro.analysis.stats.Summary`
  (via :func:`repro.analysis.stats.summarize`);
* per-cell mean convergence curves (via
  :func:`repro.analysis.series.mean_series`);
* per-cell transport-counter totals and the derived loss fractions.

Wall-clock timing is deliberately *not* merged: it is the one
nondeterministic field of a :class:`RunResult`, and keeping it out of
:meth:`SweepAggregate.to_dict` is what makes "same base seed, any
worker count => byte-identical merged statistics" a testable property.
Throughput lives in :func:`throughput_summary` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.series import Series, mean_series
from ..analysis.stats import Summary, summarize
from .spec import RunResult

__all__ = [
    "CellAggregate",
    "SweepAggregate",
    "merge_results",
    "throughput_summary",
]

#: Transport counters that sum exactly across shards (integers only;
#: the derived fractions are recomputed from the sums).
_TRANSPORT_COUNTERS = (
    "exchanges",
    "requests_sent",
    "requests_dropped",
    "replies_sent",
    "replies_dropped",
    "suppressed_replies",
    "void_requests",
    "intended",
    "sent",
    "delivered",
)


@dataclass(frozen=True)
class CellAggregate:
    """Merged statistics of one grid cell (size x drop)."""

    size: int
    drop: float
    runs: int
    converged_runs: int
    cycles: Optional[Summary]
    mean_leaf: Series
    mean_prefix: Series
    transport: Tuple[Tuple[str, int], ...]

    @property
    def all_converged(self) -> bool:
        """Whether every replica reached perfect tables."""
        return self.converged_runs == self.runs

    @property
    def overall_loss_fraction(self) -> float:
        """Share of intended messages lost, cell-wide."""
        counters = dict(self.transport)
        intended = counters.get("intended", 0)
        if not intended:
            return 0.0
        return 1.0 - counters.get("delivered", 0) / intended

    @property
    def wire_loss_fraction(self) -> float:
        """Share of sent messages dropped in flight, cell-wide."""
        counters = dict(self.transport)
        sent = counters.get("sent", 0)
        if not sent:
            return 0.0
        dropped = counters.get("requests_dropped", 0) + counters.get(
            "replies_dropped", 0
        )
        return dropped / sent

    def to_dict(self) -> dict:
        """Stable primitive representation (no timing, no objects)."""
        return {
            "size": self.size,
            "drop": self.drop,
            "runs": self.runs,
            "converged_runs": self.converged_runs,
            "cycles": (
                None
                if self.cycles is None
                else {
                    "count": self.cycles.count,
                    "mean": self.cycles.mean,
                    "std": self.cycles.std,
                    "min": self.cycles.minimum,
                    "max": self.cycles.maximum,
                    "median": self.cycles.median,
                }
            ),
            "mean_leaf": [list(p) for p in self.mean_leaf.points],
            "mean_prefix": [list(p) for p in self.mean_prefix.points],
            "transport": {name: value for name, value in self.transport},
            "overall_loss_fraction": self.overall_loss_fraction,
            "wire_loss_fraction": self.wire_loss_fraction,
        }


@dataclass(frozen=True)
class SweepAggregate:
    """Merged statistics of a whole sweep, cell by cell."""

    cells: Tuple[CellAggregate, ...]

    def cell(self, size: int, drop: float = 0.0) -> CellAggregate:
        """The aggregate for grid cell ``(size, drop)``."""
        for cell in self.cells:
            if cell.size == size and cell.drop == drop:
                return cell
        raise KeyError(f"no cell (size={size}, drop={drop}) in sweep")

    def leaf_curves(self) -> List[Series]:
        """Mean missing-leaf curves, one per cell (figure order)."""
        return [cell.mean_leaf for cell in self.cells]

    def prefix_curves(self) -> List[Series]:
        """Mean missing-prefix curves, one per cell (figure order)."""
        return [cell.mean_prefix for cell in self.cells]

    def to_dict(self) -> dict:
        """Stable primitive representation of the whole sweep.

        Two sweeps with the same base seed serialize to identical
        bytes (e.g. via ``json.dumps(..., sort_keys=True)``) no matter
        how many workers executed them.
        """
        return {"cells": [cell.to_dict() for cell in self.cells]}


def merge_results(results: Sequence[RunResult]) -> SweepAggregate:
    """Fold shard results into per-cell aggregates.

    Shards are grouped by grid cell ``(size, drop)``; cells appear in
    first-shard order and replicas within a cell in shard order, so the
    output is a pure function of the (deterministically seeded) inputs.
    """
    if not results:
        raise ValueError("cannot merge an empty result list")
    ordered = sorted(results, key=lambda r: r.spec.shard)
    by_cell: Dict[Tuple[int, float], List[RunResult]] = {}
    for run in ordered:
        by_cell.setdefault(run.spec.cell, []).append(run)

    cells: List[CellAggregate] = []
    for (size, drop), runs in by_cell.items():
        label = f"N={size}" if drop == 0.0 else f"N={size} drop={drop:g}"
        converged = [
            r.result.cycles_to_converge
            for r in runs
            if r.result.converged
        ]
        counters = {name: 0 for name in _TRANSPORT_COUNTERS}
        for run in runs:
            for name in _TRANSPORT_COUNTERS:
                counters[name] += run.result.transport[name]
        cells.append(
            CellAggregate(
                size=size,
                drop=drop,
                runs=len(runs),
                converged_runs=len(converged),
                cycles=summarize(converged) if converged else None,
                mean_leaf=mean_series(
                    label,
                    [
                        Series.from_pairs(label, r.result.leaf_series())
                        for r in runs
                    ],
                ),
                mean_prefix=mean_series(
                    label,
                    [
                        Series.from_pairs(label, r.result.prefix_series())
                        for r in runs
                    ],
                ),
                transport=tuple(sorted(counters.items())),
            )
        )
    return SweepAggregate(cells=tuple(cells))


def throughput_summary(results: Sequence[RunResult]) -> Optional[Summary]:
    """Per-shard cycles/sec summary (``None`` for empty input).

    Reported separately from :func:`merge_results` because wall-clock
    timing must not contaminate the deterministic aggregates.
    """
    rates = [r.cycles_per_second for r in results if r.wall_seconds > 0]
    if not rates:
        return None
    return summarize(rates)
