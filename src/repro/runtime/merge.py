"""Merging shard results into analysis-layer aggregates.

The merge step is the deterministic tail of a sweep: it takes the
shard outcomes (already in shard order -- the runner guarantees that
regardless of worker count) and folds them into the existing analysis
primitives:

* per-cell convergence-time :class:`~repro.analysis.stats.Summary`
  (via :func:`repro.analysis.stats.summarize`);
* per-cell mean convergence curves (via
  :func:`repro.analysis.series.mean_series`);
* per-cell transport-counter totals and the derived loss fractions.

The canonical input is the columnar wire form,
:class:`~repro.runtime.columns.RunColumns` -- the fold consumes flat
curve buffers and counter tuples directly and never rebuilds per-cycle
sample objects.  :func:`merge_results` accepts the legacy rich
:class:`~repro.runtime.spec.RunResult` list by flattening each result
through :meth:`RunColumns.from_run_result` first, so both transports
share one fold and produce byte-identical aggregates (a pinned test
property).

A cell is the full multi-axis coordinate ``(size, drop, sampler,
schedules, engine)``.  Two fields stay out of
:meth:`SweepAggregate.to_dict` by design:

* wall-clock timing, so "same base seed, any worker count =>
  byte-identical merged statistics" holds (throughput lives in
  :func:`throughput_summary`);
* the engine coordinate, so "reference and fast engines => identical
  merged trajectories" stays a byte-comparable property (engine
  provenance lives on the :class:`CellAggregate` dataclass itself).

Two fold entry points share these semantics:

* :func:`merge_columns` -- the batch fold: all shard outcomes in
  memory at once;
* :class:`StreamingMerge` -- the incremental fold: each arriving
  :class:`RunColumns` is folded into per-cell accumulators
  (:class:`CellFold`) and dropped, so collector memory is constant in
  the replica count (the online-bootstrap trick of Qin et al.,
  *Efficient Online Bootstrapping for Large Scale Learning*).  The
  streaming fold is **byte-identical** to the batch fold for any
  arrival order: within a cell, runs are folded strictly in replica
  order (out-of-order arrivals wait in a small pending window), so
  every floating-point operation happens in exactly the sequence the
  batch fold performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..analysis.series import Series, mean_series
from ..analysis.stats import Summary, summarize
from .columns import RunColumns, TRANSPORT_COUNTERS
from .spec import RunResult, ScheduleSpec, schedule_key

__all__ = [
    "CellAggregate",
    "CellFold",
    "StreamingMerge",
    "SweepAggregate",
    "cell_label",
    "merge_columns",
    "merge_results",
    "throughput_summary",
]

#: The full grid-cell coordinate: (size, drop, sampler, schedules,
#: engine) -- the key both folds group replicas by.
CellKey = tuple[int, float, str, tuple[ScheduleSpec, ...], str]


def cell_label(
    size: int,
    drop: float,
    sampler: str = "oracle",
    schedules: tuple[ScheduleSpec, ...] = (),
    engine: str = "reference",
) -> str:
    """Human-readable cell coordinate for curve labels and tables.

    The historical ``N=<size>[ drop=<p>]`` prefix is kept verbatim;
    non-default variant axes append their coordinate, so legacy
    size x drop sweeps keep their exact labels.
    """
    label = f"N={size}" if drop == 0.0 else f"N={size} drop={drop:g}"
    if sampler != "oracle":
        label += f" {sampler}"
    if schedules:
        label += f" {schedule_key(schedules)}"
    if engine != "reference":
        label += f" [{engine}]"
    return label


@dataclass(frozen=True)
class CellAggregate:
    """Merged statistics of one grid cell (one point of the
    size x drop x sampler x schedules x engine product)."""

    size: int
    drop: float
    runs: int
    converged_runs: int
    cycles: Summary | None
    mean_leaf: Series
    mean_prefix: Series
    transport: tuple[tuple[str, int], ...]
    sampler: str = "oracle"
    schedules: tuple[ScheduleSpec, ...] = ()
    engine: str = "reference"

    @property
    def label(self) -> str:
        """The cell's display label (same as its curve labels)."""
        return cell_label(
            self.size, self.drop, self.sampler, self.schedules, self.engine
        )

    @property
    def all_converged(self) -> bool:
        """Whether every replica reached perfect tables."""
        return self.converged_runs == self.runs

    @property
    def overall_loss_fraction(self) -> float:
        """Share of intended messages lost, cell-wide."""
        counters = dict(self.transport)
        intended = counters.get("intended", 0)
        if not intended:
            return 0.0
        return 1.0 - counters.get("delivered", 0) / intended

    @property
    def wire_loss_fraction(self) -> float:
        """Share of sent messages dropped in flight, cell-wide."""
        counters = dict(self.transport)
        sent = counters.get("sent", 0)
        if not sent:
            return 0.0
        dropped = counters.get("requests_dropped", 0) + counters.get(
            "replies_dropped", 0
        )
        return dropped / sent

    def to_dict(self) -> dict:
        """Stable primitive representation (no timing, no objects).

        The engine coordinate is deliberately omitted: reference and
        fast runs of the same seeds must serialize identically (the
        cross-engine golden property), just as any worker count must.
        """
        return {
            "size": self.size,
            "drop": self.drop,
            "sampler": self.sampler,
            "schedules": [spec.to_dict() for spec in self.schedules],
            "runs": self.runs,
            "converged_runs": self.converged_runs,
            "cycles": (
                None
                if self.cycles is None
                else {
                    "count": self.cycles.count,
                    "mean": self.cycles.mean,
                    "std": self.cycles.std,
                    "min": self.cycles.minimum,
                    "max": self.cycles.maximum,
                    "median": self.cycles.median,
                }
            ),
            "mean_leaf": [list(p) for p in self.mean_leaf.points],
            "mean_prefix": [list(p) for p in self.mean_prefix.points],
            "transport": {name: value for name, value in self.transport},
            "overall_loss_fraction": self.overall_loss_fraction,
            "wire_loss_fraction": self.wire_loss_fraction,
        }

    @classmethod
    def from_dict(
        cls, data: dict, *, engine: str = "reference"
    ) -> CellAggregate:
        """Rebuild an aggregate from :meth:`to_dict` output.

        The checkpoint-restore path: every float survives the JSON
        round-trip exactly (``json`` serialises via ``repr`` and
        ``float(repr(x)) == x`` for finite values), so a restored cell
        serialises back to byte-identical :meth:`to_dict` output.  The
        engine coordinate is deliberately absent from the dict (see
        :meth:`to_dict`); checkpoint records carry it separately.
        """
        size = int(data["size"])
        drop = float(data["drop"])
        sampler = str(data["sampler"])
        schedules = tuple(
            ScheduleSpec.from_dict(spec) for spec in data["schedules"]
        )
        label = cell_label(size, drop, sampler, schedules, engine)
        raw = data["cycles"]
        cycles = (
            None
            if raw is None
            else Summary(
                count=int(raw["count"]),
                mean=raw["mean"],
                std=raw["std"],
                minimum=raw["min"],
                maximum=raw["max"],
                median=raw["median"],
            )
        )
        return cls(
            size=size,
            drop=drop,
            sampler=sampler,
            schedules=schedules,
            engine=engine,
            runs=int(data["runs"]),
            converged_runs=int(data["converged_runs"]),
            cycles=cycles,
            mean_leaf=Series(
                label=label,
                points=tuple(
                    (float(x), float(y)) for x, y in data["mean_leaf"]
                ),
            ),
            mean_prefix=Series(
                label=label,
                points=tuple(
                    (float(x), float(y)) for x, y in data["mean_prefix"]
                ),
            ),
            transport=tuple(
                sorted(
                    (str(name), int(value))
                    for name, value in data["transport"].items()
                )
            ),
        )


@dataclass(frozen=True)
class SweepAggregate:
    """Merged statistics of a whole sweep, cell by cell."""

    cells: tuple[CellAggregate, ...]

    def cell(
        self,
        size: int,
        drop: float = 0.0,
        *,
        sampler: str | None = None,
        schedules: tuple[ScheduleSpec, ...] | None = None,
        engine: str | None = None,
    ) -> CellAggregate:
        """The first aggregate matching the given coordinates.

        The variant axes are filters: ``None`` matches any value, so
        single-variant sweeps keep the historical two-argument lookup.
        """
        for cell in self.cells:
            if cell.size != size or cell.drop != drop:
                continue
            if sampler is not None and cell.sampler != sampler:
                continue
            if schedules is not None and cell.schedules != schedules:
                continue
            if engine is not None and cell.engine != engine:
                continue
            return cell
        coordinate = f"size={size}, drop={drop}"
        for name, value in (
            ("sampler", sampler),
            ("schedules", schedules),
            ("engine", engine),
        ):
            if value is not None:
                coordinate += f", {name}={value!r}"
        raise KeyError(f"no cell ({coordinate}) in sweep")

    def leaf_curves(self) -> list[Series]:
        """Mean missing-leaf curves, one per cell (figure order)."""
        return [cell.mean_leaf for cell in self.cells]

    def prefix_curves(self) -> list[Series]:
        """Mean missing-prefix curves, one per cell (figure order)."""
        return [cell.mean_prefix for cell in self.cells]

    def to_dict(self) -> dict:
        """Stable primitive representation of the whole sweep.

        Two sweeps with the same base seed serialize to identical
        bytes (e.g. via ``json.dumps(..., sort_keys=True)``) no matter
        how many workers executed them.
        """
        return {"cells": [cell.to_dict() for cell in self.cells]}


def merge_columns(columns: Sequence[RunColumns]) -> SweepAggregate:
    """Fold columnar shard outcomes into per-cell aggregates.

    Shards are grouped by their full grid cell; cells appear in
    first-shard order and replicas within a cell in shard order, so the
    output is a pure function of the (deterministically seeded) inputs.
    The fold reads flat buffers and counter tuples only -- per-cycle
    sample objects are never rebuilt.
    """
    if not columns:
        raise ValueError("cannot merge an empty result list")
    ordered = sorted(columns, key=lambda c: c.shard)
    by_cell: dict[tuple, list[RunColumns]] = {}
    for run in ordered:
        by_cell.setdefault(run.cell, []).append(run)

    cells: list[CellAggregate] = []
    for (size, drop, sampler, schedules, engine), runs in by_cell.items():
        label = cell_label(size, drop, sampler, schedules, engine)
        converged = [
            r.cycles_to_converge for r in runs if r.converged
        ]
        counters = {name: 0 for name in TRANSPORT_COUNTERS}
        for run in runs:
            for name, value in zip(TRANSPORT_COUNTERS, run.transport, strict=True):
                counters[name] += value
        cells.append(
            CellAggregate(
                size=size,
                drop=drop,
                sampler=sampler,
                schedules=schedules,
                engine=engine,
                runs=len(runs),
                converged_runs=len(converged),
                cycles=summarize(converged) if converged else None,
                mean_leaf=mean_series(
                    label,
                    [
                        Series.from_pairs(label, r.leaf_series())
                        for r in runs
                    ],
                ),
                mean_prefix=mean_series(
                    label,
                    [
                        Series.from_pairs(label, r.prefix_series())
                        for r in runs
                    ],
                ),
                transport=tuple(sorted(counters.items())),
            )
        )
    return SweepAggregate(cells=tuple(cells))


def merge_results(results: Sequence[RunResult]) -> SweepAggregate:
    """Fold rich shard results into per-cell aggregates.

    The legacy object-transport entry point: each
    :class:`RunResult` is flattened through
    :meth:`RunColumns.from_run_result` and folded by
    :func:`merge_columns`, so both transports share one merge and
    produce byte-identical aggregates.
    """
    if not results:
        raise ValueError("cannot merge an empty result list")
    return merge_columns(
        [RunColumns.from_run_result(run) for run in results]
    )


def throughput_summary(
    results: Sequence[object],
) -> Summary | None:
    """Per-shard cycles/sec summary (``None`` for empty input).

    Accepts both :class:`RunResult` and :class:`RunColumns` sequences
    (each exposes ``wall_seconds`` and ``cycles_per_second``).
    Reported separately from the merge because wall-clock timing must
    not contaminate the deterministic aggregates.
    """
    rates = [
        r.cycles_per_second  # type: ignore[attr-defined]
        for r in results
        if r.wall_seconds > 0  # type: ignore[attr-defined]
    ]
    if not rates:
        return None
    return summarize(rates)


class _CurveFold:
    """Incremental pointwise-mean accumulator for one cell's curves.

    Reproduces :func:`~repro.analysis.series.mean_series` bit-for-bit
    while holding only the merged x grid and one running total per
    grid point -- never the folded curves themselves.

    The exactness argument: the batch fold adds each curve's step
    value at every union x, in curve order.  Folding curve k before
    the union grid is complete is safe because a grid point introduced
    later lies strictly between two existing grid points (or outside
    the grid), where every already-folded curve's step function is
    constant -- so the running total at the new point is bitwise equal
    to the total at its predecessor (same floats added in the same
    order), and can simply be copied.
    """

    __slots__ = ("xs", "totals", "count")

    def __init__(self) -> None:
        self.xs: list[float] = []
        self.totals: list[float] = []
        self.count = 0

    def fold(self, label: str, pairs: Sequence[tuple[float, float]]) -> None:
        """Fold one curve (mirrors ``Series.from_pairs`` validation)."""
        points = sorted(pairs)
        if not points:
            raise ValueError(f"series {label!r} is empty")
        for before, after in zip(points, points[1:], strict=False):
            if before[0] == after[0]:
                raise ValueError(
                    f"series {label!r} has duplicate x value {before[0]!r}"
                )
        self._extend_grid(points)
        pos = 0  # points consumed: points[pos-1] is the step value
        n = len(points)
        for i, x in enumerate(self.xs):
            while pos < n and points[pos][0] <= x:
                pos += 1
            self.totals[i] += points[pos - 1][1] if pos else points[0][1]
        self.count += 1

    def _extend_grid(self, points: list[tuple[float, float]]) -> None:
        """Merge the new curve's x values into the grid, copying the
        step-equivalent running totals for inserted points."""
        if not self.xs:
            self.xs = [x for x, _ in points]
            self.totals = [0.0] * len(points)
            return
        xs, totals = self.xs, self.totals
        merged_x: list[float] = []
        merged_t: list[float] = []
        i = j = 0
        while i < len(xs) or j < len(points):
            if i < len(xs) and (
                j >= len(points) or xs[i] <= points[j][0]
            ):
                if j < len(points) and xs[i] == points[j][0]:
                    j += 1
                merged_x.append(xs[i])
                merged_t.append(totals[i])
                i += 1
            else:
                # New grid point: before the first old point every
                # folded curve clamps to its first y, which is exactly
                # the total at the old first point; anywhere else the
                # step values equal those at the predecessor.
                merged_x.append(points[j][0])
                merged_t.append(merged_t[-1] if merged_t else totals[0])
                j += 1
        self.xs, self.totals = merged_x, merged_t

    def mean(self, label: str) -> Series:
        """The folded mean curve (identical to ``mean_series``)."""
        scale = 1.0 / self.count
        return Series(
            label=label,
            points=tuple(
                (x, total * scale)
                for x, total in zip(self.xs, self.totals, strict=True)
            ),
        )


class CellFold:
    """Streaming fold of one grid cell's replicas.

    Runs are *folded* strictly in replica order (the order the batch
    fold processes them, since replicas are the innermost expansion
    axis); arrivals that overtake a slower earlier replica wait in a
    pending window sized by the scheduling skew, not the replica
    count.  Once folded, a run's buffers are dropped -- the fold holds
    the merged curve grid, the transport counter sums, and one scalar
    per converged replica (the exact median needs the values).

    Degenerate grids can expand two *identical* cell coordinates (e.g.
    a smoke rescaling clamping distinct join-burst schedules to the
    same spec), so one fold may legitimately see replicas ``0..R-1``
    several times.  Such blocks carry identical seeds -- the cell seed
    depends only on size/drop/replica -- hence byte-identical run
    values, so the fold cycles the replica cursor back to 0 for each
    block and stays bitwise equal to the batch fold's shard order.
    The wrap only happens once the cell is known complete (at
    :meth:`finalize`, or when the expected arrival count is reached),
    because mid-sweep there is no way to tell "the block ended" from
    "a replica is still in flight".
    """

    def __init__(self, cell: CellKey) -> None:
        self.cell = cell
        self.first_shard: int | None = None
        #: replica index -> runs waiting to fold (more than one entry
        #: per replica only for collapsed duplicate-coordinate cells).
        self._pending: dict[int, list[RunColumns]] = {}
        self._pending_count = 0
        self._seen_shards: set = set()
        self._next = 0
        self._folded = 0
        self._converged: list[float] = []
        self._counters = {name: 0 for name in TRANSPORT_COUNTERS}
        self._leaf = _CurveFold()
        self._prefix = _CurveFold()
        self._final: CellAggregate | None = None

    @property
    def label(self) -> str:
        """The cell's display label."""
        return cell_label(*self.cell)

    @property
    def runs(self) -> int:
        """Runs folded so far (pending arrivals excluded)."""
        return self._folded

    @property
    def arrivals(self) -> int:
        """Runs accepted so far (folded plus pending)."""
        return self._folded + self._pending_count

    @property
    def pending(self) -> tuple[int, ...]:
        """Replica indices waiting for an earlier replica to arrive."""
        return tuple(sorted(self._pending))

    def add(self, run: RunColumns) -> None:
        """Accept one replica (any arrival order)."""
        if run.cell != self.cell:
            raise ValueError(
                f"run from cell {cell_label(*run.cell)!r} folded into "
                f"cell {self.label!r}"
            )
        if self._final is not None:
            raise ValueError(f"cell {self.label!r} is already finalized")
        if run.shard in self._seen_shards:
            raise ValueError(
                f"duplicate replica {run.replica} (shard {run.shard}) "
                f"for cell {self.label!r}"
            )
        self._seen_shards.add(run.shard)
        self._pending.setdefault(run.replica, []).append(run)
        self._pending_count += 1
        self._drain(allow_wrap=False)

    def _drain(self, *, allow_wrap: bool) -> None:
        """Fold every pending run whose turn has come.

        The cursor advances through replica indices; with *allow_wrap*
        (cell known complete) it cycles back to 0 for the next
        duplicate-coordinate block instead of stopping.
        """
        while self._pending:
            bucket = self._pending.get(self._next)
            if bucket:
                bucket.sort(key=lambda run: run.shard)
                self._fold(bucket.pop(0))
                if not bucket:
                    del self._pending[self._next]
                self._next += 1
                continue
            if not allow_wrap:
                return
            if max(self._pending) >= self._next:
                raise ValueError(
                    f"cell {self.label!r} is incomplete: replica "
                    f"{self._next} never arrived but replicas "
                    f"{self.pending} did"
                )
            self._next = 0

    def _fold(self, run: RunColumns) -> None:
        shard = run.shard
        if self.first_shard is None or shard < self.first_shard:
            self.first_shard = shard
        if run.converged:
            self._converged.append(run.cycles_to_converge)
        for name, value in zip(TRANSPORT_COUNTERS, run.transport, strict=True):
            self._counters[name] += value
        label = self.label
        self._leaf.fold(label, run.leaf_series())
        self._prefix.fold(label, run.prefix_series())
        self._folded += 1
        self._pending_count -= 1

    def finalize(self) -> CellAggregate:
        """The cell's merged statistics (idempotent once complete)."""
        if self._final is not None:
            return self._final
        self._drain(allow_wrap=True)
        if not self._folded:
            raise ValueError(f"cell {self.label!r} has no runs to merge")
        size, drop, sampler, schedules, engine = self.cell
        self._final = CellAggregate(
            size=size,
            drop=drop,
            sampler=sampler,
            schedules=schedules,
            engine=engine,
            runs=self._folded,
            converged_runs=len(self._converged),
            cycles=(
                summarize(self._converged) if self._converged else None
            ),
            mean_leaf=self._leaf.mean(self.label),
            mean_prefix=self._prefix.mean(self.label),
            transport=tuple(sorted(self._counters.items())),
        )
        return self._final


class StreamingMerge:
    """Incremental sweep merge: fold shard outcomes as they arrive.

    Feed every arriving :class:`RunColumns` to :meth:`add` (any
    order); :meth:`finalize` returns a :class:`SweepAggregate`
    byte-identical to :func:`merge_columns` over the same runs.

    Parameters
    ----------
    expected:
        Optional map of cell coordinate -> run count (derived from the
        grid expansion).  Required for cell-completion callbacks: a
        cell completes when its arrival count reaches the expected
        count.  When given, arrivals from unknown cells are rejected.
    on_cell:
        Called as ``on_cell(cell, first_shard, aggregate)`` the moment
        a cell completes -- the checkpoint journal hook.  Requires
        *expected*.
    """

    def __init__(
        self,
        *,
        expected: dict[CellKey, int] | None = None,
        on_cell: Callable[[CellKey, int, CellAggregate], None] | None = None,
    ) -> None:
        if on_cell is not None and expected is None:
            raise ValueError(
                "on_cell needs expected replica counts: completion is "
                "unknowable without them"
            )
        self._expected = dict(expected) if expected is not None else None
        self._on_cell = on_cell
        self._folds: dict[CellKey, CellFold] = {}
        self._preloaded: dict[CellKey, tuple[int, CellAggregate]] = {}

    @property
    def preloaded_cells(self) -> int:
        """Cells restored via :meth:`preload` (checkpoint resume)."""
        return len(self._preloaded)

    def preload(self, first_shard: int, aggregate: CellAggregate) -> None:
        """Install an already-merged cell (restored from a checkpoint).

        *first_shard* is the cell's first shard index in the original
        grid expansion; it restores the cell's position in the final
        aggregate's cell order.
        """
        cell: CellKey = (
            aggregate.size,
            aggregate.drop,
            aggregate.sampler,
            aggregate.schedules,
            aggregate.engine,
        )
        if cell in self._preloaded or cell in self._folds:
            raise ValueError(
                f"cell {cell_label(*cell)!r} is already present"
            )
        self._preloaded[cell] = (first_shard, aggregate)

    def add(self, run: RunColumns) -> None:
        """Fold one arriving shard outcome."""
        cell = run.cell
        if cell in self._preloaded:
            raise ValueError(
                f"cell {cell_label(*cell)!r} was restored from a "
                "checkpoint; refusing to fold new runs into it"
            )
        if self._expected is not None and cell not in self._expected:
            raise ValueError(
                f"unexpected cell {cell_label(*cell)!r}: not in the "
                "expected grid"
            )
        fold = self._folds.get(cell)
        if fold is None:
            fold = self._folds[cell] = CellFold(cell)
        fold.add(run)
        if (
            self._expected is not None
            and fold.arrivals == self._expected[cell]
        ):
            aggregate = fold.finalize()
            if self._on_cell is not None:
                self._on_cell(cell, fold.first_shard, aggregate)

    def finalize(self) -> SweepAggregate:
        """Merge everything folded so far, in first-shard cell order.

        Raises if nothing was folded (mirroring
        :func:`merge_columns`) or if any cell has an out-of-order gap
        (a replica that never arrived while later ones did).
        """
        entries: list[tuple[int, CellAggregate]] = list(
            self._preloaded.values()
        )
        for fold in self._folds.values():
            entries.append((fold.first_shard, fold.finalize()))
        if not entries:
            raise ValueError("cannot merge an empty result list")
        entries.sort(key=lambda entry: entry[0])
        return SweepAggregate(
            cells=tuple(aggregate for _, aggregate in entries)
        )
