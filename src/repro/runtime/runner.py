"""The sweep runner: replica-level parallelism over experiment grids.

The paper's results are sweeps of many *independent* seeded runs --
the classic embarrassingly parallel bootstrap workload.  Following the
replica-parallel design of "Parallel Optimisation of Bootstrapping in
R" (Sloan et al.), :class:`SweepRunner` shards a grid of
:class:`~repro.runtime.spec.RunSpec` objects across a
``concurrent.futures.ProcessPoolExecutor``:

* ``workers <= 1`` executes shards inline, in submission order;
* ``workers > 1`` dispatches shards to worker processes and re-orders
  the results by shard index.

Both paths run :func:`~repro.runtime.spec.execute_run` on each spec,
and every seed is derived before dispatch, so the merged statistics of
a sweep are **byte-identical** for any worker count (this invariant is
pinned by ``tests/test_runtime.py``).

Shard failures surface as :class:`ShardError`, naming the failing
shard and preserving the original exception as ``__cause__``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..simulator.experiment import ENGINE_KINDS, ExperimentSpec
from ..simulator.network import NetworkModel, RELIABLE
from ..simulator.random_source import derive_seed
from .spec import RunResult, RunSpec, ScheduleSpec, execute_run, replica_seed

__all__ = [
    "ShardError",
    "SweepGrid",
    "SweepRunner",
    "expand_repeats",
]


class ShardError(RuntimeError):
    """One shard of a sweep failed.

    The original worker exception is chained as ``__cause__``.
    """

    def __init__(self, spec: RunSpec, cause: BaseException) -> None:
        super().__init__(
            f"shard {spec.shard} (size={spec.size}, drop={spec.drop}, "
            f"replica={spec.replica}, seed={spec.experiment.seed}) "
            f"failed: {cause!r}"
        )
        self.spec = spec


@dataclass(frozen=True)
class SweepGrid:
    """A declarative experiment grid: sizes x drop rates x replicas.

    Parameters
    ----------
    sizes:
        Network sizes to sweep.
    drop_rates:
        Uniform message-drop probabilities to sweep (0.0 = reliable).
    replicas:
        Independent repeats per grid cell (the paper's "independent
        experiments").
    base_seed:
        Master seed; every cell and replica derives its own seed from
        it deterministically.
    max_cycles:
        Cycle budget per run.
    config:
        Protocol parameters shared by all runs.
    sampler:
        Peer-sampling backend (``"oracle"`` or ``"newscast"``).
    schedules:
        Failure schedules applied to every run (rebuilt fresh per run).
    engine:
        Cycle-engine implementation (``"reference"``, ``"fast"``, or
        ``"vector"``).  Reference and fast produce identical
        trajectories, so switching between them only changes how fast
        the sweep runs; the vector engine is deterministic per seed
        but statistically rather than bit-level equivalent.
    """

    sizes: Tuple[int, ...]
    drop_rates: Tuple[float, ...] = (0.0,)
    replicas: int = 1
    base_seed: int = 1
    max_cycles: int = 60
    config: BootstrapConfig = PAPER_CONFIG
    sampler: str = "oracle"
    schedules: Tuple[ScheduleSpec, ...] = ()
    engine: str = "reference"

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("grid needs at least one size")
        if not self.drop_rates:
            raise ValueError("grid needs at least one drop rate")
        if self.replicas < 1:
            raise ValueError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"engine must be one of {ENGINE_KINDS}, got {self.engine!r}"
            )

    def cell_seed(self, size: int, drop: float) -> int:
        """Deterministic per-cell seed (independent of expansion
        order and worker count)."""
        return derive_seed(self.base_seed, f"sweep:{size}:{drop!r}")

    def expand(self) -> List[RunSpec]:
        """Expand the grid into its ordered list of shards."""
        specs: List[RunSpec] = []
        shard = 0
        for size in self.sizes:
            for drop in self.drop_rates:
                cell_seed = self.cell_seed(size, drop)
                network = (
                    RELIABLE
                    if drop == 0.0
                    else NetworkModel(drop_probability=drop)
                )
                for replica in range(self.replicas):
                    experiment = ExperimentSpec(
                        size=size,
                        seed=replica_seed(cell_seed, replica),
                        config=self.config,
                        network=network,
                        sampler=self.sampler,
                        max_cycles=self.max_cycles,
                        label=f"N={size} drop={drop:g}",
                        engine=self.engine,
                    )
                    specs.append(
                        RunSpec(
                            experiment=experiment,
                            shard=shard,
                            replica=replica,
                            schedules=self.schedules,
                        )
                    )
                    shard += 1
        return specs

    def __len__(self) -> int:
        return len(self.sizes) * len(self.drop_rates) * self.replicas


def expand_repeats(
    spec: ExperimentSpec,
    repeats: int,
    schedules: Tuple[ScheduleSpec, ...] = (),
    first_shard: int = 0,
) -> List[RunSpec]:
    """Expand independent repeats of one :class:`ExperimentSpec`.

    Seed derivation matches the historical ``run_repeats`` exactly
    (``derive_seed(spec.seed, ("repeat", index))``), so existing seeded
    sweeps keep their trajectories when moved onto the runner.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    return [
        RunSpec(
            experiment=spec.with_seed(replica_seed(spec.seed, index)),
            shard=first_shard + index,
            replica=index,
            schedules=schedules,
        )
        for index in range(repeats)
    ]


class SweepRunner:
    """Executes a list of shards, sequentially or across processes.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs shards inline (no subprocesses, no pickling
        requirements); ``N > 1`` fans out over a process pool of ``N``
        workers.
    executor_factory:
        Override for the pool constructor (testing hook); receives
        ``max_workers`` and must return a ``concurrent.futures``
        executor.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        executor_factory: Optional[Callable[[int], object]] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._executor_factory = executor_factory

    @property
    def parallel(self) -> bool:
        """Whether this runner dispatches to worker processes."""
        return self.workers > 1

    def run(
        self,
        specs: Iterable[RunSpec],
        *,
        schedules_factory: Optional[Callable[[], Sequence[object]]] = None,
    ) -> List[RunResult]:
        """Execute every shard and return results in shard order.

        Sequential and parallel paths share :func:`execute_run`; the
        only difference is where it runs.  The first failing shard (in
        submission order) raises :class:`ShardError`.
        """
        ordered = list(specs)
        if not self.parallel:
            return [
                self._guarded(spec, schedules_factory) for spec in ordered
            ]
        if schedules_factory is not None:
            raise ValueError(
                "schedules_factory is an in-process hook and cannot "
                "cross process boundaries; encode schedules as "
                "ScheduleSpec entries on the RunSpec instead"
            )
        if not ordered:
            return []
        factory = self._executor_factory or (
            lambda max_workers: ProcessPoolExecutor(max_workers=max_workers)
        )
        # Never spawn more processes than there are shards to run: a
        # sweep of 3 shards on workers=32 costs 3 interpreter starts,
        # not 32 idle ones.
        max_workers = min(self.workers, len(ordered))
        results: List[RunResult] = []
        with factory(max_workers) as pool:  # type: ignore[attr-defined]
            futures = [pool.submit(execute_run, spec) for spec in ordered]
            try:
                for spec, future in zip(ordered, futures):
                    try:
                        results.append(future.result())
                    except Exception as exc:
                        raise ShardError(spec, exc) from exc
            except ShardError:
                # Fail fast: one shutdown call cancels every queued
                # shard atomically and refuses new submissions, so the
                # error surfaces as soon as the shards already running
                # finish (per-future cancel() would race re-dispatch
                # and still sit through the queue).
                pool.shutdown(cancel_futures=True)
                raise
        return results

    def run_grid(self, grid: SweepGrid) -> List[RunResult]:
        """Expand *grid* and run every shard."""
        return self.run(grid.expand())

    @staticmethod
    def _guarded(
        spec: RunSpec,
        schedules_factory: Optional[Callable[[], Sequence[object]]],
    ) -> RunResult:
        """Inline execution with the same failure surface as the pool
        path."""
        try:
            return execute_run(spec, schedules_factory)
        except Exception as exc:
            raise ShardError(spec, exc) from exc

    def __repr__(self) -> str:
        return f"SweepRunner(workers={self.workers})"
