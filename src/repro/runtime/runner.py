"""The sweep runner: replica-level parallelism over experiment grids.

The paper's results are sweeps of many *independent* seeded runs --
the classic embarrassingly parallel bootstrap workload.  Following the
replica-parallel design of "Parallel Optimisation of Bootstrapping in
R" (Sloan et al.), :class:`SweepRunner` shards a grid of
:class:`~repro.runtime.spec.RunSpec` objects across a
``concurrent.futures.ProcessPoolExecutor``:

* ``workers <= 1`` executes shards inline, in submission order;
* ``workers > 1`` dispatches shards to worker processes and re-orders
  the results by shard index.

Both paths run :func:`~repro.runtime.spec.execute_run` on each spec,
and every seed is derived before dispatch, so the merged statistics of
a sweep are **byte-identical** for any worker count (this invariant is
pinned by ``tests/test_runtime.py``).

Shard failures surface as :class:`ShardError`, naming the failing
shard and preserving the original exception as ``__cause__``.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..simulator.bootstrap_sim import SAMPLER_KINDS
from ..simulator.experiment import ENGINE_KINDS, ExperimentSpec
from ..simulator.network import NetworkModel, RELIABLE
from ..simulator.random_source import derive_seed
from .columns import RunColumns, execute_run_columns
from .shm import (
    ShmRing,
    execute_run_columns_shm,
    ring_slots,
    shm_available,
    slot_bytes_for,
    transport,
)
from .spec import RunResult, RunSpec, ScheduleSpec, execute_run, replica_seed

__all__ = [
    "ShardError",
    "SweepGrid",
    "SweepRunner",
    "expand_repeats",
]


class ShardError(RuntimeError):
    """One shard of a sweep failed.

    The original worker exception is chained as ``__cause__``.
    """

    def __init__(self, spec: RunSpec, cause: BaseException) -> None:
        super().__init__(
            f"shard {spec.shard} (size={spec.size}, drop={spec.drop}, "
            f"replica={spec.replica}, seed={spec.experiment.seed}) "
            f"failed: {cause!r}"
        )
        self.spec = spec


@dataclass(frozen=True)
class SweepGrid:
    """A declarative multi-axis experiment grid.

    The full cartesian product is
    ``sizes x drop_rates x samplers x schedule_sets x engines x
    replicas``; every point becomes one :class:`RunSpec`.  The three
    variant axes (samplers, schedule sets, engines) default to a single
    value each, given by the legacy singular fields, so the historical
    ``sizes x drops x replicas`` grids keep their exact expansion.

    Parameters
    ----------
    sizes:
        Network sizes to sweep.
    drop_rates:
        Uniform message-drop probabilities to sweep (0.0 = reliable).
    replicas:
        Independent repeats per grid cell (the paper's "independent
        experiments").  Either one count for every size, or a tuple
        aligned with *sizes* (the paper scales repeats down with size:
        50/10/4 at 2^14/2^16/2^18).
    base_seed:
        Master seed; every cell and replica derives its own seed from
        it deterministically.
    max_cycles:
        Cycle budget per run.
    config:
        Protocol parameters shared by all runs.
    sampler:
        Peer-sampling backend (``"oracle"`` or ``"newscast"``) when the
        sampler axis is not swept.
    schedules:
        Failure schedules applied to every run (rebuilt fresh per run)
        when the schedule axis is not swept.
    engine:
        Cycle-engine implementation (``"reference"``, ``"fast"``, or
        ``"vector"``) when the engine axis is not swept.  Reference and
        fast produce identical trajectories, so switching between them
        only changes how fast the sweep runs; the vector engine is
        deterministic per seed but statistically rather than bit-level
        equivalent.
    samplers:
        Sweep the sampler axis over these backends (mutually exclusive
        with a non-default *sampler*).
    schedule_sets:
        Sweep the schedule axis: each element is one complete schedule
        set -- possibly empty, e.g. ``((), (churn_spec,))`` for a
        with/without-churn comparison (mutually exclusive with a
        non-empty *schedules*).
    engines:
        Sweep the engine axis over these implementations (mutually
        exclusive with a non-default *engine*).
    stop_when_perfect:
        Whether runs end at the first perfect measurement (the paper's
        convergence plots) or exhaust the cycle budget (steady-state
        quality measurements, e.g. under churn).

    Seeds derive from the *stochastic* coordinates only (size, drop,
    replica).  The variant axes deliberately share them: sweeping
    samplers, schedules, or engines compares variants on identical
    seeded populations (paired comparisons), and a legacy grid keeps
    its historical seeds no matter how many variant axes exist.
    """

    sizes: tuple[int, ...]
    drop_rates: tuple[float, ...] = (0.0,)
    replicas: int | tuple[int, ...] = 1
    base_seed: int = 1
    max_cycles: int = 60
    config: BootstrapConfig = PAPER_CONFIG
    sampler: str = "oracle"
    schedules: tuple[ScheduleSpec, ...] = ()
    engine: str = "reference"
    samplers: tuple[str, ...] | None = None
    schedule_sets: tuple[tuple[ScheduleSpec, ...], ...] | None = None
    engines: tuple[str, ...] | None = None
    stop_when_perfect: bool = True

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("grid needs at least one size")
        if len(set(self.sizes)) != len(self.sizes):
            # Duplicate sizes would share cell seeds (identical runs)
            # and collapse into one merged cell -- never what a sweep
            # means -- and would break the positional replicas-per-size
            # mapping silently.
            raise ValueError(f"grid sizes must be distinct, got {self.sizes}")
        if not self.drop_rates:
            raise ValueError("grid needs at least one drop rate")
        self._validate_replicas()
        self._validate_axis(
            "sampler", self.sampler, "oracle", "samplers", self.samplers,
            SAMPLER_KINDS,
        )
        self._validate_axis(
            "engine", self.engine, "reference", "engines", self.engines,
            ENGINE_KINDS,
        )
        if self.schedule_sets is not None:
            if self.schedules:
                raise ValueError(
                    "give either schedules (one set for every run) or "
                    "schedule_sets (the swept axis), not both"
                )
            if not self.schedule_sets:
                raise ValueError("schedule_sets needs at least one set")

    def _validate_replicas(self) -> None:
        """Replicas: one count, or one count per size."""
        if isinstance(self.replicas, int):
            if self.replicas < 1:
                raise ValueError(
                    f"replicas must be >= 1, got {self.replicas}"
                )
            return
        counts = tuple(self.replicas)  # type: ignore[arg-type]
        if len(counts) != len(self.sizes):
            raise ValueError(
                f"per-size replicas must align with sizes: got "
                f"{len(counts)} counts for {len(self.sizes)} sizes"
            )
        if any((not isinstance(c, int)) or c < 1 for c in counts):
            raise ValueError(
                f"per-size replicas must be integers >= 1, got {counts!r}"
            )

    @staticmethod
    def _validate_axis(
        singular_name: str,
        singular: str,
        default: str,
        plural_name: str,
        plural: tuple[str, ...] | None,
        kinds: Sequence[str],
    ) -> None:
        """One variant axis: the singular field or the swept tuple."""
        if plural is None:
            values: tuple[str, ...] = (singular,)
        else:
            if singular != default:
                raise ValueError(
                    f"give either {singular_name}= or {plural_name}=, "
                    "not both"
                )
            if not plural:
                raise ValueError(
                    f"{plural_name} needs at least one entry"
                )
            values = plural
        for value in values:
            if value not in kinds:
                raise ValueError(
                    f"{singular_name} must be one of {tuple(kinds)}, "
                    f"got {value!r}"
                )

    # -- effective axes ------------------------------------------------

    @property
    def sampler_axis(self) -> tuple[str, ...]:
        """The sampler variants this grid sweeps."""
        return self.samplers if self.samplers is not None else (self.sampler,)

    @property
    def schedule_axis(self) -> tuple[tuple[ScheduleSpec, ...], ...]:
        """The schedule-set variants this grid sweeps."""
        if self.schedule_sets is not None:
            return self.schedule_sets
        return (self.schedules,)

    @property
    def engine_axis(self) -> tuple[str, ...]:
        """The engine variants this grid sweeps."""
        return self.engines if self.engines is not None else (self.engine,)

    def replicas_for(self, size: int) -> int:
        """Replica count of *size*'s cells (per-size or uniform)."""
        if isinstance(self.replicas, int):
            return self.replicas
        return tuple(self.replicas)[self.sizes.index(size)]  # type: ignore

    def cell_seed(self, size: int, drop: float) -> int:
        """Deterministic per-cell seed (independent of expansion
        order and worker count).  Variant axes share it -- see the
        class docstring's paired-comparison rule."""
        return derive_seed(self.base_seed, f"sweep:{size}:{drop!r}")

    def expand(self) -> list[RunSpec]:
        """Expand the grid into its ordered list of shards.

        Axis nesting, outermost first: size, drop, sampler, schedule
        set, engine, replica.  The order is part of the contract --
        shard indices, and therefore merged-cell order, are a pure
        function of the grid.
        """
        specs: list[RunSpec] = []
        shard = 0
        for size in self.sizes:
            replicas = self.replicas_for(size)
            for drop in self.drop_rates:
                cell_seed = self.cell_seed(size, drop)
                network = (
                    RELIABLE
                    if drop == 0.0
                    else NetworkModel(drop_probability=drop)
                )
                for sampler in self.sampler_axis:
                    for schedules in self.schedule_axis:
                        for engine in self.engine_axis:
                            for replica in range(replicas):
                                experiment = ExperimentSpec(
                                    size=size,
                                    seed=replica_seed(cell_seed, replica),
                                    config=self.config,
                                    network=network,
                                    sampler=sampler,
                                    max_cycles=self.max_cycles,
                                    stop_when_perfect=(
                                        self.stop_when_perfect
                                    ),
                                    label=f"N={size} drop={drop:g}",
                                    engine=engine,
                                )
                                specs.append(
                                    RunSpec(
                                        experiment=experiment,
                                        shard=shard,
                                        replica=replica,
                                        schedules=schedules,
                                    )
                                )
                                shard += 1
        return specs

    def __len__(self) -> int:
        per_cell = (
            len(self.sampler_axis)
            * len(self.schedule_axis)
            * len(self.engine_axis)
        )
        total_replicas = sum(
            self.replicas_for(size) for size in self.sizes
        )
        return total_replicas * len(self.drop_rates) * per_cell

    # -- declarative round-trip ----------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        data: dict[str, object] = {
            "sizes": list(self.sizes),
            "drop_rates": list(self.drop_rates),
            "replicas": (
                self.replicas
                if isinstance(self.replicas, int)
                else list(self.replicas)  # type: ignore[arg-type]
            ),
            "base_seed": self.base_seed,
            "max_cycles": self.max_cycles,
            "config": {
                "id_bits": self.config.id_bits,
                "digit_bits": self.config.digit_bits,
                "entries_per_slot": self.config.entries_per_slot,
                "leaf_set_size": self.config.leaf_set_size,
                "random_samples": self.config.random_samples,
                "cycle_length": self.config.cycle_length,
            },
            "samplers": list(self.sampler_axis),
            "schedule_sets": [
                [spec.to_dict() for spec in schedule_set]
                for schedule_set in self.schedule_axis
            ],
            "engines": list(self.engine_axis),
            "stop_when_perfect": self.stop_when_perfect,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> SweepGrid:
        """Rebuild a grid from :meth:`to_dict` output.

        The round-trip normalises the legacy singular fields onto the
        swept axes, so ``from_dict(g.to_dict())`` expands identically
        to ``g`` (shard list equality), though it need not compare
        equal as a dataclass when ``g`` used the singular spelling.
        """
        replicas = data.get("replicas", 1)
        if not isinstance(replicas, int):
            replicas = tuple(replicas)  # type: ignore[arg-type]
        config = BootstrapConfig(**data.get("config", {}))  # type: ignore
        # Hand-authored documents may use the singular constructor
        # spellings; honour them rather than silently defaulting (a
        # {"engine": "vector"} grid must not quietly come back as a
        # reference-engine grid), with the same both-given rejection
        # the constructor applies.
        for singular, plural in (
            ("sampler", "samplers"),
            ("engine", "engines"),
            ("schedules", "schedule_sets"),
        ):
            if singular in data:
                if plural in data:
                    raise ValueError(
                        f"give either {singular!r} or {plural!r} in a "
                        "grid document, not both"
                    )
                # One singular value is a one-variant axis ("engine":
                # "vector" -> engines: ["vector"]; a "schedules" list
                # is one schedule set -> schedule_sets: [that list]).
                data = {**data, plural: [data[singular]]}
        return cls(
            sizes=tuple(data["sizes"]),  # type: ignore[arg-type]
            drop_rates=tuple(data.get("drop_rates", (0.0,))),  # type: ignore
            replicas=replicas,
            base_seed=int(data.get("base_seed", 1)),  # type: ignore
            max_cycles=int(data.get("max_cycles", 60)),  # type: ignore
            config=config,
            samplers=tuple(data.get("samplers", ("oracle",))),  # type: ignore
            schedule_sets=tuple(
                tuple(ScheduleSpec.from_dict(spec) for spec in schedule_set)
                for schedule_set in data.get("schedule_sets", [[]])
            ),  # type: ignore[arg-type]
            engines=tuple(
                data.get("engines", ("reference",))  # type: ignore
            ),
            stop_when_perfect=bool(data.get("stop_when_perfect", True)),
        )


def expand_repeats(
    spec: ExperimentSpec,
    repeats: int,
    schedules: tuple[ScheduleSpec, ...] = (),
    first_shard: int = 0,
) -> list[RunSpec]:
    """Expand independent repeats of one :class:`ExperimentSpec`.

    Seed derivation matches the historical ``run_repeats`` exactly
    (``derive_seed(spec.seed, ("repeat", index))``), so existing seeded
    sweeps keep their trajectories when moved onto the runner.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    return [
        RunSpec(
            experiment=spec.with_seed(replica_seed(spec.seed, index)),
            shard=first_shard + index,
            replica=index,
            schedules=schedules,
        )
        for index in range(repeats)
    ]


class SweepRunner:
    """Executes a list of shards, sequentially or across processes.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs shards inline (no subprocesses, no pickling
        requirements); ``N > 1`` fans out over a process pool of ``N``
        workers.
    executor_factory:
        Override for the pool constructor (testing hook); receives
        ``max_workers`` and must return a ``concurrent.futures``
        executor.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        executor_factory: Callable[[int], object] | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._executor_factory = executor_factory

    @property
    def parallel(self) -> bool:
        """Whether this runner dispatches to worker processes."""
        return self.workers > 1

    def run(
        self,
        specs: Iterable[RunSpec],
        *,
        schedules_factory: Callable[[], Sequence[object]] | None = None,
    ) -> list[RunResult]:
        """Execute every shard and return results in shard order.

        Sequential and parallel paths share :func:`execute_run`; the
        only difference is where it runs.  The first shard to *fail*
        (in completion order) raises :class:`ShardError` -- a slow
        healthy shard submitted earlier never delays fail-fast.
        """
        ordered = list(specs)
        if not self.parallel:
            return [
                self._guarded(spec, schedules_factory) for spec in ordered
            ]
        if schedules_factory is not None:
            raise ValueError(
                "schedules_factory is an in-process hook and cannot "
                "cross process boundaries; encode schedules as "
                "ScheduleSpec entries on the RunSpec instead"
            )
        return self._run_pool(ordered, execute_run)

    def run_columns(self, specs: Iterable[RunSpec]) -> list[RunColumns]:
        """Execute every shard on the columnar transport path.

        Identical scheduling, ordering, and failure semantics to
        :meth:`run`; the difference is what crosses the process
        boundary -- workers flatten their
        :class:`~repro.runtime.spec.RunResult` into
        :class:`~repro.runtime.columns.RunColumns` before pickling, so
        a sweep ships flat float64 buffers instead of per-cycle sample
        objects (several times fewer bytes per run; see
        ``benchmarks/bench_sweep_transport.py``).
        """
        ordered = list(specs)
        if not self.parallel:
            results: list[RunColumns] = []
            for spec in ordered:
                try:
                    results.append(execute_run_columns(spec))
                except Exception as exc:
                    raise ShardError(spec, exc) from exc
            return results
        return self._run_pool(ordered, execute_run_columns)

    def stream_columns(
        self,
        specs: Iterable[RunSpec],
        sink: Callable[[RunColumns], None],
    ) -> int:
        """Execute shards, feeding each outcome to *sink* as it lands.

        The streaming collection path: nothing is buffered here, so
        collector memory is whatever *sink* retains (a
        :class:`~repro.runtime.merge.StreamingMerge` keeps per-cell
        folds -- constant in the replica count).  On the parallel path
        outcomes arrive in **completion order**, not shard order; the
        streaming merge folds replicas back into shard order
        internally, so merged statistics stay byte-identical to
        :meth:`run_columns` + batch merge.  Returns the number of
        shards delivered; failures raise :class:`ShardError` and
        cancel queued shards.
        """
        ordered = list(specs)
        if not ordered:
            return 0
        if not self.parallel:
            for spec in ordered:
                try:
                    outcome = execute_run_columns(spec)
                except Exception as exc:
                    raise ShardError(spec, exc) from exc
                sink(outcome)
            return len(ordered)
        self._pool_as_completed(
            ordered,
            execute_run_columns,
            lambda index, outcome: sink(outcome),
        )
        return len(ordered)

    def _run_pool(self, ordered: list[RunSpec], worker: Callable) -> list:
        """Fan *ordered* out over a process pool running *worker*.

        Results come back in submission (shard) order regardless of
        completion order -- the determinism contract.
        """
        if not ordered:
            return []
        results: list = [None] * len(ordered)
        self._pool_as_completed(
            ordered,
            worker,
            lambda index, outcome: results.__setitem__(index, outcome),
        )
        return results

    def _pool_as_completed(
        self,
        ordered: list[RunSpec],
        worker: Callable,
        deliver: Callable[[int, object], None],
    ) -> None:
        """Dispatch *ordered* to a pool, delivering ``(index, outcome)``
        pairs in completion order.

        The first shard to fail raises :class:`ShardError` as soon as
        its future resolves -- collection never blocks on a slower,
        earlier-submitted shard before surfacing the error.

        Columnar dispatch honours the ``REPRO_TRANSPORT`` seam: when
        ``shm`` is requested and available, workers write their curve
        buffers into a shared-memory ring instead of pickling them
        (see :mod:`repro.runtime.shm`); otherwise -- including the
        no-numpy leg -- outcomes pickle exactly as before.
        """
        if (
            worker is execute_run_columns
            and transport() == "shm"
            and shm_available()
        ):
            self._pool_shm(ordered, deliver)
            return
        factory = self._executor_factory or (
            lambda max_workers: ProcessPoolExecutor(max_workers=max_workers)
        )
        # Never spawn more processes than there are shards to run: a
        # sweep of 3 shards on workers=32 costs 3 interpreter starts,
        # not 32 idle ones.
        max_workers = min(self.workers, len(ordered))
        with factory(max_workers) as pool:  # type: ignore[attr-defined]
            futures = {
                pool.submit(worker, spec): index
                for index, spec in enumerate(ordered)
            }
            try:
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        raise ShardError(ordered[index], exc) from exc
                    deliver(index, outcome)
            except BaseException:
                # Fail fast: one shutdown call cancels every queued
                # shard atomically and refuses new submissions, so the
                # error surfaces as soon as the shards already running
                # finish (per-future cancel() would race re-dispatch
                # and still sit through the queue).  BaseException also
                # covers a failing *sink* on the streaming path.
                pool.shutdown(cancel_futures=True)
                raise

    def _pool_shm(
        self,
        ordered: list[RunSpec],
        deliver: Callable[[int, object], None],
    ) -> None:
        """Columnar pool dispatch over the shared-memory ring.

        Scheduling differs from the pickled path in exactly one way:
        a shard is only submitted once a ring slot is free (the
        parent assigns slots, so no cross-process locking exists to
        get wrong), which makes ring exhaustion plain back-pressure.
        Completion-order delivery, fail-fast :class:`ShardError`, and
        queued-shard cancellation are identical.  The ring is
        destroyed on every exit path -- clean drain, worker crash,
        failing sink -- so no segment outlives the sweep.
        """
        factory = self._executor_factory or (
            lambda max_workers: ProcessPoolExecutor(max_workers=max_workers)
        )
        max_workers = min(self.workers, len(ordered))
        slots = min(ring_slots(max_workers), len(ordered))
        ring = ShmRing.create(slots, slot_bytes_for(ordered))
        try:
            with factory(max_workers) as pool:  # type: ignore[attr-defined]
                try:
                    pending: dict[object, tuple[int, int]] = {}
                    free = list(range(ring.slots))
                    queue = iter(enumerate(ordered))
                    head = next(queue, None)
                    while pending or head is not None:
                        while head is not None and free:
                            index, spec = head
                            slot = free.pop()
                            future = pool.submit(
                                execute_run_columns_shm,
                                spec,
                                ring.name,
                                slot,
                                ring.slot_bytes,
                            )
                            pending[future] = (index, slot)
                            head = next(queue, None)
                        done, _ = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            index, slot = pending.pop(future)
                            try:
                                outcome = future.result()
                            except Exception as exc:
                                raise ShardError(
                                    ordered[index], exc
                                ) from exc
                            # Copy the curves out before reusing the
                            # slot; delivery may fold or discard them.
                            columns = ring.restore(outcome)
                            free.append(slot)
                            deliver(index, columns)
                except BaseException:
                    pool.shutdown(cancel_futures=True)
                    raise
        finally:
            ring.destroy()

    def run_grid(self, grid: SweepGrid) -> list[RunResult]:
        """Expand *grid* and run every shard."""
        return self.run(grid.expand())

    def run_grid_columns(self, grid: SweepGrid) -> list[RunColumns]:
        """Expand *grid* and run every shard on the columnar path."""
        return self.run_columns(grid.expand())

    @staticmethod
    def _guarded(
        spec: RunSpec,
        schedules_factory: Callable[[], Sequence[object]] | None,
    ) -> RunResult:
        """Inline execution with the same failure surface as the pool
        path."""
        try:
            return execute_run(spec, schedules_factory)
        except Exception as exc:
            raise ShardError(spec, exc) from exc

    def __repr__(self) -> str:
        return f"SweepRunner(workers={self.workers})"
