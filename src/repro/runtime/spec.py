"""Process-portable run descriptions for the sweep runner.

A sweep is a grid of independent simulation runs (population sizes x
drop rates x replicas).  Each point of the grid becomes one
:class:`RunSpec` -- a frozen, picklable value that carries *everything*
a worker process needs to execute the run, and nothing else.  The
worker sends back a :class:`RunResult`, equally picklable, which the
merge step (:mod:`repro.runtime.merge`) folds into the analysis-layer
aggregates.

Two design rules keep parallel results byte-identical to sequential
ones:

* **Seeds are derived before dispatch.**  A replica's seed is a pure
  function of the base seed and its grid coordinates
  (:func:`replica_seed`), never of worker identity, scheduling order,
  or wall-clock time.
* **Schedules travel as specs, not objects.**  Failure schedules are
  stateful (they record victims as they fire), so sharing instances
  across runs would leak state between shards.  :class:`ScheduleSpec`
  describes a schedule as ``(kind, params)``; every run builds its own
  fresh instance via :meth:`ScheduleSpec.build`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..simulator.experiment import ExperimentSpec, run_experiment
from ..simulator.bootstrap_sim import SimulationResult
from ..simulator.failures import CatastrophicFailure, Churn, MassiveJoin
from ..simulator.random_source import derive_seed

__all__ = [
    "SCHEDULE_KINDS",
    "ScheduleSpec",
    "RunSpec",
    "RunResult",
    "replica_seed",
    "execute_run",
    "schedule_key",
]

#: Registry of schedule kinds a :class:`ScheduleSpec` can instantiate.
SCHEDULE_KINDS: dict[str, type] = {
    "churn": Churn,
    "catastrophe": CatastrophicFailure,
    "massive_join": MassiveJoin,
}

#: Parameter values a :class:`ScheduleSpec` accepts: the JSON scalars.
#: Anything richer (lists, dicts, arbitrary objects) would pickle and
#: hash fine but break the declarative contract -- specs must survive a
#: JSON round-trip (scenario files, CLI) and fail loudly at
#: construction, not deep inside a worker process.
_JSON_SCALARS = (bool, int, float, str)


@dataclass(frozen=True)
class ScheduleSpec:
    """Declarative, picklable description of one failure schedule.

    Parameters
    ----------
    kind:
        A key of :data:`SCHEDULE_KINDS` (``"churn"``,
        ``"catastrophe"``, ``"massive_join"``).
    params:
        Constructor keyword arguments as a sorted tuple of pairs
        (tuples rather than a dict so the spec is hashable).  Values
        must be JSON scalars (``bool``/``int``/``float``/``str`` or
        ``None``); richer values are rejected at construction.
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown schedule kind {self.kind!r}; "
                f"expected one of {sorted(SCHEDULE_KINDS)}"
            )
        for pair in self.params:
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise ValueError(
                    f"schedule params must be (name, value) pairs, "
                    f"got {pair!r}"
                )
            name, value = pair
            if not isinstance(name, str):
                raise ValueError(
                    f"schedule param names must be strings, got {name!r}"
                )
            if value is not None and not isinstance(value, _JSON_SCALARS):
                raise ValueError(
                    f"schedule param {name}={value!r} of kind "
                    f"{self.kind!r} is not a JSON scalar "
                    f"(bool/int/float/str/None), got "
                    f"{type(value).__name__}; declarative specs must "
                    "survive a JSON round-trip"
                )

    @classmethod
    def of(cls, kind: str, **params: object) -> ScheduleSpec:
        """Build a spec from keyword arguments."""
        return cls(kind=kind, params=tuple(sorted(params.items())))

    @classmethod
    def parse(cls, text: str) -> ScheduleSpec:
        """Parse the CLI shorthand ``kind:key=val,...``.

        Examples: ``churn:rate=0.01``,
        ``catastrophe:at_cycle=5,fraction=0.5``, ``massive_join``
        (no parameters).  Values are coerced ``int`` -> ``float`` ->
        ``str`` in that order; unknown kinds raise the same
        kinds-listing :class:`ValueError` as direct construction.
        """
        kind, _, body = text.strip().partition(":")
        params: dict[str, object] = {}
        if body:
            for item in body.split(","):
                name, eq, raw = item.partition("=")
                name = name.strip()
                if not name or not eq:
                    raise ValueError(
                        f"bad schedule parameter {item!r} in {text!r}; "
                        "expected kind:key=val,key=val,..."
                    )
                params[name] = _coerce_scalar(raw.strip())
        return cls.of(kind, **params)

    def build(self) -> object:
        """Instantiate a fresh schedule object for one run."""
        return SCHEDULE_KINDS[self.kind](**dict(self.params))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> ScheduleSpec:
        """Rebuild a spec from :meth:`to_dict` output."""
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ValueError(f"schedule params must be a dict, got {params!r}")
        return cls.of(str(data["kind"]), **params)


def _coerce_scalar(raw: str) -> object:
    """CLI value coercion: ``int``, else ``float``, else ``str``."""
    for convert in (int, float):
        try:
            return convert(raw)
        except ValueError:
            continue
    return raw


def schedule_key(schedules: Sequence[ScheduleSpec]) -> str:
    """Canonical compact rendering of one schedule set.

    Used as the schedules coordinate in cell labels and reports:
    ``"-"`` for the empty set, else ``kind:key=val,...`` fragments
    joined with ``+`` (e.g. ``churn:rate=0.01``).
    """
    if not schedules:
        return "-"
    fragments = []
    for spec in schedules:
        if spec.params:
            body = ",".join(f"{k}={v}" for k, v in spec.params)
            fragments.append(f"{spec.kind}:{body}")
        else:
            fragments.append(spec.kind)
    return "+".join(fragments)


@dataclass(frozen=True)
class RunSpec:
    """One shard of a sweep: a single seeded simulation run.

    Attributes
    ----------
    experiment:
        The fully-seeded :class:`ExperimentSpec` to execute.
    shard:
        Position of this run in the sweep's submission order; results
        are re-ordered by shard after parallel execution so the output
        never depends on completion order.
    replica:
        Replica index within this run's grid cell (size x drop).
    schedules:
        Failure schedules to rebuild fresh inside the worker.
    """

    experiment: ExperimentSpec
    shard: int = 0
    replica: int = 0
    schedules: tuple[ScheduleSpec, ...] = ()

    @property
    def size(self) -> int:
        """Network size of this shard's grid cell."""
        return self.experiment.size

    @property
    def drop(self) -> float:
        """Drop probability of this shard's grid cell."""
        return self.experiment.network.drop_probability

    @property
    def sampler(self) -> str:
        """Peer-sampling backend of this shard's grid cell."""
        return self.experiment.sampler

    @property
    def cell(self) -> tuple[int, float, str, tuple[ScheduleSpec, ...], str]:
        """The full grid-cell coordinate of this shard:
        ``(size, drop, sampler, schedules, engine)``.

        Every axis a multi-axis :class:`~repro.runtime.SweepGrid` can
        sweep appears here, so the merge step groups replicas correctly
        no matter which axes vary.
        """
        return (
            self.size,
            self.drop,
            self.sampler,
            self.schedules,
            self.engine,
        )

    @property
    def engine(self) -> str:
        """Cycle-engine implementation this shard runs on."""
        return self.experiment.engine


@dataclass(frozen=True)
class RunResult:
    """Outcome of one shard, annotated with throughput.

    ``wall_seconds`` is measured inside the worker and excluded from
    merged statistics (it is the one legitimately nondeterministic
    field); it feeds the benchmark harness's cycles/sec reporting.
    """

    spec: RunSpec
    result: SimulationResult
    wall_seconds: float

    @property
    def cycles_per_second(self) -> float:
        """Engine throughput of this shard (0 for instant runs)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.result.cycles_run / self.wall_seconds


def replica_seed(base_seed: int, replica: int) -> int:
    """Seed of *replica* under *base_seed*.

    Matches the historical ``run_repeats`` derivation
    (``derive_seed(seed, ("repeat", index))``) exactly, so sweeps
    re-run through the parallel runner reproduce the seed benchmarks
    bit-for-bit.
    """
    return derive_seed(base_seed, ("repeat", replica))


# repro-check: timing -- wall_seconds is throughput telemetry (RunTiming); it never feeds results
def execute_run(
    spec: RunSpec,
    schedules_factory: Callable[[], Sequence[object]] | None = None,
) -> RunResult:
    """Execute one shard (this is the function worker processes run).

    *schedules_factory* is an in-process escape hatch for callers that
    need schedule objects a :class:`ScheduleSpec` cannot describe; the
    runner rejects it when dispatching across processes.
    """
    schedules = [s.build() for s in spec.schedules]
    if schedules_factory is not None:
        schedules.extend(schedules_factory())
    start = time.perf_counter()
    result = run_experiment(spec.experiment, schedules)
    elapsed = time.perf_counter() - start
    return RunResult(spec=spec, result=result, wall_seconds=elapsed)
