"""Crash-safe journaling of completed sweep cells.

A long sweep (``paper_scale`` overnight, preemptible workers) must not
lose completed work to a kill signal.  :class:`CheckpointStore` is the
journal: every time the streaming merge completes a grid cell, the
cell's full :class:`~repro.runtime.merge.CellAggregate` is written to
its own file under the checkpoint directory.  A resumed run loads the
journalled cells, re-dispatches only the shards of missing cells, and
produces an aggregate **byte-identical** to an uninterrupted run (the
JSON float round-trip is exact: ``float(repr(x)) == x``).

Three properties carry the crash-safety claim:

* **atomicity** -- every record is written to a temporary file,
  fsynced, then ``os.replace``d into place.  A SIGKILL mid-write
  leaves at worst an ignored ``*.tmp`` file, never a truncated
  record;
* **keyed by grid digest** -- the journal records the sha256 of the
  grid's :meth:`~repro.runtime.runner.SweepGrid.to_dict` form.  A
  resume against a *different* grid (changed sizes, seeds, schedules,
  anything) refuses with a clear error instead of silently merging
  incompatible cells;
* **keyed by full cell coordinate** -- records are named by the
  5-axis cell coordinate ``(size, drop, sampler, schedules, engine)``,
  so every cell of a multi-axis sweep journals independently.

The worker count is deliberately *not* part of the digest: a sweep
killed under ``--workers 4`` may resume under ``--workers 1`` (or vice
versa) because merged statistics are worker-count invariant.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .merge import CellAggregate, CellKey, cell_label
from .runner import SweepGrid

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "grid_digest",
]

#: Journal format version, bumped on any incompatible layout change.
FORMAT_VERSION = 1

_META_NAME = "grid.json"
_CELL_PREFIX = "cell-"
_CELL_SUFFIX = ".json"


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot be used as requested.

    Raised for stale grid digests, corrupt or truncated records, and
    journals that exist where a fresh run was requested.  Never
    silently recovered from: a checkpoint problem must surface to the
    operator, not merge partial state.
    """


def grid_digest(grid: SweepGrid) -> str:
    """The sha256 hex digest of a grid's canonical dict form.

    Built on :meth:`SweepGrid.to_dict` with sorted keys, so any change
    to any axis -- sizes, seeds, schedules, engines, config --
    produces a different digest and invalidates existing journals.
    """
    canonical = json.dumps(grid.to_dict(), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _cell_key_dict(cell: CellKey) -> dict:
    """The 5-axis coordinate as JSON primitives."""
    size, drop, sampler, schedules, engine = cell
    return {
        "size": size,
        "drop": drop,
        "sampler": sampler,
        "schedules": [spec.to_dict() for spec in schedules],
        "engine": engine,
    }


def _cell_filename(cell: CellKey) -> str:
    """The record filename for one cell coordinate.

    A content hash of the canonical coordinate keeps filenames short,
    filesystem-safe, and injective over the coordinate space.
    """
    canonical = json.dumps(_cell_key_dict(cell), sort_keys=True)
    digest = hashlib.sha256(canonical.encode()).hexdigest()
    return f"{_CELL_PREFIX}{digest[:16]}{_CELL_SUFFIX}"


class CheckpointStore:
    """One sweep's on-disk journal of completed cells.

    Use :meth:`open` (not the constructor) -- it validates the
    directory against the grid before anything is read or written.
    """

    def __init__(self, directory: Path, digest: str) -> None:
        self.directory = directory
        self.digest = digest

    # -- opening -------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        grid: SweepGrid,
        *,
        resume: bool = False,
    ) -> CheckpointStore:
        """Open (creating if needed) a checkpoint directory for *grid*.

        Fresh directory: writes the grid metadata and returns an empty
        store.  Existing journal: requires ``resume=True`` (refusing
        to silently reuse state a fresh run did not ask for) and a
        matching grid digest (refusing to resume a *different* sweep).
        """
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        digest = grid_digest(grid)
        meta_path = path / _META_NAME
        if meta_path.exists():
            meta = cls._read_json(meta_path)
            recorded = meta.get("digest")
            if recorded != digest:
                raise CheckpointError(
                    f"checkpoint directory {path} was written for a "
                    f"different grid (digest {recorded!r}, this sweep "
                    f"is {digest!r}); the grid changed, so its journal "
                    "is stale -- use a fresh --checkpoint-dir"
                )
            if not resume:
                raise CheckpointError(
                    f"checkpoint directory {path} already holds a "
                    "journal for this grid; pass --resume to continue "
                    "it or use a fresh --checkpoint-dir"
                )
        else:
            if any(cls._cell_paths(path)):
                raise CheckpointError(
                    f"checkpoint directory {path} holds cell records "
                    f"but no {_META_NAME}; it is corrupt or not a "
                    "checkpoint directory"
                )
            store = cls(path, digest)
            store._atomic_write(
                meta_path,
                json.dumps(
                    {
                        "format": FORMAT_VERSION,
                        "digest": digest,
                        "grid": grid.to_dict(),
                    },
                    sort_keys=True,
                    indent=2,
                ),
            )
            return store
        return cls(path, digest)

    # -- reading -------------------------------------------------------

    def load_cells(self) -> dict[CellKey, tuple[int, CellAggregate]]:
        """Every journalled cell: coordinate -> (first_shard, aggregate).

        Corrupt records (truncated JSON, missing fields, digest
        mismatch) raise :class:`CheckpointError` naming the offending
        file -- a damaged journal is reported, never silently merged.
        """
        cells: dict[CellKey, tuple[int, CellAggregate]] = {}
        for record_path in sorted(self._cell_paths(self.directory)):
            record = self._read_json(record_path)
            for field in ("digest", "first_shard", "engine", "aggregate"):
                if field not in record:
                    raise CheckpointError(
                        f"checkpoint record {record_path} is missing "
                        f"field {field!r}; the journal is corrupt"
                    )
            if record["digest"] != self.digest:
                raise CheckpointError(
                    f"checkpoint record {record_path} was written for "
                    f"a different grid (digest {record['digest']!r}, "
                    f"this sweep is {self.digest!r})"
                )
            try:
                aggregate = CellAggregate.from_dict(
                    record["aggregate"], engine=str(record["engine"])
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint record {record_path} does not decode "
                    f"to a cell aggregate: {exc!r}"
                ) from exc
            if aggregate.runs < 1 or not aggregate.mean_leaf.points:
                # A structurally valid but empty aggregate (zero runs
                # or an empty curve) can only come from a damaged or
                # hand-edited journal: StreamingMerge journals a cell
                # strictly after its last replica folds.  Treating it
                # as restored would silently drop the cell's shards.
                raise CheckpointError(
                    f"checkpoint record {record_path} holds an empty "
                    "cell aggregate (zero runs); the journal is "
                    "corrupt -- delete the record or use a fresh "
                    "--checkpoint-dir"
                )
            cell: CellKey = (
                aggregate.size,
                aggregate.drop,
                aggregate.sampler,
                aggregate.schedules,
                aggregate.engine,
            )
            expected_name = _cell_filename(cell)
            if record_path.name != expected_name:
                raise CheckpointError(
                    f"checkpoint record {record_path} holds cell "
                    f"{cell_label(*cell)!r}, which belongs in "
                    f"{expected_name}; the journal is corrupt"
                )
            cells[cell] = (int(record["first_shard"]), aggregate)
        return cells

    # -- writing -------------------------------------------------------

    def write_cell(
        self, cell: CellKey, first_shard: int, aggregate: CellAggregate
    ) -> None:
        """Journal one completed cell (atomic write-then-rename).

        Matches the ``on_cell`` callback signature of
        :class:`~repro.runtime.merge.StreamingMerge`.
        """
        record = {
            "format": FORMAT_VERSION,
            "digest": self.digest,
            "first_shard": first_shard,
            "engine": cell[4],
            "cell_key": _cell_key_dict(cell),
            "aggregate": aggregate.to_dict(),
        }
        self._atomic_write(
            self.directory / _cell_filename(cell),
            json.dumps(record, sort_keys=True),
        )

    # -- plumbing ------------------------------------------------------

    @staticmethod
    def _cell_paths(directory: Path) -> list[Path]:
        """The cell record files (``*.tmp`` leftovers never match)."""
        return list(directory.glob(f"{_CELL_PREFIX}*{_CELL_SUFFIX}"))

    @staticmethod
    def _read_json(path: Path) -> dict:
        """Read one JSON record, translating damage to
        :class:`CheckpointError`."""
        try:
            with open(path, encoding="utf-8") as stream:
                data = json.load(stream)
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint record {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint record {path} is not valid JSON "
                f"(truncated write or foreign file): {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointError(
                f"checkpoint record {path} is not a JSON object"
            )
        return data

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        """Write *text* to *path* via tmp-file + fsync + rename.

        ``os.replace`` is atomic on POSIX, so a reader (or a resumed
        run) only ever sees the old state or the complete new record
        -- never a partial write, even across SIGKILL.
        """
        tmp_path = path.with_name(path.name + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path)

    def __repr__(self) -> str:
        return (
            f"CheckpointStore(directory={str(self.directory)!r}, "
            f"digest={self.digest[:12]!r}...)"
        )
