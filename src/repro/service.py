"""High-level facade: the bootstrapping service as a user-facing API.

The paper's architectural pitch is operational: *given a pool with a
functional sampling layer, hand me a routing substrate on demand*.
:class:`BootstrappingService` packages that pitch: one call runs the
gossip bootstrap over a pool and returns an outcome whose tables can be
exported directly into Pastry or Kademlia overlays (and inspected
against perfection).

For experiment-grade control (failure schedules, custom samplers,
per-cycle traces) drop down to
:class:`repro.simulator.BootstrapSimulation`, which this facade wraps.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from .core.config import BootstrapConfig, PAPER_CONFIG
from .core.protocol import BootstrapNode
from .overlays.kademlia import KademliaNetwork
from .overlays.pastry import PastryNetwork
from .simulator.bootstrap_sim import BootstrapSimulation, SimulationResult
from .simulator.network import NetworkModel, RELIABLE

__all__ = ["BootstrapOutcome", "BootstrappingService"]


@dataclass
class BootstrapOutcome:
    """A bootstrapped pool, ready to be consumed by a substrate.

    Attributes
    ----------
    simulation:
        The underlying simulation (kept alive so the pool can be
        mutated further: merges, splits, re-bootstraps).
    result:
        Convergence series and message accounting of the run.
    """

    simulation: BootstrapSimulation
    result: SimulationResult

    @property
    def nodes(self) -> dict[int, BootstrapNode]:
        """The live protocol nodes, by identifier."""
        return self.simulation.nodes

    @property
    def converged(self) -> bool:
        """Whether every node holds perfect tables."""
        return self.result.converged

    @property
    def cycles(self) -> float | None:
        """Cycles from this run's start to perfection (``None`` if the
        budget ran out)."""
        return self.result.cycles_to_converge

    def pastry(self) -> PastryNetwork:
        """Export the pool as a routable Pastry overlay."""
        return PastryNetwork.from_bootstrap_nodes(self.nodes.values())

    def kademlia(self, bucket_size: int = 20) -> KademliaNetwork:
        """Export the pool as a routable Kademlia overlay."""
        return KademliaNetwork.from_bootstrap_nodes(
            self.nodes.values(), bucket_size
        )


class BootstrappingService:
    """On-demand construction of routing substrates over resource pools.

    Parameters
    ----------
    config:
        Protocol parameters for every bootstrap this service performs
        (defaults to the paper's ``b=4, k=3, c=20, cr=30``).

    Example
    -------
    >>> service = BootstrappingService()
    >>> outcome = service.bootstrap(512, seed=7)
    >>> outcome.converged
    True
    >>> overlay = outcome.pastry()
    """

    def __init__(self, config: BootstrapConfig = PAPER_CONFIG) -> None:
        self.config = config

    def bootstrap(
        self,
        size: int | None = None,
        *,
        ids: Sequence[int] | None = None,
        seed: int = 1,
        network: NetworkModel = RELIABLE,
        sampler: str = "oracle",
        max_cycles: int = 60,
    ) -> BootstrapOutcome:
        """Jump-start a routing substrate over a fresh pool.

        Runs the gossip protocol until perfect tables or *max_cycles*.
        The paper's operational guidance applies: since convergence is
        logarithmic and cheap, a deployment simply runs "a fixed number
        of cycles that are known to be sufficient".
        """
        simulation = BootstrapSimulation(
            size,
            ids=ids,
            config=self.config,
            seed=seed,
            network=network,
            sampler=sampler,
        )
        result = simulation.run(max_cycles)
        return BootstrapOutcome(simulation=simulation, result=result)

    def rebootstrap(
        self, outcome: BootstrapOutcome, max_cycles: int = 60
    ) -> BootstrapOutcome:
        """Restart the protocol on an existing pool (e.g. after the pool
        was merged with another, or repurposed for a new time-slice).

        Every node forgets its tables and starts over; the pool's
        membership is whatever the simulation currently holds.  The
        returned outcome's :attr:`BootstrapOutcome.cycles` counts from
        the restart, not from the pool's first-ever cycle.
        """
        simulation = outcome.simulation
        for node in simulation.nodes.values():
            node.restart()
        result = simulation.run(max_cycles)
        return BootstrapOutcome(simulation=simulation, result=result)
