"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro bootstrap --size 1024 --seed 7
    python -m repro figure3 --exponents 10 12 --workers 4
    python -m repro figure4 --exponents 10
    python -m repro sweep --sizes 256 1024 --drops 0.0 0.2 --replicas 3 --workers 4
    python -m repro sweep --sizes 512 --schedule churn:rate=0.01
    python -m repro scenarios list
    python -m repro scenarios run figure3 --workers 4
    python -m repro chaos list
    python -m repro chaos run chaos_partition_heal --smoke
    python -m repro churn --size 512 --rate 0.01
    python -m repro aggregate --size 256
    python -m repro broadcast --size 1024 --fanout 3

Every subcommand prints the same artefacts the benchmark harness
produces (ASCII figures / tables), so quick parameter exploration does
not require pytest.  Sweep-style commands (``figure3``, ``figure4``,
``sweep``, ``scenarios run``) accept ``--workers N`` to shard their
independent runs across a process pool; results are identical for any
worker count.  ``sweep`` and ``scenarios run`` execute through the
declarative scenario layer on the columnar result transport.
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis import Series, ascii_semilog, render_kv, render_table
from .components import AggregationExperiment, BroadcastConfig, GossipBroadcast
from .devtools import main as devtools_main
from .runtime import (
    CheckpointError,
    RunSpec,
    ScheduleSpec,
    SweepGrid,
    SweepRunner,
)
from .scenarios import (
    ScenarioSpec,
    all_chaos_scenarios,
    all_scenarios,
    convergence_rows,
    get_chaos_scenario,
    get_scenario,
    render_scenario_report,
    run_chaos_scenario,
    run_scenario,
)
from .simulator import (
    ENGINE_KINDS,
    Churn,
    ExperimentSpec,
    NetworkModel,
    build_simulation,
)

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--drop",
        type=float,
        default=0.0,
        help="uniform message drop probability (paper Figure 4: 0.2)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=60, help="cycle budget"
    )


def _add_engine(parser: argparse.ArgumentParser) -> None:
    # Added only to subcommands that route through build_simulation;
    # a silently ignored --engine would masquerade as a fast-engine
    # run (same convention as the sweep parser's missing --drop).
    parser.add_argument(
        "--engine",
        choices=ENGINE_KINDS,
        default="reference",
        help=(
            "cycle-engine implementation; 'fast' is the array-backed "
            "kernel (bit-identical trajectories, >=2x throughput), "
            "'vector' batches whole cycles in numpy (seeded-but-"
            "different stream, statistically equivalent, >=5x)"
        ),
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard independent runs across N worker processes "
            "(1 = in-process; results are identical for any value)"
        ),
    )


def _network(args: argparse.Namespace) -> NetworkModel:
    return NetworkModel(drop_probability=args.drop)


def _print_run(size: int, result, label: str) -> None:
    """Per-run summary block shared by the bootstrap and figure
    commands."""
    print(
        render_kv(
            {
                "size": size,
                "converged": result.converged,
                "cycles": result.cycles_to_converge,
                "messages/node/cycle": result.messages_per_node_per_cycle(),
                "overall loss": result.transport["overall_loss_fraction"],
            },
            title=f"bootstrap {label}",
        )
    )


def _run_one(size: int, args: argparse.Namespace) -> tuple[Series, Series]:
    sim = build_simulation(
        ExperimentSpec(
            size=size,
            seed=args.seed,
            network=_network(args),
            max_cycles=args.max_cycles,
            engine=args.engine,
        )
    )
    result = sim.run(args.max_cycles)
    label = f"N={size}"
    _print_run(size, result, label)
    return (
        Series.from_pairs(label, result.leaf_series()),
        Series.from_pairs(label, result.prefix_series()),
    )


def cmd_bootstrap(args: argparse.Namespace) -> int:
    """One bootstrap run with its convergence curves."""
    leaf, prefix = _run_one(args.size, args)
    print(
        ascii_semilog(
            [leaf.nonzero(), prefix.nonzero()],
            title="missing-entry proportions (o = leaf, x = prefix)",
        )
    )
    return 0


def cmd_figure(args: argparse.Namespace, lossy: bool) -> int:
    """Regenerate Figure 3 (or Figure 4 when *lossy*).

    The per-size runs are independent, so they are dispatched through
    the sweep runner; ``--workers N`` shards them across processes.
    """
    if lossy and args.drop == 0.0:
        args.drop = 0.2
    specs = []
    for index, exponent in enumerate(args.exponents):
        size = 2**exponent
        spec = ExperimentSpec(
            size=size,
            seed=args.seed,
            network=_network(args),
            max_cycles=args.max_cycles,
            label=f"N={size}",
            engine=args.engine,
        )
        # One replica per size, seeded exactly as the sequential CLI
        # always was (the spec's own seed, no replica derivation).
        specs.append(RunSpec(experiment=spec, shard=index))
    outcomes = SweepRunner(workers=args.workers).run(specs)

    leaf_curves: list[Series] = []
    prefix_curves: list[Series] = []
    for outcome in outcomes:
        result = outcome.result
        label = outcome.spec.experiment.label
        _print_run(outcome.spec.size, result, label)
        leaf_curves.append(
            Series.from_pairs(label, result.leaf_series()).nonzero()
        )
        prefix_curves.append(
            Series.from_pairs(label, result.prefix_series()).nonzero()
        )
    name = "Figure 4" if lossy else "Figure 3"
    print(
        ascii_semilog(
            leaf_curves,
            title=f"{name} (top): proportion of missing leaf set entries",
        )
    )
    print(
        ascii_semilog(
            prefix_curves,
            title=f"{name} (bottom): proportion of missing prefix table "
            "entries",
        )
    )
    return 0


def _schedule_arg(text: str) -> ScheduleSpec:
    """argparse type hook for ``--schedule kind:key=val,...``.

    Re-raises parse failures as ``ArgumentTypeError`` so argparse
    prints the real message -- including the
    :data:`~repro.runtime.SCHEDULE_KINDS` listing on a bad kind --
    instead of a generic "invalid value".
    """
    try:
        return ScheduleSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a full experiment grid and print merged statistics.

    The grid travels through the scenario layer: an ad-hoc
    :class:`ScenarioSpec` executed by :func:`run_scenario` on the
    columnar transport -- the same path the registry scenarios and the
    benchmarks use.
    """
    grid = SweepGrid(
        sizes=tuple(args.sizes),
        drop_rates=tuple(args.drops),
        replicas=args.replicas,
        base_seed=args.seed,
        max_cycles=args.max_cycles,
        engine=args.engine,
        schedules=tuple(args.schedule or ()),
    )
    scenario = ScenarioSpec(
        name="sweep",
        title="ad-hoc CLI sweep",
        claim="",
        grid=grid,
        analyses=("convergence",),
    )
    result = run_scenario(scenario, workers=args.workers)
    aggregate = result.aggregate

    # The scenario layer's convergence rows plus the sweep-specific
    # loss column (cells in aggregate order, same as the rows).
    rows = [
        row + [f"{cell.overall_loss_fraction:.3f}"]
        for row, cell in zip(convergence_rows(aggregate), aggregate.cells, strict=True)
    ]
    print(
        render_table(
            [
                "cell",
                "converged",
                "mean cycles",
                "min",
                "max",
                "overall loss",
            ],
            rows,
            title=(
                f"sweep: {len(result.columns)} runs "
                f"({len(grid.sizes)} sizes x {len(grid.drop_rates)} drops "
                f"x {len(grid.schedule_axis)} schedule sets "
                f"x {grid.replicas} replicas), workers={args.workers}"
            ),
        )
    )
    throughput = result.throughput
    if throughput is not None:
        print(
            f"engine throughput per shard: mean {throughput.mean:.2f} "
            f"cycles/s (min {throughput.minimum:.2f}, "
            f"max {throughput.maximum:.2f})"
        )
    print(
        ascii_semilog(
            [c.nonzero() for c in aggregate.leaf_curves() if len(c.nonzero())],
            title="mean missing leaf-set entries per cell",
        )
    )
    return 0


def cmd_scenarios_list(args: argparse.Namespace) -> int:
    """Print the scenario catalogue."""
    rows = [
        [
            spec.name,
            len(spec.grid),
            spec.claim,
        ]
        for spec in all_scenarios()
    ]
    print(
        render_table(
            ["scenario", "runs", "paper claim"],
            rows,
            title="registered scenarios (repro scenarios run <name>)",
        )
    )
    return 0


def _resolve_scenario(args: argparse.Namespace) -> ScenarioSpec | None:
    """Registry lookup (or ``--spec-file`` load) with errors on stderr."""
    spec_file = getattr(args, "spec_file", None)
    if spec_file is not None:
        if args.name is not None:
            print(
                "give either a registry name or --spec-file, not both",
                file=sys.stderr,
            )
            return None
        try:
            return ScenarioSpec.from_path(spec_file)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return None
    if args.name is None:
        print(
            "a registry name (see `scenarios list`) or --spec-file "
            "is required",
            file=sys.stderr,
        )
        return None
    try:
        return get_scenario(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return None


def cmd_scenarios_show(args: argparse.Namespace) -> int:
    """Dump one scenario's declarative JSON form."""
    spec = _resolve_scenario(args)
    if spec is None:
        return 2
    print(spec.to_json(indent=2))
    return 0


def cmd_scenarios_run(args: argparse.Namespace) -> int:
    """Execute one scenario (registry or spec file), print its report."""
    spec = _resolve_scenario(args)
    if spec is None:
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.engine is not None:
        # Respect the axis form: a grid that sweeps engines is pinned
        # to the single requested engine, a single-engine grid is
        # simply switched.
        if spec.grid.engines is not None:
            spec = spec.with_grid(engines=(args.engine,))
        else:
            spec = spec.with_grid(engine=args.engine)
    try:
        result = run_scenario(
            spec,
            workers=args.workers,
            smoke=args.smoke,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    except CheckpointError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.checkpoint_dir is not None:
        # result.spec is the grid actually run (--smoke rescales it).
        total = len({shard.cell for shard in result.spec.grid.expand()})
        print(
            f"checkpoint: {result.resumed_cells}/{total} cells restored "
            f"from {args.checkpoint_dir}, "
            f"{total - result.resumed_cells} computed"
        )
    if args.aggregate_out is not None:
        with open(args.aggregate_out, "w", encoding="utf-8") as stream:
            stream.write(
                json.dumps(result.aggregate.to_dict(), sort_keys=True)
            )
        print(f"aggregate written to {args.aggregate_out}")
    print(render_scenario_report(result))
    return 0


def cmd_chaos_list(args: argparse.Namespace) -> int:
    """Print the chaos scenario catalogue."""
    rows = [
        [spec.name, spec.size, len(spec.schedule), spec.title]
        for spec in all_chaos_scenarios()
    ]
    print(
        render_table(
            ["scenario", "peers", "events", "what happens"],
            rows,
            title="registered chaos scenarios (repro chaos run <name>)",
        )
    )
    return 0


def cmd_chaos_show(args: argparse.Namespace) -> int:
    """Dump one chaos scenario's declarative JSON form."""
    try:
        spec = get_chaos_scenario(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(spec.to_json(indent=2))
    return 0


def cmd_chaos_run(args: argparse.Namespace) -> int:
    """Execute one chaos scenario on the virtual clock.

    Exit code 0 means the cluster re-converged to perfect tables
    within the budget after the fault timeline completed; 1 means the
    budget ran out first (the convergence-under-faults gate, usable
    straight from CI).
    """
    try:
        report = run_chaos_scenario(
            args.name, seed=args.seed, smoke=args.smoke
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(
        render_kv(
            {
                "scenario": report.name,
                "seed": report.seed,
                "peers": report.size,
                "re-converged": report.converged,
                "faults done at (virtual s)": report.faults_done_at,
                "time to functional (virtual s)": report.time_to_functional,
                "missing leaf fraction": report.final_leaf_fraction,
                "missing prefix fraction": report.final_prefix_fraction,
                "crashed peers": report.crashed_peers,
            },
            title="chaos run",
        )
    )
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(report.to_dict(), sort_keys=True))
        print(f"report written to {args.json_out}")
    return 0 if report.converged else 1


def cmd_churn(args: argparse.Namespace) -> int:
    """Steady-state table quality under continuous churn."""
    sim = build_simulation(
        ExperimentSpec(
            size=args.size,
            seed=args.seed,
            network=_network(args),
            engine=args.engine,
        )
    )
    result = sim.run(
        args.max_cycles,
        stop_when_perfect=False,
        schedules=[Churn(rate=args.rate)],
    )
    final = result.final_sample
    print(
        render_kv(
            {
                "size": args.size,
                "churn rate/cycle": args.rate,
                "cycles run": result.cycles_run,
                "missing leaf fraction": final.leaf_fraction,
                "missing prefix fraction": final.prefix_fraction,
            },
            title="steady-state quality under churn",
        )
    )
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    """Gossip push-pull averaging demo."""
    values = [float(i) for i in range(args.size)]
    experiment = AggregationExperiment(values, seed=args.seed)
    trace = experiment.run(args.max_cycles, tolerance=1e-9)
    print(
        render_table(
            ["cycle", "variance"],
            [[c, v] for c, v in trace],
            title=(
                f"push-pull averaging, N={args.size} "
                f"(true mean {experiment.true_mean:g})"
            ),
        )
    )
    return 0


def cmd_broadcast(args: argparse.Namespace) -> int:
    """Probabilistic-broadcast (start signal) demo."""
    broadcast = GossipBroadcast(
        args.size,
        BroadcastConfig(
            fanout=args.fanout,
            rounds_active=args.rounds_active,
            drop_probability=args.drop,
        ),
        seed=args.seed,
    )
    result = broadcast.broadcast()
    print(
        render_kv(
            {
                "size": args.size,
                "fanout": args.fanout,
                "reliability": result.reliability,
                "rounds": result.rounds,
                "messages": result.messages,
            },
            title="probabilistic broadcast (start-signal channel)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Bootstrapping Service' (ICDCS 2006): "
            "experiment runner"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bootstrap", help="one bootstrap run, with curves")
    p.add_argument("--size", type=int, default=1024)
    _add_common(p)
    _add_engine(p)
    p.set_defaults(func=cmd_bootstrap)

    p = sub.add_parser("figure3", help="regenerate Figure 3")
    p.add_argument(
        "--exponents", type=int, nargs="+", default=[10, 12],
        help="network sizes as powers of two",
    )
    _add_common(p)
    _add_engine(p)
    _add_workers(p)
    p.set_defaults(func=lambda a: cmd_figure(a, lossy=False))

    p = sub.add_parser("figure4", help="regenerate Figure 4 (20%% drop)")
    p.add_argument("--exponents", type=int, nargs="+", default=[10])
    _add_common(p)
    _add_engine(p)
    _add_workers(p)
    p.set_defaults(func=lambda a: cmd_figure(a, lossy=True))

    p = sub.add_parser(
        "sweep",
        help="run a sizes x drops x replicas grid, merged statistics",
    )
    p.add_argument(
        "--sizes", type=int, nargs="+", default=[256, 1024],
        help="network sizes to sweep",
    )
    p.add_argument(
        "--drops", type=float, nargs="+", default=[0.0],
        help="message drop probabilities to sweep",
    )
    p.add_argument(
        "--replicas", type=int, default=3,
        help="independent repeats per grid cell",
    )
    # No --drop here: the sweep's loss axis is the --drops grid, and a
    # silently ignored --drop would masquerade as a lossy run.
    p.add_argument("--seed", type=int, default=1, help="master seed")
    p.add_argument(
        "--max-cycles", type=int, default=60, help="cycle budget"
    )
    p.add_argument(
        "--schedule",
        type=_schedule_arg,
        action="append",
        metavar="KIND:KEY=VAL,...",
        help=(
            "failure schedule applied to every run, e.g. "
            "churn:rate=0.01 or catastrophe:at_cycle=5,fraction=0.5 "
            "(repeatable)"
        ),
    )
    _add_engine(p)
    _add_workers(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "scenarios",
        help="list, inspect, and run the declarative scenario registry",
    )
    scenario_sub = p.add_subparsers(dest="scenarios_command", required=True)

    sp = scenario_sub.add_parser("list", help="print the scenario catalogue")
    sp.set_defaults(func=cmd_scenarios_list)

    sp = scenario_sub.add_parser(
        "show", help="dump one scenario's declarative JSON"
    )
    sp.add_argument("name", help="registry name (see `scenarios list`)")
    sp.set_defaults(func=cmd_scenarios_show)

    sp = scenario_sub.add_parser(
        "run", help="execute one scenario and print its report"
    )
    sp.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registry name (see `scenarios list`)",
    )
    sp.add_argument(
        "--spec-file",
        default=None,
        help=(
            "run a scenario from a JSON spec document "
            "(`scenarios show <name>` emits the format) instead of "
            "the registry"
        ),
    )
    sp.add_argument(
        "--smoke",
        action="store_true",
        help="run the seconds-scale smoke rescaling (axes preserved)",
    )
    sp.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "stream the sweep and journal each completed cell to this "
            "directory (kill-safe; see README: checkpointed sweeps)"
        ),
    )
    sp.add_argument(
        "--resume",
        action="store_true",
        help=(
            "restore journalled cells from --checkpoint-dir and "
            "re-dispatch only the missing shards"
        ),
    )
    sp.add_argument(
        "--aggregate-out",
        default=None,
        help=(
            "write the merged aggregate as canonical JSON to this "
            "file (byte-comparable across runs and worker counts)"
        ),
    )
    sp.add_argument(
        "--engine",
        choices=ENGINE_KINDS,
        default=None,
        help="pin every run to one cycle engine (overrides the grid)",
    )
    _add_workers(sp)
    sp.set_defaults(func=cmd_scenarios_run)

    p = sub.add_parser(
        "chaos",
        help=(
            "run the live asyncio stack under deterministic fault "
            "injection (partitions, kills, flash crowds)"
        ),
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    cp = chaos_sub.add_parser("list", help="print the chaos catalogue")
    cp.set_defaults(func=cmd_chaos_list)

    cp = chaos_sub.add_parser(
        "show", help="dump one chaos scenario's declarative JSON"
    )
    cp.add_argument("name", help="registry name (see `chaos list`)")
    cp.set_defaults(func=cmd_chaos_show)

    cp = chaos_sub.add_parser(
        "run",
        help=(
            "execute one chaos scenario; exit 0 iff the cluster "
            "re-converged within the budget"
        ),
    )
    cp.add_argument("name", help="registry name (see `chaos list`)")
    cp.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the scenario's seed (same seed => same run)",
    )
    cp.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the cluster to CI size (fault timeline preserved)",
    )
    cp.add_argument(
        "--json-out",
        default=None,
        help="also write the full run report as JSON to this file",
    )
    cp.set_defaults(func=cmd_chaos_run)

    p = sub.add_parser(
        "check",
        help=(
            "statically check determinism, seam, layering, and "
            "lifecycle invariants (see README: invariants)"
        ),
        add_help=False,
    )
    # The analyzer owns its own argparse surface (--rule, --list-rules,
    # --format, --root); main() forwards everything after `check`
    # before parsing, since REMAINDER cannot capture leading options.
    p.add_argument("check_args", nargs=argparse.REMAINDER)
    p.set_defaults(func=lambda a: devtools_main(a.check_args))

    p = sub.add_parser("churn", help="steady-state quality under churn")
    p.add_argument("--size", type=int, default=512)
    p.add_argument("--rate", type=float, default=0.01)
    _add_common(p)
    _add_engine(p)
    p.set_defaults(func=cmd_churn)

    p = sub.add_parser("aggregate", help="gossip aggregation demo")
    p.add_argument("--size", type=int, default=256)
    _add_common(p)
    p.set_defaults(func=cmd_aggregate)

    p = sub.add_parser("broadcast", help="probabilistic broadcast demo")
    p.add_argument("--size", type=int, default=1024)
    p.add_argument("--fanout", type=int, default=3)
    p.add_argument("--rounds-active", type=int, default=2)
    _add_common(p)
    p.set_defaults(func=cmd_broadcast)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["check"]:
        return devtools_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
