"""The named scenario registry: the paper's experiments as data.

Every entry captures what one of the historical hand-rolled benchmark
loops encoded imperatively -- the benchmarks now call
:func:`repro.scenarios.run_scenario` on (possibly rescaled) registry
entries, and the CLI exposes the same catalogue via ``repro scenarios
list/show/run``.

Grid shapes are the *canonical* ones: paper-faithful axes at sizes
that run in seconds-to-minutes on a laptop.  Harness knobs
(``REPRO_BENCH_FULL``/``REPRO_BENCH_PAPER`` sizes, engine selection,
repeat budgets) are layered on by the consumers through
:meth:`ScenarioSpec.with_grid`; CI and the test suite run
:meth:`ScenarioSpec.smoke` variants, which preserve every axis.
"""

from __future__ import annotations


from ..runtime.runner import SweepGrid
from ..runtime.spec import ScheduleSpec
from .spec import ScenarioSpec

__all__ = [
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario_names",
]

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add *spec* to the registry (rejecting duplicate names)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name.

    Raises ``KeyError`` naming the known scenarios, so a typo on the
    CLI reads like the ``repro scenarios list`` output.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{', '.join(scenario_names())}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(_REGISTRY)


def all_scenarios() -> tuple[ScenarioSpec, ...]:
    """Every registered scenario, in registration order."""
    return tuple(_REGISTRY.values())


def _churn(rate: float) -> tuple[ScheduleSpec, ...]:
    return (ScheduleSpec.of("churn", rate=rate),)


register(
    ScenarioSpec(
        name="figure3",
        title="Convergence without failures, one curve per size",
        claim=(
            "Fig. 3 / E1-E2: exponential decay; +4x size costs only an "
            "additive constant of cycles"
        ),
        grid=SweepGrid(
            sizes=(1024, 4096),
            replicas=(3, 2),
            base_seed=103,
            max_cycles=60,
        ),
        analyses=("curves", "convergence"),
    )
)

register(
    ScenarioSpec(
        name="figure4",
        title="Convergence under 20% uniform message loss",
        claim=(
            "Fig. 4 / E3-E4: 20% drop => 28% overall loss; convergence "
            "'slowed down proportionally'"
        ),
        grid=SweepGrid(
            sizes=(1024, 4096),
            drop_rates=(0.0, 0.2),
            replicas=(3, 2),
            base_seed=104,
            max_cycles=90,
        ),
        analyses=("curves", "convergence", "loss"),
    )
)

register(
    ScenarioSpec(
        name="drop_analysis",
        title="Message-loss arithmetic across drop probabilities",
        claim=(
            "E6: measured overall loss matches (2p + (1-p)p)/2; slowdown "
            "tracks 1/(1-loss)"
        ),
        grid=SweepGrid(
            sizes=(1024,),
            drop_rates=(0.0, 0.1, 0.2, 0.3),
            base_seed=400,
            max_cycles=120,
        ),
        analyses=("loss", "convergence"),
    )
)

register(
    ScenarioSpec(
        name="churn",
        title="Table quality at the bootstrap window under churn rates",
        claim=(
            "E7: churn 'during this short time is naturally limited' -- "
            "quality degrades smoothly with the churn rate"
        ),
        grid=SweepGrid(
            sizes=(1024,),
            base_seed=500,
            max_cycles=20,
            schedule_sets=(
                (),
                _churn(0.001),
                _churn(0.01),
                _churn(0.05),
            ),
            stop_when_perfect=False,
        ),
        analyses=("quality",),
    )
)

register(
    ScenarioSpec(
        name="catastrophe",
        title="Catastrophic mid-bootstrap failure of 30-70% of nodes",
        claim=(
            "Sections 1+3 ('up to 70% nodes may fail'): survivors' "
            "quality plateaus at the dead-entry residue -- the protocol "
            "never evicts, so recovery is one fresh bootstrap (see "
            "examples/catastrophic_recovery.py)"
        ),
        grid=SweepGrid(
            sizes=(1024,),
            base_seed=600,
            max_cycles=25,
            schedule_sets=(
                (),
                (ScheduleSpec.of("catastrophe", at_cycle=5, fraction=0.3),),
                (ScheduleSpec.of("catastrophe", at_cycle=5, fraction=0.5),),
                (ScheduleSpec.of("catastrophe", at_cycle=5, fraction=0.7),),
            ),
            stop_when_perfect=False,
        ),
        analyses=("quality", "curves"),
    )
)

register(
    ScenarioSpec(
        name="massive_join",
        title="Bootstrapping a whole pool at once (the massive join)",
        claim=(
            "E13 / Section 1: massive simultaneous joins cost O(log N) "
            "parallel cycles (vs N serial join steps)"
        ),
        grid=SweepGrid(
            sizes=(256, 512, 1024),
            base_seed=1100,
            max_cycles=60,
        ),
        analyses=("convergence",),
    )
)

register(
    ScenarioSpec(
        name="join_burst",
        title="A mid-run burst of simultaneous joins",
        claim=(
            "Section 1: joins arriving as one burst are absorbed and the "
            "grown pool still reaches perfect tables"
        ),
        grid=SweepGrid(
            sizes=(1024,),
            base_seed=1150,
            max_cycles=60,
            schedule_sets=(
                (),
                (ScheduleSpec.of("massive_join", at_cycle=3, count=256),),
                (ScheduleSpec.of("massive_join", at_cycle=3, count=1024),),
            ),
        ),
        analyses=("convergence", "quality"),
    )
)

register(
    ScenarioSpec(
        name="newscast",
        title="Live NEWSCAST sampling layer versus the idealised oracle",
        claim=(
            "Section 3: the protocol works over the real gossiping "
            "sampling service, not just the oracle assumption"
        ),
        grid=SweepGrid(
            sizes=(1024,),
            replicas=2,
            base_seed=800,
            max_cycles=60,
            samplers=("oracle", "newscast"),
        ),
        analyses=("convergence", "curves"),
    )
)

register(
    ScenarioSpec(
        name="engines_shootout",
        title="All cycle engines on identical seeded workloads",
        claim=(
            "engine seam: reference/fast bit-identical, vector "
            "statistically equivalent at >=5x throughput"
        ),
        grid=SweepGrid(
            sizes=(1024,),
            replicas=2,
            base_seed=900,
            max_cycles=60,
            engines=("reference", "fast", "vector"),
        ),
        analyses=("convergence", "throughput"),
    )
)

register(
    ScenarioSpec(
        name="scalability",
        title="Convergence time across a geometric ladder of sizes",
        claim="E5: cycles-to-perfect ~ a*log2(N) + b (logarithmic)",
        grid=SweepGrid(
            sizes=(256, 512, 1024, 2048),
            replicas=(3, 3, 3, 2),
            base_seed=300,
            max_cycles=60,
        ),
        analyses=("convergence",),
    )
)

register(
    ScenarioSpec(
        name="paper_scale",
        title="The paper's full sweep (2^14..2^18) on the vector engine",
        claim=(
            "Section 5 headline: 50/10/4 independent experiments at "
            "2^14/2^16/2^18 nodes (the REPRO_BENCH_PAPER artefact set)"
        ),
        grid=SweepGrid(
            sizes=(2**14, 2**16, 2**18),
            replicas=(50, 10, 4),
            base_seed=1000,
            max_cycles=60,
            engine="vector",
        ),
        analyses=("curves", "convergence", "throughput"),
    )
)
