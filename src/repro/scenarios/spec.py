"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *what a benchmark runs* as frozen
data: a multi-axis :class:`~repro.runtime.SweepGrid` (which carries
the cycle budget), plus the selection of analyses the scenario's
report cares about and the paper claim it reproduces.  Everything the
hand-rolled benchmark loops used to encode imperatively -- which
sizes, which drop rates, which churn rates, which engines, how many
repeats, stop-at-perfection or fixed window -- lives in the spec, so a
scenario can be listed, serialised to JSON, rescaled to a smoke size,
and executed by one shared runner (:func:`repro.scenarios.run_scenario`).

Specs round-trip through JSON exactly:
``ScenarioSpec.from_dict(spec.to_dict())`` expands to the same shard
list, which is the contract the registry tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from ..runtime.runner import SweepGrid
from ..runtime.spec import ScheduleSpec

__all__ = ["ANALYSIS_KINDS", "ScenarioSpec"]

#: Analyses a scenario can select for its report:
#:
#: ``convergence``
#:     Per-cell cycles-to-perfect-tables summary table.
#: ``curves``
#:     Mean missing-leaf / missing-prefix curves (the Figure 3/4 form).
#: ``loss``
#:     Message-accounting table (overall and wire loss fractions).
#: ``quality``
#:     Final table-quality fractions (steady-state scenarios that never
#:     reach perfection, e.g. under churn).
#: ``throughput``
#:     Per-engine cycles/sec lines (wall-clock; never merged into the
#:     deterministic statistics).
ANALYSIS_KINDS = (
    "convergence",
    "curves",
    "loss",
    "quality",
    "throughput",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, declarative experiment scenario.

    Attributes
    ----------
    name:
        Registry key (``repro scenarios run <name>``).
    title:
        One-line human description.
    claim:
        The paper figure/claim this scenario reproduces.
    grid:
        The multi-axis sweep to execute (includes the cycle budget).
    analyses:
        Which report sections apply, from :data:`ANALYSIS_KINDS`.
    """

    name: str
    title: str
    claim: str
    grid: SweepGrid
    analyses: tuple[str, ...] = ("convergence",)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a non-empty name")
        if not self.analyses:
            raise ValueError("scenario needs at least one analysis")
        for analysis in self.analyses:
            if analysis not in ANALYSIS_KINDS:
                raise ValueError(
                    f"unknown analysis {analysis!r}; expected one of "
                    f"{ANALYSIS_KINDS}"
                )

    def with_grid(self, **overrides: object) -> ScenarioSpec:
        """This scenario with grid fields replaced (validated).

        The porting hook for benchmarks: the registry entry pins the
        canonical shape, and harness knobs (``REPRO_BENCH_FULL`` sizes,
        ``REPRO_BENCH_ENGINE``, repeat budgets) are layered on top.
        """
        return replace(self, grid=replace(self.grid, **overrides))

    def smoke(self, max_size: int = 64, max_cycles: int = 30) -> ScenarioSpec:
        """A seconds-scale variant preserving the scenario's axes.

        Sizes are clamped to *max_size* (deduplicated, order kept),
        replicas drop to 1, the cycle budget is clamped, and
        ``massive_join`` bursts are rescaled so the burst stays
        proportionate to the smoke pool.  Every axis survives -- a
        smoke run still sweeps the same samplers/schedules/engines --
        so CI exercises the real cartesian structure cheaply.
        """
        sizes: tuple[int, ...] = tuple(
            dict.fromkeys(min(size, max_size) for size in self.grid.sizes)
        )
        schedule_sets = tuple(
            tuple(_clamp_schedule(spec, max_size) for spec in schedule_set)
            for schedule_set in self.grid.schedule_axis
        )
        grid = replace(
            self.grid,
            sizes=sizes,
            replicas=1,
            max_cycles=min(self.grid.max_cycles, max_cycles),
            schedules=(),
            schedule_sets=schedule_sets,
        )
        return replace(self, grid=grid)

    # -- JSON round-trip ----------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "title": self.title,
            "claim": self.claim,
            "grid": self.grid.to_dict(),
            "analyses": list(self.analyses),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> ScenarioSpec:
        """Rebuild a scenario from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            title=str(data.get("title", "")),
            claim=str(data.get("claim", "")),
            grid=SweepGrid.from_dict(data["grid"]),  # type: ignore[arg-type]
            analyses=tuple(
                data.get("analyses", ("convergence",))  # type: ignore
            ),
        )

    def to_json(self, indent: int = 1) -> str:
        """Serialise to a stable JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> ScenarioSpec:
        """Parse a :meth:`to_json` document."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_path(cls, path: object) -> ScenarioSpec:
        """Load a scenario spec from a JSON file on disk.

        The CLI's ``--spec-file`` entry point: ad-hoc sweeps (a
        kill-and-resume gate, a custom grid) run without touching the
        registry.  Unreadable or malformed files raise ``ValueError``
        naming the file, not a bare parser traceback.
        """
        try:
            with open(path, encoding="utf-8") as stream:
                text = stream.read()
        except OSError as exc:
            raise ValueError(
                f"cannot read scenario spec {path}: {exc}"
            ) from exc
        try:
            return cls.from_json(text)
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(
                f"scenario spec {path} is not a valid spec document: "
                f"{exc!r}"
            ) from exc


def _clamp_schedule(spec: ScheduleSpec, max_size: int) -> ScheduleSpec:
    """Rescale absolute schedule params for a smoke-sized pool.

    Join bursts shrink with the pool, and one-shot trigger cycles move
    before the smoke pool's convergence (~3 cycles at 64 nodes) so the
    event still *fires* inside a converge-and-stop smoke run.
    """
    if spec.kind not in ("massive_join", "catastrophe"):
        return spec
    params = dict(spec.params)
    count = params.get("count")
    if isinstance(count, int):
        params["count"] = max(1, min(count, max_size // 2))
    at_cycle = params.get("at_cycle")
    if isinstance(at_cycle, int):
        params["at_cycle"] = min(at_cycle, 2)
    return ScheduleSpec.of(spec.kind, **params)
