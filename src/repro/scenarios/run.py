"""Executing scenarios and rendering their reports.

:func:`run_scenario` is the single entry point the benchmarks and the
CLI share: expand the scenario's grid, execute every shard through the
parallel runner on the **columnar** transport, and fold the columns
into the analysis-layer aggregate.  The returned
:class:`ScenarioResult` keeps the raw columns (for consumers that need
per-run values: wall times, populations, trajectory equality checks)
next to the merged :class:`~repro.runtime.SweepAggregate`.

With ``checkpoint_dir=`` the execution switches to the streaming,
journalled path: shard outcomes fold into per-cell accumulators as
they arrive (constant collector memory -- raw columns are *not*
retained), every completed cell is journalled to disk, and
``resume=True`` skips journalled cells, re-dispatching only the
missing shards.  Both paths produce byte-identical aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import ascii_semilog, render_table
from ..analysis.stats import Summary
from ..runtime.checkpoint import CheckpointError, CheckpointStore
from ..runtime.columns import RunColumns, RunTiming
from ..runtime.merge import (
    CellKey,
    StreamingMerge,
    SweepAggregate,
    cell_label,
    merge_columns,
    throughput_summary,
)
from ..runtime.runner import SweepRunner
from .registry import get_scenario
from .spec import ScenarioSpec

__all__ = [
    "ScenarioResult",
    "convergence_rows",
    "render_scenario_report",
    "run_scenario",
]


def convergence_rows(aggregate: SweepAggregate) -> list[list[str]]:
    """Per-cell convergence table rows: label, converged, mean/min/max.

    Shared by the scenario report's ``convergence`` section and the
    CLI ``sweep`` table, so the two outputs cannot drift apart.
    """
    rows = []
    for cell in aggregate.cells:
        cycles = cell.cycles
        rows.append(
            [
                cell.label,
                f"{cell.converged_runs}/{cell.runs}",
                "-" if cycles is None else f"{cycles.mean:.1f}",
                "-" if cycles is None else f"{cycles.minimum:g}",
                "-" if cycles is None else f"{cycles.maximum:g}",
            ]
        )
    return rows


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run: raw columns plus merged cells.

    On the streaming/checkpointed path ``columns`` is empty (retaining
    them would defeat the constant-memory fold); ``timings`` carries
    the per-shard wall-clock scalars instead, and ``resumed_cells``
    counts the cells restored from the journal rather than re-run.
    """

    spec: ScenarioSpec
    columns: tuple[RunColumns, ...]
    aggregate: SweepAggregate
    workers: int
    timings: tuple[RunTiming, ...] = field(default=())
    resumed_cells: int = 0

    @property
    def throughput(self) -> Summary | None:
        """Per-shard cycles/sec summary (wall-clock; non-merged)."""
        return throughput_summary(self.timings or self.columns)

    def columns_for(self, **coords: object) -> list[RunColumns]:
        """The raw runs matching the given cell coordinates.

        Keyword filters match :class:`RunColumns` attributes (``size``,
        ``drop``, ``sampler``, ``schedules``, ``engine``, ``replica``);
        omitted coordinates match anything.
        """
        matches = []
        for run in self.columns:
            if all(
                getattr(run, name) == value
                for name, value in coords.items()
            ):
                matches.append(run)
        return matches


def run_scenario(
    scenario: str | ScenarioSpec,
    *,
    workers: int = 1,
    smoke: bool = False,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> ScenarioResult:
    """Execute a scenario (by registry name or explicit spec).

    ``workers > 1`` shards the grid across a process pool; merged
    statistics are byte-identical for any worker count.  ``smoke=True``
    runs the :meth:`ScenarioSpec.smoke` rescaling instead (every axis
    kept, sizes clamped).

    ``checkpoint_dir=`` switches to the streaming, journalled path:
    each completed grid cell is written to the directory as it
    finishes, and ``resume=True`` restores journalled cells instead of
    re-running their shards.  The aggregate stays byte-identical to an
    uninterrupted (or un-checkpointed) run; a directory written for a
    different grid refuses with :class:`CheckpointError`.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if smoke:
        spec = spec.smoke()
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    if checkpoint_dir is not None:
        return _run_checkpointed(
            spec, workers=workers, checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
    columns = SweepRunner(workers=workers).run_grid_columns(spec.grid)
    return ScenarioResult(
        spec=spec,
        columns=tuple(columns),
        aggregate=merge_columns(columns),
        workers=workers,
    )


def _run_checkpointed(
    spec: ScenarioSpec,
    *,
    workers: int,
    checkpoint_dir: str,
    resume: bool,
) -> ScenarioResult:
    """The streaming, journalled execution path of :func:`run_scenario`.

    Shard outcomes fold as they arrive and are then dropped; each cell
    is journalled the moment its last replica folds.  On resume,
    journalled cells are preloaded and only the missing cells' shards
    are dispatched.
    """
    store = CheckpointStore.open(checkpoint_dir, spec.grid, resume=resume)
    shards = spec.grid.expand()
    expected: dict[CellKey, int] = {}
    first_shard: dict[CellKey, int] = {}
    for shard in shards:
        cell = shard.cell
        expected[cell] = expected.get(cell, 0) + 1
        first_shard.setdefault(cell, shard.shard)

    done = store.load_cells()
    for cell, (shard0, _) in done.items():
        if cell not in expected:
            raise CheckpointError(
                f"checkpoint directory {store.directory} journals cell "
                f"{cell_label(*cell)!r}, which is not in this grid; "
                "the journal is corrupt"
            )
        if shard0 != first_shard[cell]:
            raise CheckpointError(
                f"checkpoint record for cell {cell_label(*cell)!r} "
                f"claims first shard {shard0}, but the grid expands it "
                f"at shard {first_shard[cell]}; the journal is corrupt"
            )

    merge = StreamingMerge(expected=expected, on_cell=store.write_cell)
    for shard0, aggregate in done.values():
        merge.preload(shard0, aggregate)

    timings: list[RunTiming] = []

    def sink(run: RunColumns) -> None:
        timings.append(run.timing())
        merge.add(run)

    remaining = [shard for shard in shards if shard.cell not in done]
    SweepRunner(workers=workers).stream_columns(remaining, sink)
    # Arrival order is nondeterministic on the parallel path; shard
    # order keeps the throughput report stable.
    timings.sort(key=lambda timing: timing.shard)
    return ScenarioResult(
        spec=spec,
        columns=(),
        aggregate=merge.finalize(),
        workers=workers,
        timings=tuple(timings),
        resumed_cells=len(done),
    )


def _grid_shape(spec: ScenarioSpec) -> str:
    """One-line axis summary, e.g. ``2 sizes x 2 drops x 3 engines``."""
    grid = spec.grid
    parts = [f"{len(grid.sizes)} sizes"]
    if len(grid.drop_rates) > 1:
        parts.append(f"{len(grid.drop_rates)} drops")
    if len(grid.sampler_axis) > 1:
        parts.append(f"{len(grid.sampler_axis)} samplers")
    if len(grid.schedule_axis) > 1:
        parts.append(f"{len(grid.schedule_axis)} schedule sets")
    if len(grid.engine_axis) > 1:
        parts.append(f"{len(grid.engine_axis)} engines")
    return " x ".join(parts) + f" -> {len(grid)} runs"


def render_scenario_report(result: ScenarioResult) -> str:
    """Render the analysis sections the scenario selected."""
    spec = result.spec
    aggregate = result.aggregate
    sections: list[str] = [
        f"scenario {spec.name}: {spec.title}",
        f"claim: {spec.claim}",
        f"grid: {_grid_shape(spec)}, workers={result.workers}",
    ]
    for analysis in spec.analyses:
        if analysis == "convergence":
            sections.append(
                render_table(
                    ["cell", "converged", "mean cycles", "min", "max"],
                    convergence_rows(aggregate),
                    title="cycles to perfect tables",
                )
            )
        elif analysis == "curves":
            leaf = [
                c.nonzero()
                for c in aggregate.leaf_curves()
                if len(c.nonzero())
            ]
            if leaf:
                sections.append(
                    ascii_semilog(
                        leaf,
                        title="mean missing leaf-set entries per cell",
                    )
                )
            prefix = [
                c.nonzero()
                for c in aggregate.prefix_curves()
                if len(c.nonzero())
            ]
            if prefix:
                sections.append(
                    ascii_semilog(
                        prefix,
                        title="mean missing prefix-table entries per cell",
                    )
                )
        elif analysis == "loss":
            sections.append(
                render_table(
                    ["cell", "overall loss", "wire loss"],
                    [
                        [
                            cell.label,
                            f"{cell.overall_loss_fraction:.3f}",
                            f"{cell.wire_loss_fraction:.3f}",
                        ]
                        for cell in aggregate.cells
                    ],
                    title="message-loss accounting",
                )
            )
        elif analysis == "quality":
            rows = []
            for cell in aggregate.cells:
                final_leaf = cell.mean_leaf.points[-1][1]
                final_prefix = cell.mean_prefix.points[-1][1]
                rows.append(
                    [
                        cell.label,
                        f"{final_leaf:.4f}",
                        f"{final_prefix:.4f}",
                    ]
                )
            sections.append(
                render_table(
                    ["cell", "final missing leaf", "final missing prefix"],
                    rows,
                    title="table quality at the end of the window",
                )
            )
        elif analysis == "throughput":
            sections.append(_throughput_section(result))
    return "\n".join(sections)


def _throughput_section(result: ScenarioResult) -> str:
    """Per-engine cycles-per-CPU-second lines (wall-clock)."""
    lines = []
    engines = []
    runs = result.timings or result.columns
    for run in runs:
        if run.engine not in engines:
            engines.append(run.engine)
    for engine in engines:
        timed = [
            run
            for run in runs
            if run.engine == engine and run.wall_seconds > 0
        ]
        if not timed:
            continue
        total_cycles = sum(run.cycles_run for run in timed)
        total_wall = sum(run.wall_seconds for run in timed)
        rate = total_cycles / total_wall if total_wall > 0 else 0.0
        lines.append(
            f"engine {engine}: {rate:.2f} cycles per CPU-second over "
            f"{len(timed)} timed runs"
        )
    return "\n".join(lines) if lines else "engine throughput: no timed runs"
