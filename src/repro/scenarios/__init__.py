"""Declarative scenario layer: the paper's experiments as data.

Three pieces:

* :class:`ScenarioSpec` -- a frozen, JSON-round-trippable description
  of one experiment scenario (a multi-axis
  :class:`~repro.runtime.SweepGrid` plus analysis selection and the
  paper claim it reproduces);
* the named **registry** (``figure3``, ``figure4``, ``churn``,
  ``drop_analysis``, ``catastrophe``, ``massive_join``, ``join_burst``,
  ``newscast``, ``engines_shootout``, ``scalability``,
  ``paper_scale``) -- what each historical hand-rolled benchmark loop
  encoded imperatively;
* :func:`run_scenario` -- the shared executor: expand, shard across
  the parallel runner on the columnar transport, merge.

Typical use::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario("figure3", workers=4)
    for cell in result.aggregate.cells:
        print(cell.label, cell.cycles.mean)

    # rescaled variants keep the declarative shape:
    spec = get_scenario("figure3").with_grid(engine="vector")
    result = run_scenario(spec.smoke())

The live-stack sibling lives in :mod:`repro.scenarios.chaos`: a
registry of :class:`ChaosScenarioSpec` fault experiments
(``chaos_partition_heal``, ``chaos_flash_crowd``,
``chaos_targeted_kill``) executed deterministically on the virtual
clock by :func:`run_chaos_scenario`.
"""

from .chaos import (
    ChaosRunReport,
    ChaosScenarioSpec,
    all_chaos_scenarios,
    chaos_scenario_names,
    get_chaos_scenario,
    register_chaos,
    run_chaos_scenario,
)
from .registry import all_scenarios, get_scenario, register, scenario_names
from .run import (
    ScenarioResult,
    convergence_rows,
    render_scenario_report,
    run_scenario,
)
from .spec import ANALYSIS_KINDS, ScenarioSpec

__all__ = [
    "ANALYSIS_KINDS",
    "ChaosRunReport",
    "ChaosScenarioSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "all_chaos_scenarios",
    "all_scenarios",
    "chaos_scenario_names",
    "convergence_rows",
    "get_chaos_scenario",
    "get_scenario",
    "register",
    "register_chaos",
    "render_scenario_report",
    "run_chaos_scenario",
    "run_scenario",
    "scenario_names",
]
