"""Declarative scenario layer: the paper's experiments as data.

Three pieces:

* :class:`ScenarioSpec` -- a frozen, JSON-round-trippable description
  of one experiment scenario (a multi-axis
  :class:`~repro.runtime.SweepGrid` plus analysis selection and the
  paper claim it reproduces);
* the named **registry** (``figure3``, ``figure4``, ``churn``,
  ``drop_analysis``, ``catastrophe``, ``massive_join``, ``join_burst``,
  ``newscast``, ``engines_shootout``, ``scalability``,
  ``paper_scale``) -- what each historical hand-rolled benchmark loop
  encoded imperatively;
* :func:`run_scenario` -- the shared executor: expand, shard across
  the parallel runner on the columnar transport, merge.

Typical use::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario("figure3", workers=4)
    for cell in result.aggregate.cells:
        print(cell.label, cell.cycles.mean)

    # rescaled variants keep the declarative shape:
    spec = get_scenario("figure3").with_grid(engine="vector")
    result = run_scenario(spec.smoke())
"""

from .registry import all_scenarios, get_scenario, register, scenario_names
from .run import (
    ScenarioResult,
    convergence_rows,
    render_scenario_report,
    run_scenario,
)
from .spec import ANALYSIS_KINDS, ScenarioSpec

__all__ = [
    "ANALYSIS_KINDS",
    "ScenarioResult",
    "ScenarioSpec",
    "all_scenarios",
    "convergence_rows",
    "get_scenario",
    "register",
    "render_scenario_report",
    "run_scenario",
    "scenario_names",
]
