"""Declarative chaos scenarios: the live stack under scheduled faults.

The simulated experiments live in the :class:`ScenarioSpec` registry;
this module is their live-stack sibling.  A :class:`ChaosScenarioSpec`
names a cluster shape plus a :class:`~repro.net.chaos.ChaosSchedule`,
and :func:`run_chaos_scenario` executes it end to end on a
:class:`~repro.net.chaos.VirtualClockLoop`:

1. build a :class:`~repro.net.cluster.LocalCluster` on a seeded
   :class:`~repro.net.chaos.ChaosHub`;
2. warm up the sampling layer, broadcast the start signal;
3. let a :class:`~repro.net.chaos.ChaosController` walk the schedule
   (partition/heal, kill/restart, flash-crowd surge, link faults);
4. await re-convergence within the budget and report
   **time-to-functional** -- virtual seconds from the last fault event
   to perfect tables everywhere (the recovery metric, not just
   steady-state convergence).

Everything runs on virtual time with seeded randomness, so a chaos
run is deterministic: the same spec and seed yield the identical
:class:`ChaosRunReport`, message counters and virtual timestamps --
pinned by ``tests/test_chaos.py`` and relied on by
``benchmarks/bench_chaos.py``'s gates.

Registered scenarios (``repro chaos list``): ``chaos_partition_heal``
(asymmetric split, timed heal), ``chaos_flash_crowd`` (half the pool
joins as one surge), ``chaos_targeted_kill`` (the most-referenced half
dies, then restarts through the seed path).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, replace

from .. import seams
from ..core.config import PAPER_CONFIG
from ..net.chaos import (
    ChaosController,
    ChaosEvent,
    ChaosHub,
    ChaosSchedule,
    run_virtual,
)
from ..net.cluster import LocalCluster
from ..simulator.random_source import RandomSource

__all__ = [
    "ChaosScenarioSpec",
    "ChaosRunReport",
    "all_chaos_scenarios",
    "chaos_scenario_names",
    "get_chaos_scenario",
    "register_chaos",
    "run_chaos_scenario",
]


@dataclass(frozen=True)
class ChaosScenarioSpec:
    """One named, declarative chaos experiment.

    Attributes
    ----------
    name:
        Registry key (``repro chaos run <name>``).
    title:
        One-line human description.
    claim:
        The paper claim (or related-work metric) the scenario probes.
    size:
        Cluster size (dormant flash-crowd peers included).
    seed:
        Master seed (cluster build, fault fabric, victim selection).
    schedule:
        The fault timeline, relative to the start broadcast.
    warmup:
        Sampling-layer warm-up before the start signal, seconds.
    budget:
        Virtual seconds allowed for convergence after the last event.
    dormant_fraction:
        Fraction of the pool held back for a ``surge`` event.
    cycle_length:
        Bootstrap Δ in seconds (also scales retry timeouts).
    newscast_interval:
        NEWSCAST gossip period in seconds.
    view_size:
        NEWSCAST view size.
    seed_contacts:
        Join-list length per peer.
    """

    name: str
    title: str
    claim: str
    size: int
    schedule: ChaosSchedule
    seed: int = 1
    warmup: float = 0.4
    budget: float = 8.0
    dormant_fraction: float = 0.0
    cycle_length: float = 0.05
    newscast_interval: float = 0.05
    view_size: int = 30
    seed_contacts: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chaos scenario needs a non-empty name")
        if self.size < 4:
            raise ValueError(f"size must be >= 4, got {self.size}")
        if self.budget <= 0.0:
            raise ValueError(f"budget must be > 0, got {self.budget}")
        if not 0.0 <= self.dormant_fraction < 1.0:
            raise ValueError(
                "dormant_fraction must be in [0, 1), got "
                f"{self.dormant_fraction}"
            )

    def smoke(self, max_size: int = 16) -> ChaosScenarioSpec:
        """A CI-sized variant: the cluster shrinks, the fault timeline
        survives untouched (every event still fires)."""
        return replace(self, size=min(self.size, max_size))

    # -- JSON round-trip ----------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "title": self.title,
            "claim": self.claim,
            "size": self.size,
            "seed": self.seed,
            "schedule": self.schedule.to_dict(),
            "warmup": self.warmup,
            "budget": self.budget,
            "dormant_fraction": self.dormant_fraction,
            "cycle_length": self.cycle_length,
            "newscast_interval": self.newscast_interval,
            "view_size": self.view_size,
            "seed_contacts": self.seed_contacts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> ChaosScenarioSpec:
        """Rebuild a scenario from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            title=str(data.get("title", "")),
            claim=str(data.get("claim", "")),
            size=int(data["size"]),  # type: ignore[arg-type]
            seed=int(data.get("seed", 1)),  # type: ignore[arg-type]
            schedule=ChaosSchedule.from_dict(
                data.get("schedule", {"events": []})  # type: ignore
            ),
            warmup=float(data.get("warmup", 0.4)),  # type: ignore
            budget=float(data.get("budget", 8.0)),  # type: ignore
            dormant_fraction=float(
                data.get("dormant_fraction", 0.0)  # type: ignore
            ),
            cycle_length=float(data.get("cycle_length", 0.05)),  # type: ignore
            newscast_interval=float(
                data.get("newscast_interval", 0.05)  # type: ignore
            ),
            view_size=int(data.get("view_size", 30)),  # type: ignore
            seed_contacts=int(data.get("seed_contacts", 3)),  # type: ignore
        )

    def to_json(self, indent: int = 1) -> str:
        """Serialise to a stable JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> ChaosScenarioSpec:
        """Parse a :meth:`to_json` document."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ChaosRunReport:
    """The outcome of one chaos run (deterministic for a given spec
    and seed -- all timestamps are virtual seconds).

    ``time_to_functional`` is the recovery metric: virtual seconds
    from the final fault event to network-wide perfect tables
    (``None`` when the budget ran out first).  The ``final_*_fraction``
    fields are the *missing*-entry fractions of the paper's plots, so
    0.0 means perfect tables.
    """

    name: str
    seed: int
    size: int
    converged: bool
    warmup: float
    faults_done_at: float
    converged_at: float | None
    time_to_functional: float | None
    final_leaf_fraction: float
    final_prefix_fraction: float
    events: tuple[dict[str, object], ...]
    peer_totals: dict[str, int]
    hub_counters: dict[str, int]
    crashed_peers: int

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the benchmark artefact payload)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "size": self.size,
            "converged": self.converged,
            "warmup": self.warmup,
            "faults_done_at": self.faults_done_at,
            "converged_at": self.converged_at,
            "time_to_functional": self.time_to_functional,
            "final_leaf_fraction": self.final_leaf_fraction,
            "final_prefix_fraction": self.final_prefix_fraction,
            "events": list(self.events),
            "peer_totals": dict(self.peer_totals),
            "hub_counters": dict(self.hub_counters),
            "crashed_peers": self.crashed_peers,
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_CHAOS_REGISTRY: dict[str, ChaosScenarioSpec] = {}


def register_chaos(spec: ChaosScenarioSpec) -> ChaosScenarioSpec:
    """Add *spec* to the chaos registry (rejecting duplicate names)."""
    if spec.name in _CHAOS_REGISTRY:
        raise ValueError(
            f"chaos scenario {spec.name!r} is already registered"
        )
    _CHAOS_REGISTRY[spec.name] = spec
    return spec


def get_chaos_scenario(name: str) -> ChaosScenarioSpec:
    """Look up a registered chaos scenario by name.

    Raises ``KeyError`` naming the known scenarios, so a typo on the
    CLI reads like the ``repro chaos list`` output.
    """
    try:
        return _CHAOS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; known scenarios: "
            f"{', '.join(chaos_scenario_names())}"
        ) from None


def chaos_scenario_names() -> tuple[str, ...]:
    """Registered chaos scenario names, in registration order."""
    return tuple(_CHAOS_REGISTRY)


def all_chaos_scenarios() -> tuple[ChaosScenarioSpec, ...]:
    """Every registered chaos scenario, in registration order."""
    return tuple(_CHAOS_REGISTRY.values())


register_chaos(
    ChaosScenarioSpec(
        name="chaos_partition_heal",
        title="Asymmetric partition for 1s of bootstrap, then heal",
        claim=(
            "Section 1: the service keeps working 'despite catastrophic "
            "failures' -- after the partition heals, the cluster "
            "re-converges to perfect tables within the budget"
        ),
        size=32,
        seed=11,
        schedule=ChaosSchedule.of(
            ChaosEvent.of(
                0.2, "partition", fraction=0.375, symmetric=False
            ),
            ChaosEvent.of(1.2, "heal"),
        ),
    )
)

register_chaos(
    ChaosScenarioSpec(
        name="chaos_flash_crowd",
        title="Half the pool joins as one surge mid-bootstrap",
        claim=(
            "'Stress Testing the Booters' flash-crowd shape: a join "
            "surge of 50% of the pool is absorbed and the grown "
            "cluster still reaches perfect tables"
        ),
        size=32,
        seed=12,
        dormant_fraction=0.5,
        schedule=ChaosSchedule.of(ChaosEvent.of(0.5, "surge")),
    )
)

register_chaos(
    ChaosScenarioSpec(
        name="chaos_targeted_kill",
        title="Targeted 50% kill (highest in-degree), then restart",
        claim=(
            "'Stress Testing the Booters' targeted-kill shape + 'BB: "
            "Booting Booster' recovery metric: survivors stay "
            "functional and the restarted half rejoins through the "
            "seed path to full convergence"
        ),
        size=32,
        seed=13,
        schedule=ChaosSchedule.of(
            ChaosEvent.of(0.3, "kill", fraction=0.5, mode="targeted"),
            ChaosEvent.of(1.3, "restart"),
        ),
    )
)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def run_chaos_scenario(
    spec: ChaosScenarioSpec | str,
    *,
    seed: int | None = None,
    smoke: bool = False,
) -> ChaosRunReport:
    """Execute one chaos scenario on a virtual-clock event loop.

    *spec* is a :class:`ChaosScenarioSpec` or a registry name.  Seed
    precedence: explicit *seed* argument, then the ``REPRO_CHAOS_SEED``
    seam, then the spec's own seed; ``REPRO_CHAOS_BUDGET`` (virtual
    seconds) overrides the convergence budget the same way.  *smoke*
    applies :meth:`ChaosScenarioSpec.smoke` first.
    """
    if isinstance(spec, str):
        spec = get_chaos_scenario(spec)
    if smoke:
        spec = spec.smoke()
    if seed is None:
        seed = seams.integer("REPRO_CHAOS_SEED")
    if seed is None:
        seed = spec.seed
    budget_override = seams.integer("REPRO_CHAOS_BUDGET")
    budget = float(budget_override) if budget_override else spec.budget
    return run_virtual(_run_chaos(spec, int(seed), budget))


async def _run_chaos(
    spec: ChaosScenarioSpec, seed: int, budget: float
) -> ChaosRunReport:
    """The chaos deployment story (awaited on the virtual loop)."""
    source = RandomSource(seed)
    hub = ChaosHub(rng=source.derive("chaos-hub"))
    config = PAPER_CONFIG.with_overrides(cycle_length=spec.cycle_length)
    cluster = await LocalCluster.create(
        spec.size,
        seed=seed,
        config=config,
        hub=hub,
        view_size=spec.view_size,
        newscast_interval=spec.newscast_interval,
        seed_contacts=spec.seed_contacts,
    )
    try:
        if spec.dormant_fraction:
            cluster.hold_back(
                spec.dormant_fraction, source.derive("dormant")
            )
        cluster.start_sampling_layer()
        await cluster.warmup(spec.warmup)
        cluster.broadcast_start()
        loop = asyncio.get_running_loop()
        started = loop.time()
        controller = ChaosController(
            cluster, hub, spec.schedule, source.derive("controller")
        )
        events = tuple(await controller.run())
        faults_done_at = loop.time() - started
        converged = await cluster.await_convergence(budget)
        converged_at = (loop.time() - started) if converged else None
        final = cluster.measure()
        peer_totals: dict[str, int] = {}
        for peer in cluster.live_peers():
            for key, value in peer.resilience_snapshot().items():
                peer_totals[key] = peer_totals.get(key, 0) + value
            stats = peer.bootstrap.stats
            peer_totals["messages_sent"] = (
                peer_totals.get("messages_sent", 0) + stats.messages_sent
            )
            peer_totals["messages_received"] = (
                peer_totals.get("messages_received", 0)
                + stats.messages_received
            )
    finally:
        crash_report = await cluster.shutdown()
    return ChaosRunReport(
        name=spec.name,
        seed=seed,
        size=spec.size,
        converged=converged,
        warmup=spec.warmup,
        faults_done_at=faults_done_at,
        converged_at=converged_at,
        time_to_functional=(
            converged_at - faults_done_at if converged_at is not None else None
        ),
        final_leaf_fraction=final.leaf_fraction,
        final_prefix_fraction=final.prefix_fraction,
        events=events,
        peer_totals=peer_totals,
        hub_counters=hub.counters(),
        crashed_peers=len(crash_report),
    )
