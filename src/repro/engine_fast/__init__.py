"""Array-backed simulation engine, differentially pinned to the
reference engine.

This package is the ``engine="fast"`` side of the engine seam: the
same experiments (:class:`repro.simulator.ExperimentSpec`,
:class:`repro.runtime.SweepGrid`, CLI ``--engine``) run on either
implementation and produce bit-identical trajectories.  See
:mod:`repro.engine_fast.sim` for the identity argument and
``tests/test_engine_fast.py`` for the differential harness that
enforces it.
"""

from . import kernels
from .sim import FastBootstrapSimulation, FastConvergenceTracker
from .state import (
    FastNewscastView,
    FastNodeState,
    FastOracleSampler,
    FastRegistry,
)

__all__ = [
    "kernels",
    "FastBootstrapSimulation",
    "FastConvergenceTracker",
    "FastNewscastView",
    "FastNodeState",
    "FastOracleSampler",
    "FastRegistry",
]
