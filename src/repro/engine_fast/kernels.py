"""Batch kernels over identifier arrays (the fast engine's hot math).

The reference engine ranks and selects :class:`NodeDescriptor` objects;
profiling PR 1 showed the per-exchange cost is dominated by exactly two
geometric computations, both of which reduce to pure integer work once
descriptors are stored as parallel id arrays:

* **ring ranking** -- sort a candidate set by ``(ring distance to an
  origin, id)``; used by ``SELECTPEER`` (distance from the node itself)
  and ``CREATEMESSAGE`` (distance from the destination peer);
* **balanced selection** -- the paper's UPDATELEAFSET rule: keep the
  ``c/2`` closest successors and predecessors of an origin, backfilling
  when one side runs short.

Each kernel has two interchangeable implementations: a vectorised
``numpy`` path (uint64 arrays; unsigned arithmetic wraps modulo
``2**64``, which *is* ring arithmetic for 64-bit spaces) and a pure
Python fallback used when numpy is unavailable -- or unconditionally via
``REPRO_FAST_BACKEND=python``.  Both produce **identical** outputs: ring
distances per side are unique (the forward distance determines the id),
so every selection below has exactly one correct answer.  The
differential suite runs both backends against the reference engine.

Arrays only pay for themselves past a size threshold (converting a
50-element set to ``ndarray`` costs more than sorting it); below
:data:`NUMPY_MIN_SIZE` candidates the Python path is used even when
numpy is installed.
"""

from __future__ import annotations

from heapq import nsmallest
from collections.abc import Iterable, Sequence

from .. import seams

try:  # pragma: no cover - exercised via both backend parametrisations
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "NUMPY_MIN_SIZE",
    "backend",
    "set_backend",
    "rank_ids",
    "select_balanced",
    "balanced_counts_arrays",
    "select_balanced_arrays",
    "close_and_rest",
    "close_and_rest_arrays",
    "close_and_rest_with_aux",
    "slot_tables",
    "prefix_slots",
    "prefix_slots_arrays",
    "prefix_part",
    "prefix_part_arrays",
    "prefix_part_with_slots",
    "segment_take",
]

#: Candidate-set sizes below which the pure-Python path wins even with
#: numpy available (array round-trip overhead dominates tiny inputs).
#: Measured crossovers on CPython 3.11 / numpy 2.x; the exact values
#: only affect speed, never results.
NUMPY_MIN_SIZE = 24
#: The slot kernels do an argsort-based group-cap; their crossover is
#: much higher than the pure ranking kernels'.
NUMPY_MIN_SLOTS = 192

#: The session default, captured from the environment once at import;
#: ``set_backend("auto")`` restores *this* (so a test that forces a
#: backend and then resets does not silently undo an operator's
#: ``REPRO_FAST_BACKEND`` pin).
_DEFAULT_BACKEND = seams.enum("REPRO_FAST_BACKEND")
if _DEFAULT_BACKEND == "numpy" and _np is None:
    raise ImportError("REPRO_FAST_BACKEND=numpy but numpy is not installed")
_backend = _DEFAULT_BACKEND


def backend() -> str:
    """The active kernel backend: ``"numpy"`` or ``"python"``."""
    return "numpy" if _np is not None and _backend != "python" else "python"


def set_backend(name: str) -> None:
    """Force a backend at runtime (testing hook).

    ``"auto"`` restores the session default -- the
    ``REPRO_FAST_BACKEND`` pin captured at import time, or the
    size-thresholded preference order when no pin was set.
    """
    global _backend
    if name not in ("auto", "numpy", "python"):
        raise ValueError(f"backend must be auto|numpy|python, got {name!r}")
    if name == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is not installed")
    _backend = _DEFAULT_BACKEND if name == "auto" else name


def _use_numpy(n: int, min_n: int = NUMPY_MIN_SIZE) -> bool:
    if _backend == "python" or _np is None:
        return False
    if _backend == "numpy":
        return True
    return n >= min_n


# ----------------------------------------------------------------------
# Ring ranking
# ----------------------------------------------------------------------


def rank_ids(ids: Sequence[int], origin: int, mask: int) -> list[int]:
    """*ids* sorted by ``(ring distance from origin, id)``.

    *mask* is ``space.size - 1``; distances are computed modulo
    ``mask + 1``.  The id tiebreak makes the order total, so both
    backends agree bit-for-bit.
    """
    n = len(ids)
    if _use_numpy(n) and mask == 0xFFFFFFFFFFFFFFFF:
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        fw = arr - _np.uint64(origin)
        dist = _np.minimum(fw, -fw)
        return arr[_np.lexsort((arr, dist))].tolist()
    if _use_numpy(n):
        mu = _np.uint64(mask)
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        fw = (arr - _np.uint64(origin)) & mu
        dist = _np.minimum(fw, (-fw) & mu)
        return arr[_np.lexsort((arr, dist))].tolist()
    decorated = sorted(
        (min((nid - origin) & mask, (origin - nid) & mask), nid)
        for nid in ids
    )
    return [nid for _, nid in decorated]


# ----------------------------------------------------------------------
# Balanced leaf-set selection
# ----------------------------------------------------------------------


def _balanced_counts(
    n_succ: int, n_pred: int, half_capacity: int
) -> tuple[int, int]:
    """How many successors/predecessors to keep, with the paper's
    backfill rule when one side runs short."""
    take_succ = min(half_capacity, n_succ)
    take_pred = min(half_capacity, n_pred)
    spare = (half_capacity - take_succ) + (half_capacity - take_pred)
    if spare:
        extra = min(spare, n_succ - take_succ)
        take_succ += extra
        spare -= extra
        take_pred += min(spare, n_pred - take_pred)
    return take_succ, take_pred


def balanced_counts_arrays(n_succ, n_pred, half_capacity: int):
    """Vectorised :func:`_balanced_counts`: parallel successor and
    predecessor count arrays in, parallel take-count arrays out.
    numpy-only; the vector engine folds a whole wave's per-message
    balanced thresholds through one call instead of a Python loop."""
    take_succ = _np.minimum(half_capacity, n_succ)
    take_pred = _np.minimum(half_capacity, n_pred)
    spare = (half_capacity - take_succ) + (half_capacity - take_pred)
    extra = _np.minimum(spare, n_succ - take_succ)
    take_succ = take_succ + extra
    take_pred = take_pred + _np.minimum(
        spare - extra, n_pred - take_pred
    )
    return take_succ, take_pred


def select_balanced_arrays(arr, origin: int, mask: int, half_ring: int,
                           half_capacity: int):
    """Array-native :func:`select_balanced`: uint64 ids in, uint64 ids
    out (selection order unspecified).  numpy-only -- the vector engine
    calls this directly on its resident id arrays; the set-based
    wrapper below routes through it after conversion."""
    mu = _np.uint64(mask)
    fw = (arr - _np.uint64(origin)) & mu
    succ_mask = fw <= _np.uint64(half_ring)
    succ_ids = arr[succ_mask]
    pred_ids = arr[~succ_mask]
    take_succ, take_pred = _balanced_counts(
        len(succ_ids), len(pred_ids), half_capacity
    )
    parts = []
    if take_succ:
        if take_succ < len(succ_ids):
            d = fw[succ_mask]
            keep = _np.argpartition(d, take_succ - 1)[:take_succ]
            parts.append(succ_ids[keep])
        else:
            parts.append(succ_ids)
    if take_pred:
        if take_pred < len(pred_ids):
            d = ((-fw) & mu)[~succ_mask]
            keep = _np.argpartition(d, take_pred - 1)[:take_pred]
            parts.append(pred_ids[keep])
        else:
            parts.append(pred_ids)
    if not parts:
        return arr[:0]
    return _np.concatenate(parts)


def select_balanced(
    ids: Iterable[int],
    origin: int,
    mask: int,
    half_ring: int,
    half_capacity: int,
) -> set[int]:
    """The paper's UPDATELEAFSET selection over plain ids.

    Equivalent to :func:`repro.core.leafset.select_balanced_ids` for
    candidate sets that do not contain *origin* (the fast engine's
    callers guarantee that).  Distances per side are unique, so the
    result is a well-defined set regardless of input order.
    """
    if not isinstance(ids, (list, tuple, set)):
        ids = list(ids)
    n = len(ids)
    if _use_numpy(n):
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        return set(
            select_balanced_arrays(
                arr, origin, mask, half_ring, half_capacity
            ).tolist()
        )

    successors: list[tuple[int, int]] = []
    predecessors: list[tuple[int, int]] = []
    for nid in ids:
        forward = (nid - origin) & mask
        if forward <= half_ring:
            successors.append((forward, nid))
        else:
            predecessors.append((mask + 1 - forward, nid))
    take_succ, take_pred = _balanced_counts(
        len(successors), len(predecessors), half_capacity
    )
    chosen = {nid for _, nid in nsmallest(take_succ, successors)}
    chosen.update(nid for _, nid in nsmallest(take_pred, predecessors))
    return chosen


# ----------------------------------------------------------------------
# CREATEMESSAGE's close/rest split
# ----------------------------------------------------------------------


def close_and_rest(
    ids: Iterable[int],
    peer: int,
    mask: int,
    half_ring: int,
    half_capacity: int,
) -> tuple[list[int], list[int]]:
    """Partition a CREATEMESSAGE union around the destination *peer*.

    Returns ``(close_part, rest)``: the balanced-closest selection
    around *peer* and the remaining ids, both in ``(ring distance to
    peer, id)`` order -- exactly the reference protocol's message
    layout.  *ids* must not contain *peer*.

    The numpy path computes the forward-distance array once and derives
    ranking, successor/predecessor split, and the balanced pick from it
    in a single pass (this runs twice per exchange, it is the hottest
    kernel in the engine).
    """
    pool = ids if isinstance(ids, (list, tuple, set)) else list(ids)
    n = len(pool)
    if _use_numpy(n):
        arr = _np.fromiter(pool, dtype=_np.uint64, count=n)
        close_arr, rest_arr = close_and_rest_arrays(
            arr, peer, mask, half_ring, half_capacity
        )
        return close_arr.tolist(), rest_arr.tolist()
    if not isinstance(pool, (list, tuple)):
        pool = list(pool)
    ranked = rank_ids(pool, peer, mask)
    chosen = select_balanced(pool, peer, mask, half_ring, half_capacity)
    close_part: list[int] = []
    rest: list[int] = []
    for nid in ranked:
        if nid in chosen:
            close_part.append(nid)
        else:
            rest.append(nid)
    return close_part, rest


def close_and_rest_arrays(arr, peer: int, mask: int, half_ring: int,
                          half_capacity: int):
    """Array-native :func:`close_and_rest`: uint64 ids in, a
    ``(close, rest)`` pair of uint64 arrays out, both in ``(ring
    distance to peer, id)`` order.  numpy-only; shared by the set-based
    wrapper above and the vector engine's resident-array hot path.

    Within one side, ranked order (by ring distance) equals
    forward/backward-distance order, so the balanced pick is simply
    "the first ``take`` of each side in ranked order" -- one running
    count per side instead of per-side ``argpartition`` passes.
    """
    n = len(arr)
    if mask == 0xFFFFFFFFFFFFFFFF:
        # 64-bit ring: uint64 arithmetic wraps modulo 2**64 on its
        # own, the mask ops are no-ops.
        fw = arr - _np.uint64(peer)
        bw = -fw
    else:
        mu = _np.uint64(mask)
        fw = (arr - _np.uint64(peer)) & mu
        bw = (-fw) & mu
    order = _np.lexsort((arr, _np.minimum(fw, bw)))
    succ_ranked = (fw <= _np.uint64(half_ring))[order]
    succ_seen = _np.cumsum(succ_ranked)
    n_succ = int(succ_seen[-1]) if n else 0
    take_succ, take_pred = _balanced_counts(
        n_succ, n - n_succ, half_capacity
    )
    pred_seen = _arange(n + 1)[1:] - succ_seen
    keep = _np.where(
        succ_ranked, succ_seen <= take_succ, pred_seen <= take_pred
    )
    ranked = arr[order]
    return ranked[keep], ranked[~keep]


#: Growing shared index buffer: the group-cap and balanced-pick
#: kernels need a fresh ``arange`` per call only as a *read-only*
#: ramp, so one cached buffer (sliced per call) removes the hottest
#: allocation in the vector engine's exchange path.
_ARANGE = None


def _arange(n: int):  # pragma: no cover - numpy-only helper
    global _ARANGE
    if _ARANGE is None or _ARANGE.size < n:
        _ARANGE = _np.arange(max(n, 256))
    return _ARANGE[:n]


def close_and_rest_with_aux(arr, aux, peer: int, mask: int, half_ring: int,
                            half_capacity: int, drop_peer: bool):
    """:func:`close_and_rest_arrays` that carries a parallel *aux*
    array (packed slots) through the same ranking and split, and can
    drop *peer* itself from the ranking instead of requiring the
    caller to pre-filter it.

    When ``drop_peer`` is true and *peer* is present in *arr* it ranks
    first (ring distance zero is unique), so it is excluded by masking
    rank 0 -- cheaper than an equality scan over the whole union.
    Returns ``(close, rest, close_aux, rest_aux)``.

    Unlike :func:`close_and_rest_arrays` this ranks by distance alone
    with a *positional* (stable-sort) tie break instead of the id tie
    break: exact cross-side distance ties are measure-zero for random
    64-bit identifiers, and the vector engine -- this variant's only
    caller -- promises distributional rather than bit-level identity,
    so the cheaper single-key sort is safe.
    """
    n = len(arr)
    if mask == 0xFFFFFFFFFFFFFFFF:
        fw = arr - _np.uint64(peer)
        bw = -fw
    else:
        mu = _np.uint64(mask)
        fw = (arr - _np.uint64(peer)) & mu
        bw = (-fw) & mu
    order = _np.argsort(_np.minimum(fw, bw), kind="stable")
    ranked = arr[order]
    succ_ranked = (fw <= _np.uint64(half_ring))[order]
    succ_seen = _np.cumsum(succ_ranked)
    has_peer = 1 if (drop_peer and n and int(ranked[0]) == peer) else 0
    n_succ = (int(succ_seen[-1]) if n else 0) - has_peer
    take_succ, take_pred = _balanced_counts(
        n_succ, n - has_peer - n_succ, half_capacity
    )
    # The peer (when present) is the zero-distance "successor" at rank
    # 0: discounting it from the running successor count and masking
    # rank 0 out of both halves removes it from the message.
    pred_seen = _arange(n + 1)[1:] - succ_seen
    keep = _np.where(
        succ_ranked,
        succ_seen - has_peer <= take_succ,
        pred_seen <= take_pred,
    )
    aux_ranked = aux[order]
    if has_peer:
        keep[0] = False
        rest_mask = ~keep
        rest_mask[0] = False
    else:
        rest_mask = ~keep
    return (
        ranked[keep],
        ranked[rest_mask],
        aux_ranked[keep],
        aux_ranked[rest_mask],
    )


# ----------------------------------------------------------------------
# Prefix-table slot geometry
# ----------------------------------------------------------------------


def slot_tables(bits: int, digit_bits: int) -> tuple[list[int], list[int]]:
    """Lookup tables for the packed-slot computation.

    ``row_of[bit_length(own ^ id)]`` is the prefix-table row, and
    ``shift_of[row]`` the right-shift that exposes the id's digit at
    that row.  The hot python loops index these instead of redoing the
    division/multiplication per id.
    """
    row_of = [(bits - bl) // digit_bits for bl in range(bits + 1)]
    rows = bits // digit_bits
    shift_of = [bits - (row + 1) * digit_bits for row in range(rows + 1)]
    return row_of, shift_of


def prefix_slots(ids: Sequence[int], origin: int, bits: int,
                 digit_bits: int, base_mask: int) -> list[int]:
    """Packed prefix-table slots ``(row << digit_bits) | column`` of
    every id relative to *origin* (ids must differ from *origin*).

    This is the standalone form of the slot geometry that the engine
    hot paths inline (``prefix_part`` and the absorb loops in
    :mod:`~repro.engine_fast.sim`); the differential and property
    suites pin it against :meth:`repro.core.idspace.IDSpace.prefix_slot`,
    which anchors the inlined copies to the same reference.
    """
    n = len(ids)
    if n and _use_numpy(n, NUMPY_MIN_SLOTS):
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        return prefix_slots_arrays(
            arr, origin, bits, digit_bits, base_mask
        ).tolist()
    out: list[int] = []
    for nid in ids:
        diff = origin ^ nid
        row = (bits - diff.bit_length()) // digit_bits
        shift = bits - (row + 1) * digit_bits
        out.append((row << digit_bits) | ((nid >> shift) & base_mask))
    return out


def prefix_part(rest: list[int], peer: int, bits: int, digit_bits: int,
                base_mask: int, k: int,
                tables: tuple[list[int], list[int]] | None = None,
                ) -> tuple[list[int], list[int]]:
    """CREATEMESSAGE's prefix-targeted part: walk *rest* (already in
    ranked order) and keep the first *k* ids landing in each slot of a
    hypothetical table centred on *peer* -- the paper's "potentially
    useful for the peer" bound, realised constructively.

    Returns ``(kept_ids, kept_slots)``.  The slots come for free from
    the capping pass, and because a message is only ever absorbed by
    the peer it was created for, they are exactly the receiving node's
    UPDATEPREFIXTABLE slot keys -- shipping them avoids recomputing the
    digit geometry on the absorb side.
    """
    n = len(rest)
    if n and _use_numpy(n, NUMPY_MIN_SLOTS):
        arr = _np.fromiter(rest, dtype=_np.uint64, count=n)
        ids_arr, slots_arr = prefix_part_arrays(
            arr, peer, bits, digit_bits, base_mask, k
        )
        return ids_arr.tolist(), slots_arr.tolist()
    ids_out: list[int] = []
    slots_out: list[int] = []
    id_append = ids_out.append
    slot_append = slots_out.append
    occupancy = {}
    get = occupancy.get
    row_of, shift_of = tables if tables is not None else slot_tables(
        bits, digit_bits
    )
    for nid in rest:
        row = row_of[(peer ^ nid).bit_length()]
        slot = (row << digit_bits) | ((nid >> shift_of[row]) & base_mask)
        count = get(slot, 0)
        if count < k:
            occupancy[slot] = count + 1
            id_append(nid)
            slot_append(slot)
    return ids_out, slots_out


#: Per-geometry digit-boundary tables for the vectorised slot kernel:
#: ``(bits, digit_bits) -> uint64 array of 2**(digit_bits*m)`` bounds.
_SLOT_THRESHOLDS: dict = {}


def _slot_thresholds(bits: int, digit_bits: int):
    key = (bits, digit_bits)
    cached = _SLOT_THRESHOLDS.get(key)
    if cached is None:
        rows = bits // digit_bits
        cached = _SLOT_THRESHOLDS[key] = _np.array(
            [1 << (digit_bits * m) for m in range(1, rows)],
            dtype=_np.uint64,
        )
    return cached


def prefix_slots_arrays(arr, origin: int, bits: int, digit_bits: int,
                        base_mask: int):
    """Array-native :func:`prefix_slots`: uint64 ids in, int64 packed
    slots out.  numpy-only, shared with the vector engine.

    The row of an id is determined by which digit-aligned power-of-two
    band ``own ^ id`` falls in, so one ``searchsorted`` against the
    (cached) band boundaries replaces the float ``bit_length``
    emulation: ``row = rows - 1 - j`` and ``shift = digit_bits * j``
    where ``j`` counts the boundaries at or below the XOR difference.
    """
    if isinstance(origin, _np.ndarray):
        # Mixed-origin form (the vector engine's paired-message path):
        # one packed-slot pass over ids belonging to different tables.
        diff = arr ^ origin
    else:
        diff = arr ^ _np.uint64(origin)
    j = _slot_thresholds(bits, digit_bits).searchsorted(diff, side="right")
    shift = (j * digit_bits).astype(_np.uint64)
    col = (arr >> shift) & _np.uint64(base_mask)
    row = (bits // digit_bits - 1) - j.astype(_np.int64)
    return (row << digit_bits) | col.astype(_np.int64)


def prefix_part_with_slots(rest, slots, k: int, aux=None):
    """:func:`prefix_part_arrays` with the packed slots already in
    hand (computed once for the whole message union): only the
    first-``k``-per-slot cap in ranked order remains.  Returns
    ``(kept_ids, kept_slots)``, or ``(kept_ids, kept_slots,
    kept_aux)`` when *aux* (a parallel per-id payload) is given."""
    n = len(rest)
    if n == 0:
        return (rest, slots) if aux is None else (rest, slots, aux)
    order = _np.argsort(slots, kind="stable")
    sorted_slots = slots[order]
    idx = _arange(n)
    new_group = _np.empty(n, dtype=bool)
    new_group[0] = True
    _np.not_equal(sorted_slots[1:], sorted_slots[:-1], out=new_group[1:])
    group_start = _np.maximum.accumulate(_np.where(new_group, idx, 0))
    keep = _np.empty(n, dtype=bool)
    keep[order] = (idx - group_start) < k
    if aux is None:
        return rest[keep], slots[keep]
    return rest[keep], slots[keep], aux[keep]


def segment_take(buf, starts, lens):  # pragma: no cover - numpy-only helper
    """Gather the variable-length windows ``buf[starts[i] :
    starts[i] + lens[i]]`` into one contiguous array, windows in
    order.

    numpy-only; the segmented twin of fancy indexing for pooled
    variable-length storage (the vector engine's arena keeps per-node
    tables as windows over shared buffers, and its slab measurer pulls
    every dirty node's window in one call instead of a Python loop).
    """
    total = int(lens.sum())
    if total == 0:
        return buf[:0]
    out_starts = _np.cumsum(lens) - lens
    within = _arange(total) - _np.repeat(out_starts, lens)
    return buf[_np.repeat(starts, lens) + within]


def prefix_part_arrays(arr, peer: int, bits: int, digit_bits: int,
                       base_mask: int, k: int):
    """Array-native :func:`prefix_part`: a ranked uint64 id array in,
    ``(kept_ids, kept_slots)`` arrays out (uint64 / int64).  numpy-only,
    shared by the list wrapper above and the vector engine."""
    n = len(arr)
    if n == 0:
        return arr, _np.empty(0, dtype=_np.int64)
    slots = prefix_slots_arrays(arr, peer, bits, digit_bits, base_mask)
    return prefix_part_with_slots(arr, slots, k)
