"""Batch kernels over identifier arrays (the fast engine's hot math).

The reference engine ranks and selects :class:`NodeDescriptor` objects;
profiling PR 1 showed the per-exchange cost is dominated by exactly two
geometric computations, both of which reduce to pure integer work once
descriptors are stored as parallel id arrays:

* **ring ranking** -- sort a candidate set by ``(ring distance to an
  origin, id)``; used by ``SELECTPEER`` (distance from the node itself)
  and ``CREATEMESSAGE`` (distance from the destination peer);
* **balanced selection** -- the paper's UPDATELEAFSET rule: keep the
  ``c/2`` closest successors and predecessors of an origin, backfilling
  when one side runs short.

Each kernel has two interchangeable implementations: a vectorised
``numpy`` path (uint64 arrays; unsigned arithmetic wraps modulo
``2**64``, which *is* ring arithmetic for 64-bit spaces) and a pure
Python fallback used when numpy is unavailable -- or unconditionally via
``REPRO_FAST_BACKEND=python``.  Both produce **identical** outputs: ring
distances per side are unique (the forward distance determines the id),
so every selection below has exactly one correct answer.  The
differential suite runs both backends against the reference engine.

Arrays only pay for themselves past a size threshold (converting a
50-element set to ``ndarray`` costs more than sorting it); below
:data:`NUMPY_MIN_SIZE` candidates the Python path is used even when
numpy is installed.
"""

from __future__ import annotations

import os
from heapq import nsmallest
from typing import Iterable, List, Sequence, Set, Tuple

try:  # pragma: no cover - exercised via both backend parametrisations
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "NUMPY_MIN_SIZE",
    "backend",
    "set_backend",
    "rank_ids",
    "select_balanced",
    "close_and_rest",
    "slot_tables",
    "prefix_slots",
    "prefix_part",
]

#: Candidate-set sizes below which the pure-Python path wins even with
#: numpy available (array round-trip overhead dominates tiny inputs).
#: Measured crossovers on CPython 3.11 / numpy 2.x; the exact values
#: only affect speed, never results.
NUMPY_MIN_SIZE = 24
#: The slot kernels do an argsort-based group-cap; their crossover is
#: much higher than the pure ranking kernels'.
NUMPY_MIN_SLOTS = 192

#: The session default, captured from the environment once at import;
#: ``set_backend("auto")`` restores *this* (so a test that forces a
#: backend and then resets does not silently undo an operator's
#: ``REPRO_FAST_BACKEND`` pin).
_DEFAULT_BACKEND = os.environ.get("REPRO_FAST_BACKEND", "auto")
if _DEFAULT_BACKEND not in ("auto", "numpy", "python"):
    raise ValueError(
        "REPRO_FAST_BACKEND must be auto|numpy|python, "
        f"got {_DEFAULT_BACKEND!r}"
    )
if _DEFAULT_BACKEND == "numpy" and _np is None:
    raise ImportError("REPRO_FAST_BACKEND=numpy but numpy is not installed")
_backend = _DEFAULT_BACKEND


def backend() -> str:
    """The active kernel backend: ``"numpy"`` or ``"python"``."""
    return "numpy" if _np is not None and _backend != "python" else "python"


def set_backend(name: str) -> None:
    """Force a backend at runtime (testing hook).

    ``"auto"`` restores the session default -- the
    ``REPRO_FAST_BACKEND`` pin captured at import time, or the
    size-thresholded preference order when no pin was set.
    """
    global _backend
    if name not in ("auto", "numpy", "python"):
        raise ValueError(f"backend must be auto|numpy|python, got {name!r}")
    if name == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is not installed")
    _backend = _DEFAULT_BACKEND if name == "auto" else name


def _use_numpy(n: int, min_n: int = NUMPY_MIN_SIZE) -> bool:
    if _backend == "python" or _np is None:
        return False
    if _backend == "numpy":
        return True
    return n >= min_n


# ----------------------------------------------------------------------
# Ring ranking
# ----------------------------------------------------------------------


def rank_ids(ids: Sequence[int], origin: int, mask: int) -> List[int]:
    """*ids* sorted by ``(ring distance from origin, id)``.

    *mask* is ``space.size - 1``; distances are computed modulo
    ``mask + 1``.  The id tiebreak makes the order total, so both
    backends agree bit-for-bit.
    """
    n = len(ids)
    if _use_numpy(n) and mask == 0xFFFFFFFFFFFFFFFF:
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        fw = arr - _np.uint64(origin)
        dist = _np.minimum(fw, -fw)
        return arr[_np.lexsort((arr, dist))].tolist()
    if _use_numpy(n):
        mu = _np.uint64(mask)
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        fw = (arr - _np.uint64(origin)) & mu
        dist = _np.minimum(fw, (-fw) & mu)
        return arr[_np.lexsort((arr, dist))].tolist()
    decorated = sorted(
        (min((nid - origin) & mask, (origin - nid) & mask), nid)
        for nid in ids
    )
    return [nid for _, nid in decorated]


# ----------------------------------------------------------------------
# Balanced leaf-set selection
# ----------------------------------------------------------------------


def _balanced_counts(
    n_succ: int, n_pred: int, half_capacity: int
) -> Tuple[int, int]:
    """How many successors/predecessors to keep, with the paper's
    backfill rule when one side runs short."""
    take_succ = min(half_capacity, n_succ)
    take_pred = min(half_capacity, n_pred)
    spare = (half_capacity - take_succ) + (half_capacity - take_pred)
    if spare:
        extra = min(spare, n_succ - take_succ)
        take_succ += extra
        spare -= extra
        take_pred += min(spare, n_pred - take_pred)
    return take_succ, take_pred


def select_balanced(
    ids: Iterable[int],
    origin: int,
    mask: int,
    half_ring: int,
    half_capacity: int,
) -> Set[int]:
    """The paper's UPDATELEAFSET selection over plain ids.

    Equivalent to :func:`repro.core.leafset.select_balanced_ids` for
    candidate sets that do not contain *origin* (the fast engine's
    callers guarantee that).  Distances per side are unique, so the
    result is a well-defined set regardless of input order.
    """
    if not isinstance(ids, (list, tuple, set)):
        ids = list(ids)
    n = len(ids)
    if _use_numpy(n):
        mu = _np.uint64(mask)
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        fw = (arr - _np.uint64(origin)) & mu
        succ_mask = fw <= _np.uint64(half_ring)
        succ_ids = arr[succ_mask]
        pred_ids = arr[~succ_mask]
        take_succ, take_pred = _balanced_counts(
            len(succ_ids), len(pred_ids), half_capacity
        )
        chosen: Set[int] = set()
        if take_succ:
            if take_succ < len(succ_ids):
                d = fw[succ_mask]
                keep = _np.argpartition(d, take_succ - 1)[:take_succ]
                chosen.update(succ_ids[keep].tolist())
            else:
                chosen.update(succ_ids.tolist())
        if take_pred:
            if take_pred < len(pred_ids):
                d = ((-fw) & mu)[~succ_mask]
                keep = _np.argpartition(d, take_pred - 1)[:take_pred]
                chosen.update(pred_ids[keep].tolist())
            else:
                chosen.update(pred_ids.tolist())
        return chosen

    successors: List[Tuple[int, int]] = []
    predecessors: List[Tuple[int, int]] = []
    for nid in ids:
        forward = (nid - origin) & mask
        if forward <= half_ring:
            successors.append((forward, nid))
        else:
            predecessors.append((mask + 1 - forward, nid))
    take_succ, take_pred = _balanced_counts(
        len(successors), len(predecessors), half_capacity
    )
    chosen = {nid for _, nid in nsmallest(take_succ, successors)}
    chosen.update(nid for _, nid in nsmallest(take_pred, predecessors))
    return chosen


# ----------------------------------------------------------------------
# CREATEMESSAGE's close/rest split
# ----------------------------------------------------------------------


def close_and_rest(
    ids: Iterable[int],
    peer: int,
    mask: int,
    half_ring: int,
    half_capacity: int,
) -> Tuple[List[int], List[int]]:
    """Partition a CREATEMESSAGE union around the destination *peer*.

    Returns ``(close_part, rest)``: the balanced-closest selection
    around *peer* and the remaining ids, both in ``(ring distance to
    peer, id)`` order -- exactly the reference protocol's message
    layout.  *ids* must not contain *peer*.

    The numpy path computes the forward-distance array once and derives
    ranking, successor/predecessor split, and the balanced pick from it
    in a single pass (this runs twice per exchange, it is the hottest
    kernel in the engine).
    """
    pool = ids if isinstance(ids, (list, tuple, set)) else list(ids)
    n = len(pool)
    if _use_numpy(n):
        arr = _np.fromiter(pool, dtype=_np.uint64, count=n)
        if mask == 0xFFFFFFFFFFFFFFFF:
            # 64-bit ring: uint64 arithmetic wraps modulo 2**64 on its
            # own, the mask ops are no-ops.
            fw = arr - _np.uint64(peer)
            bw = -fw
        else:
            mu = _np.uint64(mask)
            fw = (arr - _np.uint64(peer)) & mu
            bw = (-fw) & mu
        order = _np.lexsort((arr, _np.minimum(fw, bw)))
        succ = fw <= _np.uint64(half_ring)
        n_succ = int(succ.sum())
        take_succ, take_pred = _balanced_counts(
            n_succ, n - n_succ, half_capacity
        )
        chosen = _np.zeros(n, dtype=bool)
        if take_succ == n_succ:
            chosen |= succ
        elif take_succ:
            d = _np.where(succ, fw, ~_np.uint64(0))
            chosen[_np.argpartition(d, take_succ - 1)[:take_succ]] = True
        pred_total = n - n_succ
        if take_pred == pred_total:
            chosen |= ~succ
        elif take_pred:
            d = _np.where(succ, ~_np.uint64(0), bw)
            chosen[_np.argpartition(d, take_pred - 1)[:take_pred]] = True
        chosen_sorted = chosen[order]
        ranked = arr[order]
        return (
            ranked[chosen_sorted].tolist(),
            ranked[~chosen_sorted].tolist(),
        )
    if not isinstance(pool, (list, tuple)):
        pool = list(pool)
    ranked = rank_ids(pool, peer, mask)
    chosen = select_balanced(pool, peer, mask, half_ring, half_capacity)
    close_part: List[int] = []
    rest: List[int] = []
    for nid in ranked:
        if nid in chosen:
            close_part.append(nid)
        else:
            rest.append(nid)
    return close_part, rest


# ----------------------------------------------------------------------
# Prefix-table slot geometry
# ----------------------------------------------------------------------


def _bit_lengths(diff):  # pragma: no cover - numpy-only helper
    """Vectorised ``int.bit_length`` for nonzero uint64 values.

    Splits each value into 32-bit halves so the float64 conversion is
    exact, then reads ``frexp``'s exponent (for an exactly-converted
    integer the exponent *is* the bit length -- no ``log2`` rounding
    hazards near power-of-two boundaries).
    """
    hi = (diff >> _np.uint64(32)).astype(_np.float64)
    lo = (diff & _np.uint64(0xFFFFFFFF)).astype(_np.float64)
    hi_bits = _np.frexp(hi)[1]
    lo_bits = _np.frexp(lo)[1]
    return _np.where(hi_bits > 0, hi_bits + 32, lo_bits)


def slot_tables(bits: int, digit_bits: int) -> Tuple[List[int], List[int]]:
    """Lookup tables for the packed-slot computation.

    ``row_of[bit_length(own ^ id)]`` is the prefix-table row, and
    ``shift_of[row]`` the right-shift that exposes the id's digit at
    that row.  The hot python loops index these instead of redoing the
    division/multiplication per id.
    """
    row_of = [(bits - bl) // digit_bits for bl in range(bits + 1)]
    rows = bits // digit_bits
    shift_of = [bits - (row + 1) * digit_bits for row in range(rows + 1)]
    return row_of, shift_of


def prefix_slots(ids: Sequence[int], origin: int, bits: int,
                 digit_bits: int, base_mask: int) -> List[int]:
    """Packed prefix-table slots ``(row << digit_bits) | column`` of
    every id relative to *origin* (ids must differ from *origin*).

    This is the standalone form of the slot geometry that the engine
    hot paths inline (``prefix_part`` and the absorb loops in
    :mod:`~repro.engine_fast.sim`); the differential and property
    suites pin it against :meth:`repro.core.idspace.IDSpace.prefix_slot`,
    which anchors the inlined copies to the same reference.
    """
    n = len(ids)
    if n and _use_numpy(n, NUMPY_MIN_SLOTS):
        arr = _np.fromiter(ids, dtype=_np.uint64, count=n)
        diff = arr ^ _np.uint64(origin)
        row = (bits - _bit_lengths(diff)) // digit_bits
        shift = (bits - (row + 1) * digit_bits).astype(_np.uint64)
        col = (arr >> shift) & _np.uint64(base_mask)
        return ((row.astype(_np.uint64) << _np.uint64(digit_bits)) | col).tolist()
    out: List[int] = []
    for nid in ids:
        diff = origin ^ nid
        row = (bits - diff.bit_length()) // digit_bits
        shift = bits - (row + 1) * digit_bits
        out.append((row << digit_bits) | ((nid >> shift) & base_mask))
    return out


def prefix_part(rest: List[int], peer: int, bits: int, digit_bits: int,
                base_mask: int, k: int,
                tables: "Tuple[List[int], List[int]] | None" = None,
                ) -> Tuple[List[int], List[int]]:
    """CREATEMESSAGE's prefix-targeted part: walk *rest* (already in
    ranked order) and keep the first *k* ids landing in each slot of a
    hypothetical table centred on *peer* -- the paper's "potentially
    useful for the peer" bound, realised constructively.

    Returns ``(kept_ids, kept_slots)``.  The slots come for free from
    the capping pass, and because a message is only ever absorbed by
    the peer it was created for, they are exactly the receiving node's
    UPDATEPREFIXTABLE slot keys -- shipping them avoids recomputing the
    digit geometry on the absorb side.
    """
    n = len(rest)
    if n and _use_numpy(n, NUMPY_MIN_SLOTS):
        arr = _np.fromiter(rest, dtype=_np.uint64, count=n)
        diff = arr ^ _np.uint64(peer)
        row = (bits - _bit_lengths(diff)) // digit_bits
        shift = (bits - (row + 1) * digit_bits).astype(_np.uint64)
        slots = (row << digit_bits) | (
            ((arr >> shift) & _np.uint64(base_mask)).astype(_np.int64)
        )
        order = _np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        idx = _np.arange(n)
        new_group = _np.empty(n, dtype=bool)
        new_group[0] = True
        _np.not_equal(sorted_slots[1:], sorted_slots[:-1], out=new_group[1:])
        group_start = _np.maximum.accumulate(_np.where(new_group, idx, 0))
        keep = _np.empty(n, dtype=bool)
        keep[order] = (idx - group_start) < k
        return arr[keep].tolist(), slots[keep].tolist()
    ids_out: List[int] = []
    slots_out: List[int] = []
    id_append = ids_out.append
    slot_append = slots_out.append
    occupancy = {}
    get = occupancy.get
    row_of, shift_of = tables if tables is not None else slot_tables(
        bits, digit_bits
    )
    for nid in rest:
        row = row_of[(peer ^ nid).bit_length()]
        slot = (row << digit_bits) | ((nid >> shift_of[row]) & base_mask)
        count = get(slot, 0)
        if count < k:
            occupancy[slot] = count + 1
            id_append(nid)
            slot_append(slot)
    return ids_out, slots_out
