"""Flat per-node state for the array-backed engine.

Everything the reference engine stores as :class:`NodeDescriptor`
objects inside :class:`LeafSet`/:class:`PrefixTable`/:class:`PartialView`
containers is held here as plain integers: a node's leaf set is a set of
ids, its prefix table a mapping of packed ``(row, column)`` slots to
bounded id lists, a NEWSCAST view a dict of ``id -> timestamp``.
Addresses never matter to a simulation's observable trajectory (they are
opaque and only echoed back), and timestamps matter only to NEWSCAST's
freshest-wins merge, so those are the only two fields retained anywhere.

The randomness contracts are the load-bearing part: every class here
consumes its ``random.Random`` stream with *exactly* the call pattern of
its reference counterpart (same branch structure, same draw counts), so
a fast run replays the reference run's decisions bit-for-bit.  Comments
below name the mirrored reference method for each such site.
"""

from __future__ import annotations

import random

__all__ = [
    "randbelow_of",
    "FastRegistry",
    "FastOracleSampler",
    "FastNewscastView",
    "FastNodeState",
]


def randbelow_of(rng: random.Random):
    """Bound uniform-int draw for *rng* without wrapper overhead.

    ``rng.randrange(n)`` and ``rng.choice(seq)`` both delegate to
    ``Random._randbelow(n)``; binding it directly skips their pure
    argument-validation layers while consuming the *identical* bits
    from the stream (this equivalence is what the differential suite
    pins).  Falls back to ``randrange`` if a Python implementation
    ever drops the private method.
    """
    randbelow = getattr(rng, "_randbelow", None)
    return randbelow if randbelow is not None else rng.randrange


class FastRegistry:
    """Id-only mirror of :class:`repro.sampling.oracle.MembershipRegistry`.

    Keeps the dense list + position index layout (swap-with-last
    removal) because the oracle's rejection sampling indexes into that
    list: identical layout is what makes the sampled *ids* identical.
    """

    __slots__ = ("_ids", "_positions")

    def __init__(self) -> None:
        self._ids: list[int] = []
        self._positions: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._positions

    def add(self, node_id: int) -> bool:
        """Register *node_id* as live (mirrors ``MembershipRegistry.add``)."""
        if node_id in self._positions:
            return False
        self._positions[node_id] = len(self._ids)
        self._ids.append(node_id)
        return True

    def remove(self, node_id: int) -> bool:
        """Deregister with swap-with-last, preserving the reference
        registry's dense ordering exactly."""
        pos = self._positions.pop(node_id, None)
        if pos is None:
            return False
        last = self._ids.pop()
        if pos < len(self._ids):
            self._ids[pos] = last
            self._positions[last] = pos
        return True

    def sample(
        self,
        count: int,
        rng: random.Random,
        exclude_id: int | None = None,
    ) -> list[int]:
        """Uniform distinct live ids; branch-for-branch replica of
        ``MembershipRegistry.sample_descriptors`` (including the
        no-randomness whole-pool path) so RNG consumption matches."""
        pool = self._ids
        n = len(pool)
        if count <= 0 or n == 0:
            return []
        exclude_present = (
            exclude_id is not None and exclude_id in self._positions
        )
        available = n - (1 if exclude_present else 0)
        if available <= 0:
            return []
        if count >= available:
            return [nid for nid in pool if nid != exclude_id]
        out: list[int] = []
        seen = set()
        # Inlined ``Random._randbelow_with_getrandbits`` (draw k bits,
        # reject >= n): the pool size is fixed across this call's
        # ``count`` draws, so the bit width is computed once and each
        # draw is a single C-level ``getrandbits`` in the common case.
        # Bit consumption is identical to ``rng.randrange(n)``.
        getrandbits = rng.getrandbits
        k = n.bit_length()
        while len(out) < count:
            idx = getrandbits(k)
            while idx >= n:
                idx = getrandbits(k)
            if idx in seen:
                continue
            nid = pool[idx]
            if nid == exclude_id:
                continue
            seen.add(idx)
            out.append(nid)
        return out


class FastOracleSampler:
    """Per-node endpoint over :class:`FastRegistry` (mirrors
    :class:`repro.sampling.oracle.OracleSampler`)."""

    __slots__ = ("_registry", "_own_id", "_rng")

    def __init__(
        self, registry: FastRegistry, own_id: int, rng: random.Random
    ) -> None:
        self._registry = registry
        self._own_id = own_id
        self._rng = rng

    def sample(self, count: int) -> list[int]:
        """Uniform random live peer ids, excluding the owner."""
        return self._registry.sample(count, self._rng, exclude_id=self._own_id)


class FastNewscastView:
    """Id/timestamp mirror of :class:`repro.sampling.newscast.NewscastNode`
    plus its :class:`~repro.sampling.view.PartialView`.

    The entry dict's *insertion order* is observable through
    ``random.choice``/``random.sample`` over the materialised pool, so
    the merge below reproduces the reference dict mechanics exactly:
    existing keys keep their position, new keys append in arrival
    order, and a capacity overflow rebuilds the dict freshest-first
    with id tiebreak.
    """

    __slots__ = ("own_id", "capacity", "entries", "rng", "now", "_randbelow")

    def __init__(self, own_id: int, capacity: int, rng: random.Random) -> None:
        self.own_id = own_id
        self.capacity = capacity
        self.entries: dict[int, float] = {}
        self.rng = rng
        self.now = 0.0
        self._randbelow = randbelow_of(rng)

    def __len__(self) -> int:
        return len(self.entries)

    def select_peer(self) -> int | None:
        """Mirror of ``NewscastNode.select_peer`` (one ``choice`` over
        the materialised view)."""
        if not self.entries:
            return None
        keys = list(self.entries)
        return keys[self._randbelow(len(keys))]

    def payload(self) -> list[tuple[int, float]]:
        """Mirror of ``NewscastNode.gossip_payload``: the whole view in
        insertion order plus the freshly-stamped own advertisement."""
        pairs = list(self.entries.items())
        pairs.append((self.own_id, self.now))
        return pairs

    def merge(self, pairs: list[tuple[int, float]]) -> None:
        """Mirror of ``PartialView.merge`` (freshest per id, truncate to
        the ``capacity`` freshest, ties broken by id)."""
        entries = self.entries
        own = self.own_id
        for nid, ts in pairs:
            if nid == own:
                continue
            current = entries.get(nid)
            if current is None or ts > current:
                entries[nid] = ts
        if len(entries) > self.capacity:
            survivors = sorted(
                entries.items(), key=lambda p: (-p[1], p[0])
            )[: self.capacity]
            self.entries = dict(survivors)

    def sample(self, count: int) -> list[int]:
        """Mirror of ``PartialView.random_sample`` (the bootstrap layer's
        ``cr`` source when ``sampler="newscast"``)."""
        if count <= 0 or not self.entries:
            return []
        pool = list(self.entries)
        if count >= len(pool):
            return pool
        return self.rng.sample(pool, count)


class FastNodeState:
    """One bootstrap node as flat data (mirrors
    :class:`repro.core.protocol.BootstrapNode` state).

    ``leaf_sorted`` caches the distance-ranked leaf ids between
    membership changes; the reference re-sorts on every ``SELECTPEER``,
    which is one of the fast engine's wins.  ``prefix_slots`` keys are
    packed ``(row << digit_bits) | column`` ints.
    """

    __slots__ = (
        "node_id",
        "rng",
        "randbelow",
        "sampler",
        "leaf_members",
        "leaf_sorted",
        "leaf_full",
        "succ_count",
        "succ_max",
        "pred_count",
        "pred_max",
        "prefix_slots",
        "prefix_ids",
        "started",
    )

    def __init__(self, node_id: int, rng: random.Random, sampler) -> None:
        self.node_id = node_id
        self.rng = rng
        self.randbelow = randbelow_of(rng)
        self.sampler = sampler
        self.leaf_members: set = set()
        self.leaf_sorted: list[int] | None = None
        # Per-side admission bounds (valid only when ``leaf_full``): a
        # non-member can change the balanced selection only if its side
        # is below half capacity or it is closer than that side's worst
        # kept distance -- UPDATELEAFSET only ever improves, so ids
        # failing the test are provably no-ops and the engine skips the
        # reselect kernel for them.
        self.leaf_full = False
        self.succ_count = 0
        self.succ_max = -1
        self.pred_count = 0
        self.pred_max = -1
        self.prefix_slots: dict[int, list[int]] = {}
        self.prefix_ids: set = set()
        self.started = False
