"""The array-backed cycle engine (drop-in twin of the reference one).

:class:`FastBootstrapSimulation` exposes the same constructor, the same
membership-mutation surface (``kill_node``/``spawn_node``/
``absorb_pool``), and the same ``run``/``measure`` API as
:class:`repro.simulator.bootstrap_sim.BootstrapSimulation`, and produces
**bit-identical** :class:`~repro.simulator.bootstrap_sim.SimulationResult`
trajectories for any ``(seed, size, network, sampler, schedules)``.
That identity is the engine's contract, pinned by the differential
suite (``tests/test_engine_fast.py``) and the golden fixtures
(``tests/golden/``).

How it can be both identical and faster
---------------------------------------
The reference engine's observable trajectory (convergence samples,
transport counters, converged-at cycle) is a function of *node ids
only*: descriptor addresses are opaque and merely echoed, and
timestamps influence nothing but NEWSCAST's freshest-wins merge.  So
this engine discards descriptor objects entirely -- leaf sets become id
sets, prefix tables become packed-slot id lists, messages become id
lists -- and re-derives the exact same decisions from the exact same
RNG streams (see :mod:`repro.engine_fast.state` for the per-stream
contracts).  The per-exchange geometry (ring ranking, balanced
selection) runs through the batch kernels in
:mod:`repro.engine_fast.kernels`, numpy-vectorised when available.

What stays shared with the reference implementation: the identifier
geometry (:class:`~repro.core.idspace.IDSpace`), the perfect-table
oracle (:class:`~repro.core.reference.ReferenceTables`), the network
model, the failure schedules, and the result/sample dataclasses --
the differential harness therefore compares genuinely independent
implementations of the *protocol kernel*, not two copies of one code
path.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.convergence import ConvergenceSample
from ..core.reference import ReferenceTables
from ..simulator.bootstrap_sim import SAMPLER_KINDS, SimulationResult
from ..simulator.network import NetworkModel, RELIABLE, TransportStats
from ..simulator.random_source import RandomSource
from . import kernels
from .state import (
    FastNewscastView,
    FastNodeState,
    FastOracleSampler,
    FastRegistry,
)

__all__ = ["FastBootstrapSimulation", "FastConvergenceTracker"]


class _Layer:
    """One gossip layer's engine bookkeeping (mirrors
    :class:`~repro.simulator.engine.CycleEngine`'s buffers)."""

    __slots__ = ("rng", "stats", "order", "scratch", "dirty", "cycle")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.stats = TransportStats()
        self.order: list[int] = []
        self.scratch: list[int] = []
        self.dirty = False
        self.cycle = 0


class FastConvergenceTracker:
    """Convergence measurement over :class:`FastNodeState` populations.

    Produces the same :class:`ConvergenceSample` values as
    :class:`repro.core.convergence.ConvergenceTracker` -- the deficits
    are sums over id sets, which is all the fast engine stores.
    """

    def __init__(
        self,
        reference: ReferenceTables,
        states: Iterable[FastNodeState],
        digit_bits: int,
    ) -> None:
        self._digit_bits = digit_bits
        self.samples: list[ConvergenceSample] = []
        self.rebind(reference, states)

    def rebind(
        self, reference: ReferenceTables, states: Iterable[FastNodeState]
    ) -> None:
        """Swap reference and population, keeping the sample history."""
        self._reference = reference
        self._states = [s for s in states if s.node_id in reference]
        self._live = set(reference.ids)
        # node_id -> [(packed slot, perfect count)]; membership is
        # static between rebinds, so the trie walk and the slot packing
        # are paid once per node instead of once per measurement.
        self._packed_perfect: dict[int, list] = {}

    def _perfect_slots(self, node_id: int) -> list:
        packed = self._packed_perfect.get(node_id)
        if packed is None:
            digit_bits = self._digit_bits
            packed = [
                ((row << digit_bits) | col, needed)
                for (row, col), needed in self._reference
                .perfect_prefix_counts(node_id)
                .items()
            ]
            self._packed_perfect[node_id] = packed
        return packed

    def measure(self, cycle: float) -> ConvergenceSample:
        """Take one network-wide measurement and append it to
        :attr:`samples` (same metric as the reference tracker)."""
        reference = self._reference
        live = self._live
        missing_leaf = 0
        missing_prefix = 0
        for state in self._states:
            members = state.leaf_members
            current = members if members <= live else members & live
            missing_leaf += len(
                reference.perfect_leaf_ids(state.node_id) - current
            )
            slots = state.prefix_slots
            if state.prefix_ids <= live:
                for slot, needed in self._perfect_slots(state.node_id):
                    held = slots.get(slot)
                    have = len(held) if held else 0
                    if have < needed:
                        missing_prefix += needed - have
            else:
                for slot, needed in self._perfect_slots(state.node_id):
                    held = slots.get(slot)
                    have = (
                        sum(1 for nid in held if nid in live) if held else 0
                    )
                    if have < needed:
                        missing_prefix += needed - have
        total_leaf, total_prefix = reference.totals()
        sample = ConvergenceSample(
            cycle=cycle,
            missing_leaf=missing_leaf,
            total_leaf=total_leaf,
            missing_prefix=missing_prefix,
            total_prefix=total_prefix,
        )
        self.samples.append(sample)
        return sample


class FastBootstrapSimulation:
    """Array-backed twin of :class:`BootstrapSimulation`.

    Accepts the same parameters (minus ``node_factory``, which is the
    reference engine's ablation hook) and honours the same failure
    schedules.  See the module docstring for the identity contract.
    """

    engine_name = "fast"

    def __init__(
        self,
        size: int | None = None,
        *,
        ids: Sequence[int] | None = None,
        config: BootstrapConfig = PAPER_CONFIG,
        seed: int = 1,
        network: NetworkModel = RELIABLE,
        sampler: str = "oracle",
        newscast_view_size: int = 30,
    ) -> None:
        if sampler not in SAMPLER_KINDS:
            raise ValueError(
                f"sampler must be one of {SAMPLER_KINDS}, got {sampler!r}"
            )
        if ids is None:
            if size is None or size < 2:
                raise ValueError("need size >= 2 or an explicit id list")
        self.config = config
        self.seed = seed
        self.network = network
        self.sampler_kind = sampler
        self._source = RandomSource(seed)
        space = config.space
        self._space = space
        # Cached geometry and parameters for the exchange hot path.
        self._mask = space.size - 1
        self._half_ring = space.half
        self._bits = space.bits
        self._digit_bits = space.digit_bits
        self._base_mask = space.digit_base - 1
        self._k = config.entries_per_slot
        self._cr = config.random_samples
        self._half_c = config.half_leaf_set
        self._c = config.leaf_set_size
        self._slot_tables = kernels.slot_tables(space.bits, space.digit_bits)
        self._row_of, self._shift_of = self._slot_tables

        if ids is None:
            id_list = space.random_unique_ids(size, self._source.derive("ids"))
        else:
            id_list = list(ids)
            if len(set(id_list)) != len(id_list):
                raise ValueError("identifier list contains duplicates")
            for node_id in id_list:
                space.validate(node_id)
            if len(id_list) < 2:
                raise ValueError("need at least 2 identifiers")

        self.registry = FastRegistry()
        self.nodes: dict[int, FastNodeState] = {}
        self.newscast: dict[int, FastNewscastView] = {}
        self._next_address = 0

        self._boot = _Layer(self._source.derive("bootstrap-engine"))
        self._news: _Layer | None = None
        if sampler == "newscast":
            self._news = _Layer(self._source.derive("newscast-engine"))
        self._newscast_view_size = newscast_view_size

        for node_id in id_list:
            self._admit(node_id)
        if sampler == "newscast":
            self._seed_newscast_views()

        self.reference = ReferenceTables(
            space, id_list, config.leaf_set_size, config.entries_per_slot
        )
        self.tracker = FastConvergenceTracker(
            self.reference, self.nodes.values(), self._digit_bits
        )
        self._membership_dirty = False

    # ------------------------------------------------------------------
    # Node admission / removal (same seed-tree names as the reference)
    # ------------------------------------------------------------------

    def _admit(self, node_id: int) -> FastNodeState:
        # Same validation point as the reference (BootstrapNode's
        # constructor): a bad id raises cleanly instead of corrupting
        # the geometry tables mid-cycle.
        self._space.validate(node_id)
        self._next_address += 1
        self.registry.add(node_id)
        if self.sampler_kind == "newscast":
            view = FastNewscastView(
                node_id,
                self._newscast_view_size,
                self._source.derive(("newscast", node_id)),
            )
            self.newscast[node_id] = view
            assert self._news is not None
            self._news.dirty = True
            node_sampler = view
        else:
            node_sampler = FastOracleSampler(
                self.registry,
                node_id,
                self._source.derive(("sampler", node_id)),
            )
        state = FastNodeState(
            node_id, self._source.derive(("node", node_id)), node_sampler
        )
        self.nodes[node_id] = state
        self._boot.dirty = True
        return state

    def _seed_newscast_views(self) -> None:
        rng = self._source.derive("newscast-seed")
        for view in self.newscast.values():
            ids = self.registry.sample(
                self._newscast_view_size, rng, exclude_id=view.own_id
            )
            view.merge([(nid, 0.0) for nid in ids])

    # ------------------------------------------------------------------
    # Membership mutation (the schedule-facing surface)
    # ------------------------------------------------------------------

    @property
    def population(self) -> int:
        """Current number of live nodes."""
        return len(self.nodes)

    @property
    def live_ids(self) -> list[int]:
        """Identifiers of live nodes (admission order, like the
        reference's node dict)."""
        return list(self.nodes)

    def kill_node(self, node_id: int) -> bool:
        """Crash *node_id* (mirrors ``BootstrapSimulation.kill_node``)."""
        state = self.nodes.pop(node_id, None)
        if state is None:
            return False
        self.registry.remove(node_id)
        self._boot.dirty = True
        if self._news is not None:
            self.newscast.pop(node_id, None)
            self._news.dirty = True
        self._membership_dirty = True
        return True

    def spawn_node(self, node_id: int | None = None) -> FastNodeState:
        """Join a brand-new node (mirrors the reference's seed-stream
        derivation: ``("spawn", next_address)`` before admission)."""
        if node_id is None:
            rng = self._source.derive(("spawn", self._next_address))
            node_id = self._space.random_id(rng)
            while node_id in self.nodes:
                node_id = self._space.random_id(rng)
        elif node_id in self.nodes:
            raise ValueError(f"identifier {node_id:#x} already live")
        state = self._admit(node_id)
        if self.sampler_kind == "newscast":
            rng = self._source.derive(("newscast-join", node_id))
            ids = self.registry.sample(
                self._newscast_view_size, rng, exclude_id=node_id
            )
            self.newscast[node_id].merge([(nid, 0.0) for nid in ids])
        self._membership_dirty = True
        return state

    def absorb_pool(self, ids: Iterable[int]) -> list[FastNodeState]:
        """Merge a pool of identifiers into this network."""
        return [self.spawn_node(node_id) for node_id in ids]

    def _refresh_reference(self) -> None:
        self.reference = ReferenceTables(
            self._space,
            self.nodes.keys(),
            self.config.leaf_set_size,
            self.config.entries_per_slot,
        )
        self.tracker.rebind(self.reference, self.nodes.values())
        self._membership_dirty = False

    # ------------------------------------------------------------------
    # Protocol transitions over flat state
    # ------------------------------------------------------------------

    def _start_node(self, state: FastNodeState) -> None:
        """Protocol start (mirrors ``BootstrapNode.start``): *clear the
        prefix table*, then seed the leaf set with one leaf set's worth
        of samples.  The clear matters: a node can absorb requests as a
        passive target before its own first activation, and the paper's
        start step wipes that prefix state (but keeps the leaf set)."""
        state.prefix_slots.clear()
        state.prefix_ids.clear()
        self._leaf_update(state, state.sampler.sample(self._c), None)
        state.started = True

    def _select_peer(self, state: FastNodeState) -> int | None:
        """SELECTPEER: uniform pick from the closest half of the
        distance-ranked leaf set (ranking cached between updates; the
        pick consumes the same bits as the reference's ``choice``)."""
        ranked = state.leaf_sorted
        if ranked is None:
            ranked = state.leaf_sorted = kernels.rank_ids(
                list(state.leaf_members), state.node_id, self._mask
            )
        if ranked:
            half = (len(ranked) + 1) // 2
            return ranked[state.randbelow(half)]
        fallback = state.sampler.sample(1)
        return fallback[0] if fallback else None

    def _create_message(
        self, state: FastNodeState, peer_id: int
    ) -> tuple[list[int], list[int], list[int]]:
        """CREATEMESSAGE as a batch kernel: union of leaf ids, prefix
        ids, ``cr`` fresh samples and the own id; balanced-closest part
        first, then the prefix-useful part (first ``k`` per peer slot in
        ranked order) -- the reference message layout exactly.

        Returns ``(close_ids, prefix_ids, prefix_slots)``.  The slots
        of the prefix part fall out of the capping kernel for free, and
        a message is only ever absorbed by the peer it was created for,
        so they are directly the receiver's UPDATEPREFIXTABLE keys; the
        close part ships without slots (the receiver computes them only
        for ids it does not already hold, a set that empties as the run
        converges)."""
        union = set(state.prefix_ids)
        union |= state.leaf_members
        union.update(state.sampler.sample(self._cr))
        union.add(state.node_id)
        union.discard(peer_id)

        close, rest = kernels.close_and_rest(
            union, peer_id, self._mask, self._half_ring, self._half_c
        )
        tail, tail_slots = kernels.prefix_part(
            rest,
            peer_id,
            self._bits,
            self._digit_bits,
            self._base_mask,
            self._k,
            self._slot_tables,
        )
        return close, tail, tail_slots

    def _leaf_update(
        self,
        state: FastNodeState,
        incoming: list[int],
        sender_id: int | None,
    ) -> None:
        """UPDATELEAFSET membership semantics: reselect only when the
        merge introduces at least one new identifier."""
        own = state.node_id
        members = state.leaf_members
        fresh = [
            nid
            for nid in incoming
            if nid != own and nid not in members
        ]
        if sender_id is not None and sender_id != own and sender_id not in members:
            fresh.append(sender_id)
        if not fresh:
            return
        self._merge_fresh(state, members, fresh)

    def _merge_fresh(
        self, state: FastNodeState, members: set, fresh: list[int]
    ) -> None:
        """Reselect the leaf membership after *fresh* novel ids joined
        the candidate pool (shared tail of UPDATELEAFSET)."""
        candidates = members | set(fresh)
        if len(candidates) <= self._c:
            # Balanced selection keeps everything while the merged set
            # fits the capacity (backfill fills whichever side is
            # short), so the kernel call can be skipped outright.
            self._set_leaf(state, candidates)
        else:
            self._set_leaf(
                state,
                kernels.select_balanced(
                    candidates,
                    state.node_id,
                    self._mask,
                    self._half_ring,
                    self._half_c,
                ),
            )

    def _set_leaf(self, state: FastNodeState, members: set) -> None:
        """Install a new leaf membership and refresh the cached
        ranking and per-side admission bounds."""
        state.leaf_members = members
        state.leaf_sorted = None
        own = state.node_id
        mask = self._mask
        half_ring = self._half_ring
        succ_count = pred_count = 0
        succ_max = pred_max = -1
        for nid in members:
            fw = (nid - own) & mask
            if fw <= half_ring:
                succ_count += 1
                if fw > succ_max:
                    succ_max = fw
            else:
                bw = mask + 1 - fw
                pred_count += 1
                if bw > pred_max:
                    pred_max = bw
        state.succ_count = succ_count
        state.succ_max = succ_max
        state.pred_count = pred_count
        state.pred_max = pred_max
        state.leaf_full = len(members) >= self._c

    def _absorb(
        self,
        state: FastNodeState,
        message: tuple[list[int], list[int], list[int]],
        sender_id: int,
    ) -> None:
        """UPDATELEAFSET then UPDATEPREFIXTABLE over payload + envelope
        sender (mirrors ``BootstrapNode.absorb``).  *state* must be the
        destination the message was created for: the prefix part's slot
        keys were computed against its identifier.

        One pass does both updates: the leaf novelty scan and the
        prefix fill visit the same ids (never the destination's own id,
        so no own-id guard is needed).  Slots are computed locally only
        for *novel* close-part ids and the envelope sender."""
        close, tail, tail_slots = message
        own = state.node_id
        members = state.leaf_members
        prefix_ids = state.prefix_ids
        table = state.prefix_slots
        digit_bits = self._digit_bits
        base_mask = self._base_mask
        row_of = self._row_of
        shift_of = self._shift_of
        k = self._k
        mask = self._mask
        half_ring = self._half_ring
        half_c = self._half_c
        full = state.leaf_full
        succ_short = state.succ_count < half_c
        succ_max = state.succ_max
        pred_short = state.pred_count < half_c
        pred_max = state.pred_max
        fresh: list[int] = []
        # `effective` tracks whether any novel id can actually change
        # the balanced selection (see FastNodeState's bound fields);
        # when none can, the reselect below is provably a no-op and is
        # skipped -- the common case once leaf sets converge.
        effective = not full

        def can_affect_leaf(nid: int) -> bool:
            # The admission test in one place: a non-member can change
            # the balanced selection only if its side is short or it
            # beats that side's worst kept distance.  (`full` is
            # handled by the `effective` initialisation above.)
            fw = (nid - own) & mask
            if fw <= half_ring:
                return succ_short or fw < succ_max
            return pred_short or mask + 1 - fw < pred_max

        def scan_unslotted(ids) -> None:
            # Shared UPDATEPREFIXTABLE + UPDATELEAFSET scan for ids
            # whose slot was not shipped with the message (the close
            # part and the envelope sender).
            nonlocal effective
            for nid in ids:
                if nid not in prefix_ids:
                    row = row_of[(own ^ nid).bit_length()]
                    slot = (row << digit_bits) | (
                        (nid >> shift_of[row]) & base_mask
                    )
                    held = table.get(slot)
                    if held is None:
                        table[slot] = [nid]
                        prefix_ids.add(nid)
                    elif len(held) < k:
                        held.append(nid)
                        prefix_ids.add(nid)
                if nid not in members:
                    fresh.append(nid)
                    if not effective:
                        effective = can_affect_leaf(nid)

        scan_unslotted(close)
        for nid, slot in zip(tail, tail_slots, strict=True):
            if nid not in prefix_ids:
                held = table.get(slot)
                if held is None:
                    table[slot] = [nid]
                    prefix_ids.add(nid)
                elif len(held) < k:
                    held.append(nid)
                    prefix_ids.add(nid)
            if nid not in members:
                fresh.append(nid)
                if not effective:
                    effective = can_affect_leaf(nid)
        # Envelope sender: never the destination itself, may duplicate
        # a payload id (its own advertisement inside the payload);
        # processed last, matching the reference's payload-then-sender
        # order (it competes for prefix slots after the tail ids).
        scan_unslotted((sender_id,))
        if fresh and effective:
            self._merge_fresh(state, members, fresh)

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._boot.cycle

    def run_cycle(self) -> None:
        """One Δ interval: NEWSCAST gossips first (when live), then
        every bootstrap node performs one exchange -- the reference
        engine order."""
        if self._news is not None:
            self._newscast_cycle()
        self._bootstrap_cycle()

    def _bootstrap_cycle(self) -> None:
        layer = self._boot
        nodes = self.nodes
        if layer.dirty:
            layer.order = list(nodes)
            layer.dirty = False
        scratch = layer.scratch
        scratch[:] = layer.order
        rng = layer.rng
        rng.shuffle(scratch)
        stats = layer.stats
        drop_p = self.network.drop_probability
        get = nodes.get
        rand = rng.random
        select_peer = self._select_peer
        create_message = self._create_message
        absorb = self._absorb
        for nid in scratch:
            state = get(nid)
            if state is None:
                continue
            if not state.started:
                self._start_node(state)
            peer_id = select_peer(state)
            if peer_id is None:
                continue
            request = create_message(state, peer_id)
            stats.exchanges += 1
            stats.requests_sent += 1
            if drop_p and rand() < drop_p:
                stats.requests_dropped += 1
                stats.suppressed_replies += 1
                continue
            target = get(peer_id)
            if target is None:
                stats.void_requests += 1
                stats.suppressed_replies += 1
                continue
            reply = create_message(target, nid)
            absorb(target, request, nid)
            stats.replies_sent += 1
            if drop_p and rand() < drop_p:
                stats.replies_dropped += 1
                continue
            absorb(state, reply, peer_id)
        layer.cycle += 1

    def _newscast_cycle(self) -> None:
        layer = self._news
        views = self.newscast
        now = float(layer.cycle)
        if layer.dirty:
            layer.order = list(views)
            layer.dirty = False
        scratch = layer.scratch
        scratch[:] = layer.order
        for view in views.values():
            view.now = now
        rng = layer.rng
        rng.shuffle(scratch)
        stats = layer.stats
        drop_p = self.network.drop_probability
        get = views.get
        rand = rng.random
        for nid in scratch:
            view = get(nid)
            if view is None:
                continue
            peer_id = view.select_peer()
            if peer_id is None:
                continue
            request = view.payload()
            stats.exchanges += 1
            stats.requests_sent += 1
            if drop_p and rand() < drop_p:
                stats.requests_dropped += 1
                stats.suppressed_replies += 1
                continue
            target = get(peer_id)
            if target is None:
                stats.void_requests += 1
                stats.suppressed_replies += 1
                continue
            reply = target.payload()
            target.merge(request)
            stats.replies_sent += 1
            if drop_p and rand() < drop_p:
                stats.replies_dropped += 1
                continue
            view.merge(reply)
        layer.cycle += 1

    # ------------------------------------------------------------------
    # Measurement and experiment running (reference API)
    # ------------------------------------------------------------------

    def measure(self) -> ConvergenceSample:
        """Measure convergence now (rebuilding the reference first if
        membership changed)."""
        if self._membership_dirty:
            self._refresh_reference()
        return self.tracker.measure(float(self._boot.cycle))

    def run(
        self,
        max_cycles: int = 60,
        *,
        stop_when_perfect: bool = True,
        schedules: Sequence[object] = (),
        measure_every: int = 1,
    ) -> SimulationResult:
        """Run the experiment (same semantics and parameters as
        ``BootstrapSimulation.run``)."""
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        if measure_every < 1:
            raise ValueError(
                f"measure_every must be >= 1, got {measure_every}"
            )
        started_at = self._boot.cycle
        for cycle_index in range(max_cycles):
            for schedule in schedules:
                schedule.apply(self, cycle_index)
            self.run_cycle()
            if (cycle_index + 1) % measure_every == 0:
                sample = self.measure()
                if stop_when_perfect and sample.is_perfect:
                    break
        if not self.tracker.samples:
            self.measure()
        return self._result(started_at)

    def _result(self, started_at: int = 0) -> SimulationResult:
        converged_at = next(
            (
                s.cycle
                for s in self.tracker.samples
                if s.cycle > started_at and s.is_perfect
            ),
            None,
        )
        return SimulationResult(
            samples=tuple(self.tracker.samples),
            converged_at=converged_at,
            population=self.population,
            transport=self._boot.stats.snapshot(),
            config=self.config,
            seed=self.seed,
            cycles_run=self._boot.cycle - started_at,
            started_at_cycle=started_at,
            engine="fast",
        )
