"""Analyzer orchestration: scopes, waivers, report, CLI entry point.

Pass scopes (relative to the repo root):

=================  ====================================================
rule               scanned files
=================  ====================================================
module-random      ``src/repro/{core,simulator,sampling,engine_fast,
set-order          engine_vector}/**`` (the bit-identity surface)
wall-clock         all of ``src/repro/**`` (benchmarks are timing code
                   by definition and are exempt)
urandom            ``src/repro/**`` and ``benchmarks/*.py``
env-read           ``src/repro/**`` and ``benchmarks/*.py``
seam-literal       ``src/repro/**`` and ``benchmarks/*.py``
seam-doc           ``README.md`` against :func:`repro.seams.catalog`
layering           module-level imports across ``src/repro``
lifecycle          ``src/repro/**`` and ``benchmarks/*.py``
=================  ====================================================

Waivers are applied last, and waiver hygiene problems (missing
reasons, unknown rules) are themselves findings, so ``repro check``
exits non-zero until every suppression is complete and explained.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Iterable, Sequence

from .. import seams
from . import determinism, layering, lifecycle, seam_check
from .findings import RULES, Finding, SourceFile

#: Units whose randomness and iteration order feed bit-identical
#: trajectories: the determinism lint's scope.
ENGINE_UNITS = (
    "core",
    "simulator",
    "sampling",
    "engine_fast",
    "engine_vector",
)


def find_repo_root(start: Path | None = None) -> Path:
    """Walk up from *start* (default: cwd) to the checkout root.

    The root is recognised by its ``src/repro`` package directory.
    """
    probe = (start or Path.cwd()).resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise FileNotFoundError(
        f"no src/repro package found above {probe}; run from the "
        "checkout or pass --root"
    )


def _load_sources(root: Path) -> list[SourceFile]:
    sources = []
    package = root / "src" / "repro"
    for path in sorted(package.rglob("*.py")):
        rel = str(path.relative_to(root))
        sources.append(SourceFile.load(path, rel))
    benchmarks = root / "benchmarks"
    if benchmarks.is_dir():
        for path in sorted(benchmarks.glob("*.py")):
            rel = str(path.relative_to(root))
            sources.append(SourceFile.load(path, rel))
    return sources


def _unit_of(src: SourceFile) -> str | None:
    parts = Path(src.rel).parts
    if len(parts) >= 3 and parts[0] == "src" and parts[1] == "repro":
        return Path(parts[2]).stem
    return None


def check_source(
    src: SourceFile, rules: Iterable[str] | None = None
) -> list[Finding]:
    """Run every per-file pass that is in scope for *src*.

    Waivers are *not* applied here -- callers (tests, the runner)
    decide; :func:`run_checks` applies them.
    """
    active = set(RULES) if rules is None else set(rules)
    unit = _unit_of(src)
    in_benchmarks = src.rel.startswith("benchmarks")
    findings: list[Finding] = []
    if unit in ENGINE_UNITS:
        if "module-random" in active:
            findings.extend(determinism.check_module_random(src))
        if "set-order" in active:
            findings.extend(determinism.check_set_order(src))
    if not in_benchmarks and "wall-clock" in active:
        findings.extend(determinism.check_wall_clock(src))
    if "urandom" in active:
        findings.extend(determinism.check_urandom(src))
    if "env-read" in active:
        findings.extend(seam_check.check_env_read(src))
    if "seam-literal" in active:
        findings.extend(
            seam_check.check_seam_literals(src, seams.SEAMS)
        )
    if "lifecycle" in active:
        findings.extend(lifecycle.check_lifecycle(src))
    return findings


def run_checks(
    root: Path | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the full analyzer over the checkout at *root*.

    Returns the surviving findings (waivers applied, hygiene problems
    included), sorted by path and line.  An empty list is a clean
    repo.
    """
    root = find_repo_root() if root is None else root
    active = set(RULES) if rules is None else set(rules)
    unknown = active - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule(s) {sorted(unknown)}; known: {sorted(RULES)}"
        )
    findings: list[Finding] = []
    for src in _load_sources(root):
        per_file = check_source(src, active)
        per_file = [
            finding
            for finding in per_file
            if not src.is_waived(finding.rule, finding.line)
        ]
        findings.extend(per_file)
        if "waiver" in active:
            findings.extend(src.waiver_findings())
    if "layering" in active:
        findings.extend(layering.check_layering(root / "src" / "repro"))
    if "seam-doc" in active:
        readme = root / "README.md"
        text = readme.read_text(encoding="utf-8") if readme.exists() else ""
        findings.extend(
            seam_check.check_readme(seams.SEAMS, text, "README.md")
        )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def render_report(findings: Sequence[Finding]) -> str:
    """The human-readable report ``repro check`` prints."""
    if not findings:
        return "repro check: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    summary = ", ".join(
        f"{count} {rule}" for rule, count in sorted(by_rule.items())
    )
    lines.append(
        f"repro check: {len(findings)} finding"
        f"{'s' if len(findings) != 1 else ''} ({summary})"
    )
    return "\n".join(lines)


def list_rules() -> str:
    """The aligned rule catalogue ``--list-rules`` prints."""
    width = max(len(rule) for rule in RULES)
    return "\n".join(
        f"{rule:<{width}}  {contract}" for rule, contract in RULES.items()
    )


def main(argv: Sequence[str] | None = None) -> int:
    """``repro check`` entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "statically check the repo's determinism, seam, layering, "
            "and resource-lifecycle invariants"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="checkout root (default: discovered from the cwd)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="RULE",
        help="run only this rule (repeatable; default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json emits one object per finding)",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        findings = run_checks(root=args.root, rules=args.rule)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                [finding.to_dict() for finding in findings], indent=1
            )
        )
    else:
        print(render_report(findings))
    return 1 if findings else 0
