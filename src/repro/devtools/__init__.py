"""Static invariant analysis (``repro check``).

The repo's core claims -- fast engine bit-identical to the reference,
``workers=N`` byte-identical to ``workers=1``, batch absorb equal to
single absorb -- rest on determinism invariants that differential
tests can only pin *dynamically*: a wall-clock read or an unseeded
RNG call lands silently and surfaces later as a flaky golden
mismatch.  This package makes the invariants *statically* checkable
with four AST passes over ``src/`` and ``benchmarks/``:

``determinism``
    No module-level ``random.*`` draws, wall-clock reads, or
    ``os.urandom`` inside engine code; no iteration over set
    expressions (ordering hazard for bit-identity).
``seams``
    Every environment read flows through :mod:`repro.seams`; every
    ``REPRO_*`` literal is a declared seam; every declared seam is
    documented in the README catalog.
``layering``
    Module-level imports respect the declared layer DAG
    (core/simulator/sampling -> engine_* -> runtime -> scenarios ->
    cli; net/overlays independent of the engines).  Function-local
    imports are exempt -- they are the deliberate dispatch seams.
``lifecycle``
    ``SharedMemory(create=True)`` and ``ProcessPoolExecutor``
    construction is enclosed by a context manager or ``try/finally``
    cleanup in the same function (the shm ring's unlink-on-all-exits
    guarantee, checked at the AST level).

Every rule honours inline waivers with a mandatory reason::

    os.environ.get("X")  # repro-check: ignore[env-read] -- why this is safe

and wall-clock reads can be allowed for a whole function by marking
its ``def`` line ``# repro-check: timing -- reason``.  The analyzer
runs as the ``repro check`` CLI subcommand and as pytest-collectible
tests (``tests/test_devtools_checks.py``), and is gated in CI.
"""

from __future__ import annotations

from .findings import RULES, Finding, SourceFile
from .runner import main, render_report, run_checks

__all__ = [
    "RULES",
    "Finding",
    "SourceFile",
    "main",
    "render_report",
    "run_checks",
]
