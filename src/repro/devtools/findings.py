"""Shared analyzer infrastructure: findings, loaded sources, waivers.

A :class:`Finding` is one rule violation at one source line.  A
:class:`SourceFile` is a parsed module plus its comment table -- every
pass consumes these, so each file is read and parsed exactly once per
analyzer run.

Waiver grammar (one comment, on the offending line or the line
directly above it)::

    # repro-check: ignore[rule] -- reason
    # repro-check: ignore[rule-a,rule-b] -- reason
    # repro-check: timing -- reason            (def lines only)

The reason is **mandatory**: a waiver without one -- or naming an
unknown rule -- is itself reported under the ``waiver`` rule, so
unexplained suppressions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: Every rule the analyzer knows, with its one-line contract.
RULES: dict[str, str] = {
    "module-random": (
        "engine code must not draw from module-level random.* / "
        "numpy.random.* (RNG flows through injected Random/Generator "
        "instances)"
    ),
    "wall-clock": (
        "library code must not read wall clocks (time.time, "
        "datetime.now, perf_counter, ...) outside functions marked "
        "'# repro-check: timing -- reason'"
    ),
    "urandom": "os.urandom is never an acceptable randomness source here",
    "set-order": (
        "engine code must not iterate over set expressions (set "
        "iteration order is hash-seed dependent; sort first)"
    ),
    "env-read": (
        "os.environ/os.getenv reads belong in repro.seams; everything "
        "else uses the typed accessors"
    ),
    "seam-literal": (
        "every REPRO_* string literal must name a seam declared in "
        "repro.seams.SEAMS"
    ),
    "seam-doc": (
        "every declared seam must appear in the README seam catalog"
    ),
    "layering": (
        "module-level imports must follow the declared layer DAG "
        "(function-local imports are the sanctioned escape hatch)"
    ),
    "lifecycle": (
        "SharedMemory(create=True)/ProcessPoolExecutor construction "
        "must be guarded by a context manager or try/finally in the "
        "same function (or ownership returned to the caller)"
    ),
    "waiver": "waivers need a known rule name and a reason string",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source position."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """One report line: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready form (``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


_WAIVER = re.compile(
    r"repro-check:\s*(?P<kind>ignore|timing)"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed ``repro-check:`` comment."""

    kind: str
    rules: tuple[str, ...]
    reason: str | None
    line: int


@dataclass
class SourceFile:
    """One parsed module: AST, comments, waivers, timing spans."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)
    waivers: list[Waiver] = field(default_factory=list)
    #: Inclusive (first, last) line spans of functions whose ``def``
    #: line carries a ``timing`` marker.
    timing_spans: list[tuple[int, int]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, rel: str) -> SourceFile:
        """Read and parse *path*, collecting comments and waivers."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=rel)
        src = cls(path=path, rel=rel, text=text, tree=tree)
        src._collect_comments()
        src._collect_waivers()
        src._collect_timing_spans()
        return src

    def _collect_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:  # pragma: no cover - parse succeeded above
            pass

    def _collect_waivers(self) -> None:
        for line, comment in sorted(self.comments.items()):
            match = _WAIVER.search(comment)
            if match is None:
                continue
            rules = tuple(
                name.strip()
                for name in (match.group("rules") or "").split(",")
                if name.strip()
            )
            self.waivers.append(
                Waiver(
                    kind=match.group("kind"),
                    rules=rules,
                    reason=match.group("reason"),
                    line=line,
                )
            )

    def _collect_timing_spans(self) -> None:
        markers = {
            w.line for w in self.waivers if w.kind == "timing" and w.reason
        }
        if not markers:
            return
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # The marker sits on the def line or directly above it
                # (above the decorators, when there are any).
                first = min(
                    [node.lineno]
                    + [d.lineno for d in node.decorator_list]
                )
                if {node.lineno, first - 1} & markers:
                    self.timing_spans.append((node.lineno, node.end_lineno))

    # -- queries -------------------------------------------------------

    def is_waived(self, rule: str, line: int) -> bool:
        """A complete ``ignore`` waiver for *rule* on *line* or the
        line above it."""
        for waiver in self.waivers:
            if (
                waiver.kind == "ignore"
                and waiver.reason
                and rule in waiver.rules
                and waiver.line in (line, line - 1)
            ):
                return True
        return False

    def in_timing_code(self, line: int) -> bool:
        """Whether *line* sits inside a timing-marked function."""
        return any(first <= line <= last for first, last in self.timing_spans)

    def waiver_findings(self) -> list[Finding]:
        """Hygiene findings: malformed or reason-less waivers."""
        findings = []
        for waiver in self.waivers:
            if not waiver.reason:
                findings.append(
                    Finding(
                        "waiver",
                        self.rel,
                        waiver.line,
                        f"repro-check {waiver.kind} waiver needs a "
                        "'-- reason' clause",
                    )
                )
            if waiver.kind == "ignore" and not waiver.rules:
                findings.append(
                    Finding(
                        "waiver",
                        self.rel,
                        waiver.line,
                        "ignore waiver names no rule: use "
                        "ignore[rule] -- reason",
                    )
                )
            for rule in waiver.rules:
                if rule not in RULES:
                    findings.append(
                        Finding(
                            "waiver",
                            self.rel,
                            waiver.line,
                            f"unknown rule {rule!r} (see repro check "
                            "--list-rules)",
                        )
                    )
        return findings

    def docstring_positions(self) -> set[tuple[int, int]]:
        """``(lineno, col_offset)`` of every docstring constant."""
        positions: set[tuple[int, int]] = set()
        for node in ast.walk(self.tree):
            if isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                body = node.body
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    doc = body[0].value
                    positions.add((doc.lineno, doc.col_offset))
        return positions


def apply_waivers(src: SourceFile, findings: list[Finding]) -> list[Finding]:
    """Drop findings covered by a complete inline waiver."""
    return [
        finding
        for finding in findings
        if not src.is_waived(finding.rule, finding.line)
    ]
