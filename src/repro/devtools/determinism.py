"""Determinism lint: the AST patterns that break bit-identity.

The engines' reproducibility contract is that every byte of a
trajectory is a function of ``(seed, spec)``.  Four patterns break it
without failing a single unit test:

* **module-level RNG draws** (``random.random()``,
  ``numpy.random.rand()``): global-stream state shared across
  simulations, order-dependent across refactors.  Randomness must
  flow through injected ``random.Random`` / ``numpy.random.Generator``
  instances (constructing those *is* allowed).
* **wall-clock reads**: any value derived from the host clock differs
  between runs by construction.  Timing *measurement* is legitimate --
  mark the measuring function ``# repro-check: timing -- reason``.
* **``os.urandom``**: entropy that cannot be replayed.
* **iteration over set expressions**: CPython string/object hashing is
  seed-randomised, so ``for x in {a, b}`` (or ``set(...)``) visits
  elements in a process-dependent order.  Sort before iterating.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .findings import Finding, SourceFile

#: random-module functions that *construct* generators instead of
#: drawing from the global stream: always allowed.
_RNG_CONSTRUCTORS = frozenset(
    {"Random", "default_rng", "Generator", "SeedSequence", "PCG64"}
)

#: Wall-clock attribute reads, by module alias.
_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "now",
        "utcnow",
        "today",
    }
)
_CLOCK_MODULES = frozenset({"time", "datetime", "date"})


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a pure chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def check_module_random(src: SourceFile) -> Iterator[Finding]:
    """Flag draws from module-level RNG streams."""
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if len(chain) < 2:
            continue
        dotted = ".".join(chain)
        # random.<draw>(...) on the stdlib module.  SystemRandom is a
        # constructor but an OS-entropy one, so it stays flagged.
        if chain[0] == "random" and len(chain) == 2:
            if chain[1] not in _RNG_CONSTRUCTORS:
                yield Finding(
                    "module-random",
                    src.rel,
                    node.lineno,
                    f"{dotted}() draws from the global random stream; "
                    "inject a random.Random instead",
                )
        # <numpy alias>.random.<draw>(...): everything except
        # generator construction taps numpy's legacy global state.
        elif "random" in chain[:-1] and chain[0] in ("np", "numpy", "_np"):
            if chain[-1] not in _RNG_CONSTRUCTORS:
                yield Finding(
                    "module-random",
                    src.rel,
                    node.lineno,
                    f"{dotted}() uses numpy's global random state; "
                    "use a numpy.random.Generator instance",
                )


def check_wall_clock(src: SourceFile) -> Iterator[Finding]:
    """Flag host-clock reads outside timing-marked functions."""
    # Names bound by `from time import perf_counter`-style imports.
    from_imports: dict[str, str] = {}
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ImportFrom) and node.module in _CLOCK_MODULES:
            for alias in node.names:
                if alias.name in _CLOCK_ATTRS:
                    from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        if src.in_timing_code(node.lineno):
            continue
        chain = _attr_chain(node.func)
        dotted = None
        if (
            len(chain) >= 2
            and chain[0] in _CLOCK_MODULES
            and chain[-1] in _CLOCK_ATTRS
        ):
            dotted = ".".join(chain)
        elif (
            isinstance(node.func, ast.Name) and node.func.id in from_imports
        ):
            dotted = from_imports[node.func.id]
        if dotted is not None:
            yield Finding(
                "wall-clock",
                src.rel,
                node.lineno,
                f"{dotted}() reads the host clock; results must be a "
                "function of (seed, spec) -- mark the function "
                "'# repro-check: timing -- reason' if this measures "
                "elapsed time",
            )


def check_urandom(src: SourceFile) -> Iterator[Finding]:
    """Flag ``os.urandom`` anywhere."""
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call) and _attr_chain(node.func) == [
            "os",
            "urandom",
        ]:
            yield Finding(
                "urandom",
                src.rel,
                node.lineno,
                "os.urandom() is unreplayable entropy; derive "
                "randomness from the run's seed",
            )


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def check_set_order(src: SourceFile) -> Iterator[Finding]:
    """Flag loops and comprehensions that iterate a set expression."""
    def flag(iter_node: ast.AST) -> Iterator[Finding]:
        if _is_set_expression(iter_node):
            yield Finding(
                "set-order",
                src.rel,
                iter_node.lineno,
                "iterating a set expression: element order depends on "
                "the process hash seed; iterate sorted(...) instead",
            )

    for node in ast.walk(src.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                yield from flag(generator.iter)
