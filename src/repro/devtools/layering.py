"""Import-layering contract: the declared layer DAG, enforced.

The architecture is a DAG of top-level units inside ``repro``::

    core / sampling / simulator          (domain: protocol + reference)
        -> engine_fast -> engine_vector  (accelerated engines)
        -> runtime                       (pooled sweeps, transports)
        -> scenarios                     (declarative experiment layer)
        -> cli                           (composition root)

with ``analysis`` and ``seams`` as leaf utilities, and the overlay /
networking stack (``net``, ``overlays``, ``components``,
``baselines``, ``service``) deliberately **independent of the
engines** -- an overlay must bootstrap from any engine's output, so it
may depend on the domain layers only.

:data:`LAYER_CONTRACT` below is the machine-checked form: for each
unit, the complete set of sibling units it may import **at module
level**.  Function-local imports are exempt by design -- they are the
sanctioned dispatch seams (``build_simulation`` choosing an engine,
``run_repeats`` reaching the runner) and keeping them lazy is exactly
what prevents the layering from collapsing into one import cycle.

Violations render the offending edge (file, line, allowed set); any
cycle in the module-level graph renders its full path.
"""

from __future__ import annotations

import ast
from pathlib import Path
from collections.abc import Iterator

from .findings import Finding

#: unit -> sibling top-level units it may import at module scope.
LAYER_CONTRACT: dict[str, frozenset[str]] = {
    # Leaf utilities: importable by anyone, import nobody.
    "seams": frozenset(),
    "analysis": frozenset(),
    # Domain: the paper's protocol, reference engine, samplers.
    "core": frozenset(),
    "sampling": frozenset({"core"}),
    "simulator": frozenset({"core", "sampling"}),
    # Accelerated engines build on the domain (and each other, in
    # order); they never see the runtime above them.
    "engine_fast": frozenset({"core", "sampling", "simulator", "seams"}),
    "engine_vector": frozenset(
        {"core", "sampling", "simulator", "engine_fast", "seams"}
    ),
    # Runtime orchestrates engines through the simulator's seam.
    "runtime": frozenset(
        {
            "analysis",
            "core",
            "sampling",
            "simulator",
            "engine_fast",
            "engine_vector",
            "seams",
        }
    ),
    # Scenarios orchestrate both the simulated sweeps (runtime) and
    # the live chaos soaks (net) behind one declarative surface.
    "scenarios": frozenset(
        {
            "analysis",
            "core",
            "sampling",
            "simulator",
            "runtime",
            "seams",
            "net",
        }
    ),
    # Overlay / networking stack: engine-independent by contract.
    "components": frozenset({"core", "sampling", "simulator"}),
    "baselines": frozenset({"core", "sampling", "simulator"}),
    "overlays": frozenset({"core", "sampling", "simulator"}),
    "net": frozenset({"core", "sampling", "simulator"}),
    "service": frozenset(
        {"core", "sampling", "simulator", "overlays", "net"}
    ),
    # Tooling and composition roots.
    "devtools": frozenset({"seams"}),
    "cli": frozenset(
        {
            "analysis",
            "components",
            "core",
            "devtools",
            "runtime",
            "sampling",
            "scenarios",
            "seams",
            "simulator",
        }
    ),
    "__main__": frozenset({"cli"}),
    # The package root re-exports the public API; it sits above
    # everything by definition.
    "__init__": frozenset(
        {
            "analysis",
            "components",
            "core",
            "runtime",
            "sampling",
            "scenarios",
            "simulator",
        }
    ),
}

#: One import edge: (importing unit, imported unit, file, line).
Edge = tuple[str, str, str, int]


def _module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Import statements executed at module import time.

    Descends into module-level ``if``/``try`` (version and
    optional-dependency guards run at import) and class bodies, but
    never into function bodies -- those are the lazy dispatch seams
    the contract deliberately exempts.
    """
    def scan(body: list[ast.stmt]) -> Iterator[ast.stmt]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node
            elif isinstance(node, ast.ClassDef):
                yield from scan(node.body)
            elif isinstance(node, (ast.If, ast.Try)):
                yield from scan(node.body)
                yield from scan(node.orelse)
                for handler in getattr(node, "handlers", []):
                    yield from scan(handler.body)
                yield from scan(getattr(node, "finalbody", []))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                yield from scan(node.body)

    yield from scan(tree.body)


def build_import_graph(package_root: Path) -> list[Edge]:
    """Module-level import edges between top-level units.

    *package_root* is a directory shaped like the ``repro`` package
    (the real one, or a fixture mini-tree).  Both absolute
    (``repro.x``) and relative imports resolve to their top-level
    unit; imports that leave the package are ignored.
    """
    edges: list[Edge] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root)
        parts = rel.with_suffix("").parts
        unit = parts[0]
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(rel))
        for node in _module_level_imports(tree):
            for target in _edge_targets(node, parts):
                if target != unit:
                    edges.append((unit, target, str(rel), node.lineno))
    return edges


def _edge_targets(
    node: ast.stmt, parts: tuple[str, ...]
) -> Iterator[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            pieces = alias.name.split(".")
            if pieces[0] == "repro" and len(pieces) > 1:
                yield pieces[1]
        return
    assert isinstance(node, ast.ImportFrom)
    module = node.module or ""
    if node.level == 0:
        pieces = module.split(".")
        if pieces[0] != "repro":
            return
        if len(pieces) > 1:
            yield pieces[1]
        else:
            # `from repro import x, y`: each name is a unit.
            for alias in node.names:
                yield alias.name
        return
    # Relative import: anchor at this file's package, walk up.
    package = ("repro",) + tuple(parts[:-1])
    anchor = package[: len(package) - (node.level - 1)]
    resolved = list(anchor[1:]) + (module.split(".") if module else [])
    if resolved:
        yield resolved[0]
    else:
        # `from .. import x` landing on the package root.
        for alias in node.names:
            yield alias.name


def _find_cycle(edges: list[Edge]) -> list[str] | None:
    graph: dict[str, set[str]] = {}
    for unit, target, _, _ in edges:
        graph.setdefault(unit, set()).add(target)
    state: dict[str, int] = {}
    stack: list[str] = []

    def visit(unit: str) -> list[str] | None:
        state[unit] = 1
        stack.append(unit)
        for target in sorted(graph.get(unit, ())):
            if state.get(target) == 1:
                return stack[stack.index(target):] + [target]
            if state.get(target, 0) == 0:
                cycle = visit(target)
                if cycle:
                    return cycle
        stack.pop()
        state[unit] = 2
        return None

    for unit in sorted(graph):
        if state.get(unit, 0) == 0:
            cycle = visit(unit)
            if cycle:
                return cycle
    return None


def check_layering(
    package_root: Path,
    contract: dict[str, frozenset[str]] | None = None,
    rel_prefix: str = "src/repro",
) -> Iterator[Finding]:
    """Check *package_root* against the layer contract.

    Emits one finding per back-edge (with the allowed set rendered)
    plus one for any module-level import cycle (with the full path).
    """
    contract = LAYER_CONTRACT if contract is None else contract
    edges = build_import_graph(package_root)
    for unit, target, rel, line in edges:
        allowed = contract.get(unit)
        path = f"{rel_prefix}/{rel}"
        if allowed is None:
            yield Finding(
                "layering",
                path,
                line,
                f"unit {unit!r} is not declared in the layer contract; "
                "add it to repro.devtools.layering.LAYER_CONTRACT",
            )
        elif target not in allowed and target in contract:
            yield Finding(
                "layering",
                path,
                line,
                f"back-edge {unit} -> {target}: layer {unit!r} may "
                f"import only {{{', '.join(sorted(allowed)) or 'nothing'}}} "
                "at module level (function-local imports are exempt)",
            )
    cycle = _find_cycle(edges)
    if cycle is not None:
        first = next(
            (e for e in edges if e[0] == cycle[0] and e[1] == cycle[1]),
            edges[0],
        )
        yield Finding(
            "layering",
            f"{rel_prefix}/{first[2]}",
            first[3],
            "module-level import cycle: " + " -> ".join(cycle),
        )
