"""Resource-lifecycle lint: no leaked rings, no leaked pools.

The shm transport's contract is *unlink on every exit path*: a
``SharedMemory(create=True)`` segment that outlives its sweep is a
``/dev/shm`` leak the CI leak check only catches after the fact, and a
``ProcessPoolExecutor`` without shutdown strands worker processes.
This pass checks the guarantee at the AST level: every tracked
constructor call must be *guarded in the function that makes it* --

* as a ``with`` context manager,
* inside (or as the statement immediately before) a ``try`` that has
  a ``finally``, or
* by **ownership transfer**: the resource (or an object wrapping it)
  is returned to the caller, as in ``ShmRing.create`` or an executor
  factory lambda -- the obligation moves with the value, and what
  gets checked instead is the call *site* of the factory
  (``ShmRing.create`` is itself a tracked constructor).

Anything else is a leak on the first exception between construction
and cleanup.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .findings import Finding, SourceFile

#: Scope boundaries: construction inside these is audited as its own
#: scope (lambdas transfer ownership by construction -- their body is
#: their return value).
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _scoped_walk(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk *body* without descending into nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPES):
            # Yield the boundary but never its interior: nested
            # functions are audited as their own scopes.
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _is_tracked(node: ast.Call) -> str | None:
    """The tracked-resource label for *node*, or ``None``."""
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name == "ProcessPoolExecutor":
        return "ProcessPoolExecutor"
    if name == "SharedMemory":
        for keyword in node.keywords:
            if (
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return "SharedMemory(create=True)"
        return None
    # ShmRing.create(...) hands a live segment to the caller, so its
    # call sites carry the same cleanup obligation as raw creation.
    if (
        name == "create"
        and isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "ShmRing"
    ):
        return "ShmRing.create"
    return None


class _ScopeAuditor:
    """Guard analysis for one function body (or the module body)."""

    def __init__(self, src: SourceFile, body: list[ast.stmt], label: str):
        self.src = src
        self.body = body
        self.label = label
        self.parents: dict[int, ast.AST] = {}
        self.returned_names: set[str] = set()
        for node in _scoped_walk(body):
            if not isinstance(node, _SCOPES):
                for child in ast.iter_child_nodes(node):
                    self.parents[id(child)] = node
            if isinstance(node, ast.Return) and node.value is not None:
                for leaf in ast.walk(node.value):
                    if isinstance(leaf, ast.Name):
                        self.returned_names.add(leaf.id)

    def _ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(id(node))
        while current is not None:
            yield current
            current = self.parents.get(id(current))

    def _statement_of(self, node: ast.AST) -> ast.stmt | None:
        """The innermost statement containing *node*."""
        if isinstance(node, ast.stmt):
            return node
        for ancestor in self._ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return ancestor
        return None

    def _next_sibling(self, stmt: ast.stmt) -> ast.stmt | None:
        parent = self.parents.get(id(stmt))
        blocks = (
            [self.body]
            if parent is None
            else [
                getattr(parent, attr, None)
                for attr in ("body", "orelse", "finalbody")
            ]
        )
        for block in blocks:
            if isinstance(block, list) and stmt in block:
                index = block.index(stmt)
                if index + 1 < len(block):
                    return block[index + 1]
        return None

    def _is_guarded(self, call: ast.Call) -> bool:
        for ancestor in self._ancestors(call):
            # (a) `with Tracked(...) as x:` -- the call is a withitem.
            if isinstance(ancestor, ast.withitem):
                return True
            # (b) inside the body of a try that has a finally.
            if isinstance(ancestor, ast.Try) and ancestor.finalbody:
                return True
            # (c) ownership transfer: part of a return value.
            if isinstance(ancestor, ast.Return):
                return True
        stmt = self._statement_of(call)
        if stmt is None:  # pragma: no cover - calls always sit in stmts
            return False
        # (d) assignment immediately followed by try/finally
        # (`ring = ShmRing.create(...)` then `try: ... finally:
        # ring.destroy()`).
        following = self._next_sibling(stmt)
        if isinstance(following, ast.Try) and following.finalbody:
            return True
        # (e) ownership transfer through a local: the assigned name
        # appears in some return expression of this scope (e.g.
        # `segment = SharedMemory(create=True)` ... `return
        # cls(segment, ...)`).
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in self.returned_names
                ):
                    return True
        return False

    def audit(self) -> Iterator[Finding]:
        for node in _scoped_walk(self.body):
            if not isinstance(node, ast.Call):
                continue
            label = _is_tracked(node)
            if label is None:
                continue
            if not self._is_guarded(node):
                yield Finding(
                    "lifecycle",
                    self.src.rel,
                    node.lineno,
                    f"{label} in {self.label} has no cleanup guard: "
                    "wrap it in `with`, a try/finally, or return "
                    "ownership to the caller",
                )


def check_lifecycle(src: SourceFile) -> Iterator[Finding]:
    """Audit every function scope (and the module body) of *src*."""
    yield from _ScopeAuditor(src, src.tree.body, "module scope").audit()
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _ScopeAuditor(
                src, node.body, f"{node.name}()"
            ).audit()
