"""Seam lint: every environment seam is declared, typed, documented.

Three sub-rules close the loop around :mod:`repro.seams`:

* ``env-read`` -- ``os.environ`` / ``os.getenv`` *reads* belong in
  ``seams.py`` (its single accessor line carries the one sanctioned
  waiver).  Writes -- ``os.environ[k] = v``, ``del os.environ[k]``,
  ``.pop``/``.update`` -- stay legal everywhere: benchmarks and tests
  legitimately *configure* seams for subprocesses; the invariant is
  only that nobody *consults* the environment ad hoc.
* ``seam-literal`` -- any ``REPRO_*`` string constant outside a
  docstring must name a seam declared in :data:`repro.seams.SEAMS`,
  so a typo'd or undeclared variable cannot hide in a call site.
* ``seam-doc`` -- every declared seam must appear in the README (the
  catalog table is the operator-facing contract).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from .findings import Finding, SourceFile

#: ``os.environ`` methods that only mutate (configuration, cleanup).
_WRITE_METHODS = frozenset({"pop", "update", "clear", "setdefault"})

_SEAM_LITERAL = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")


def _is_environ(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


def check_env_read(src: SourceFile) -> Iterator[Finding]:
    """Flag environment *reads* outside :mod:`repro.seams`."""
    # Subscript/method parents of each environ node, to classify
    # read vs write usage.
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(src.tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent

    for node in ast.walk(src.tree):
        # os.getenv(...) is always a read.
        if isinstance(node, ast.Call):
            chain = node.func
            if (
                isinstance(chain, ast.Attribute)
                and chain.attr == "getenv"
                and isinstance(chain.value, ast.Name)
                and chain.value.id == "os"
            ):
                yield Finding(
                    "env-read",
                    src.rel,
                    node.lineno,
                    "os.getenv() outside repro.seams; declare the seam "
                    "and use the typed accessors",
                )
            continue
        if not _is_environ(node):
            continue
        parent = parents.get(id(node))
        # os.environ[k] = v  /  del os.environ[k]: writes, allowed.
        if isinstance(parent, ast.Subscript) and isinstance(
            parent.ctx, (ast.Store, ast.Del)
        ):
            continue
        # os.environ.pop/update/clear(...): writes, allowed.
        if (
            isinstance(parent, ast.Attribute)
            and parent.attr in _WRITE_METHODS
        ):
            continue
        yield Finding(
            "env-read",
            src.rel,
            node.lineno,
            "os.environ read outside repro.seams; declare the seam "
            "and use the typed accessors",
        )


def check_seam_literals(
    src: SourceFile, registered: Iterable[str]
) -> Iterator[Finding]:
    """Flag ``REPRO_*`` literals that are not declared seams."""
    names = set(registered)
    docstrings = src.docstring_positions()
    for node in ast.walk(src.tree):
        if not (
            isinstance(node, ast.Constant) and isinstance(node.value, str)
        ):
            continue
        if (node.lineno, node.col_offset) in docstrings:
            continue
        for match in _SEAM_LITERAL.finditer(node.value):
            name = match.group(0)
            if name not in names:
                yield Finding(
                    "seam-literal",
                    src.rel,
                    node.lineno,
                    f"{name} is not declared in repro.seams.SEAMS; "
                    "register it (name, kind, default, doc) first",
                )


def check_readme(
    registered: Iterable[str], readme_text: str, readme_rel: str
) -> Iterator[Finding]:
    """Flag declared seams absent from the README catalog."""
    for name in registered:
        if name not in readme_text:
            yield Finding(
                "seam-doc",
                readme_rel,
                1,
                f"declared seam {name} is missing from the README "
                "seam catalog",
            )
