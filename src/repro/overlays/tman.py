"""Generic T-Man: gossip-based topology construction.

T-Man (Jelasity & Babaoglu, ESOA 2005 -- the paper's reference [5]) is
the ancestor of the bootstrapping protocol: nodes gossip descriptor
sets and each keeps the *best* ones under a pluggable ranking function;
with ring-distance ranking the population self-organises into a sorted
ring.  The paper notes its leaf-set components "are similar to the
application of T-MAN for building a sorted ring".

This implementation serves two purposes:

* the ring-only ablation (experiment E11): T-Man builds the ring
  *without* the prefix-table feedback, quantifying how much the
  "mutual boosting" buys in the endgame;
* a reusable topology-construction utility for other target graphs
  (any ranking function works -- e.g. XOR distance, proximity).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable

from ..core.descriptor import NodeDescriptor
from ..core.idspace import IDSpace
from ..core.protocol import Sampler

__all__ = ["Ranking", "ring_ranking", "xor_ranking", "TManNode"]

#: A ranking assigns every (base, candidate) identifier pair a sortable
#: badness -- lower is better, i.e. "candidate is a closer neighbour of
#: base in the target topology".
Ranking = Callable[[int, int], int]


def ring_ranking(space: IDSpace) -> Ranking:
    """Ranking for the sorted ring: ring distance."""

    def rank(base: int, candidate: int) -> int:
        return space.ring_distance(base, candidate)

    return rank


def xor_ranking(space: IDSpace) -> Ranking:
    """Ranking for XOR-metric topologies (Kademlia-like)."""

    def rank(base: int, candidate: int) -> int:
        return space.xor_distance(base, candidate)

    return rank


class TManNode:
    """Node-local T-Man state machine.

    Parameters
    ----------
    descriptor:
        This node's descriptor.
    ranking:
        The target topology's ranking function.
    view_size:
        Number of best descriptors retained.
    message_size:
        Number of descriptors sent per exchange.
    rng:
        Peer-selection randomness.
    sampler:
        Optional peer sampling endpoint blended into outgoing messages
        (T-Man's "random samples" ingredient; also used to seed the
        view at :meth:`start`).
    """

    __slots__ = (
        "descriptor",
        "_ranking",
        "_view_size",
        "_message_size",
        "_rng",
        "_sampler",
        "_view",
        "_started",
    )

    def __init__(
        self,
        descriptor: NodeDescriptor,
        ranking: Ranking,
        view_size: int,
        message_size: int,
        rng: random.Random,
        sampler: Sampler | None = None,
    ) -> None:
        if view_size < 1:
            raise ValueError(f"view_size must be >= 1, got {view_size}")
        if message_size < 1:
            raise ValueError(f"message_size must be >= 1, got {message_size}")
        self.descriptor = descriptor
        self._ranking = ranking
        self._view_size = view_size
        self._message_size = message_size
        self._rng = rng
        self._sampler = sampler
        self._view: dict[int, NodeDescriptor] = {}
        self._started = False

    @property
    def node_id(self) -> int:
        """This node's identifier."""
        return self.descriptor.node_id

    @property
    def started(self) -> bool:
        """Whether the view has been seeded."""
        return self._started

    def view_ids(self) -> list[int]:
        """Identifiers currently in the view."""
        return list(self._view)

    def view_descriptors(self) -> list[NodeDescriptor]:
        """Descriptors currently in the view."""
        return list(self._view.values())

    def start(self) -> None:
        """Seed the view from the sampling service (random initial
        topology -- T-Man's standard starting point)."""
        if self._sampler is not None:
            self.merge(self._sampler.sample(self._view_size))
        self._started = True

    # ------------------------------------------------------------------
    # Gossip steps
    # ------------------------------------------------------------------

    def select_peer(self) -> NodeDescriptor | None:
        """Random node from the better half of the view (T-Man's psi=
        half policy, matching the bootstrap's SELECTPEER)."""
        if not self._view:
            if self._sampler is not None:
                fallback = self._sampler.sample(1)
                return fallback[0] if fallback else None
            return None
        own = self.node_id
        ordered = sorted(
            self._view.values(),
            key=lambda d: (self._ranking(own, d.node_id), d.node_id),
        )
        half = ordered[: (len(ordered) + 1) // 2]
        return self._rng.choice(half)

    def payload_for(self, peer_id: int) -> tuple[NodeDescriptor, ...]:
        """The *message_size* best-known descriptors *for the peer*
        (ranked from the peer's perspective), plus own descriptor."""
        union: dict[int, NodeDescriptor] = dict(self._view)
        if self._sampler is not None:
            for desc in self._sampler.sample(self._message_size):
                union.setdefault(desc.node_id, desc)
        union[self.node_id] = self.descriptor
        union.pop(peer_id, None)
        ranked = sorted(
            union.values(),
            key=lambda d: (self._ranking(peer_id, d.node_id), d.node_id),
        )
        return tuple(ranked[: self._message_size])

    def merge(self, descriptors: Iterable[NodeDescriptor]) -> None:
        """Union the received descriptors into the view and keep the
        *view_size* best under the ranking."""
        own = self.node_id
        union: dict[int, NodeDescriptor] = dict(self._view)
        for desc in descriptors:
            if desc.node_id != own:
                union.setdefault(desc.node_id, desc)
        if len(union) > self._view_size:
            ranked = sorted(
                union.values(),
                key=lambda d: (self._ranking(own, d.node_id), d.node_id),
            )
            self._view = {
                d.node_id: d for d in ranked[: self._view_size]
            }
        else:
            self._view = union

    # ------------------------------------------------------------------
    # Convergence helpers
    # ------------------------------------------------------------------

    def knows(self, node_id: int) -> bool:
        """Whether *node_id* is in the view."""
        return node_id in self._view

    def best(self, count: int) -> list[int]:
        """The *count* best-ranked view members."""
        own = self.node_id
        ranked = sorted(
            self._view, key=lambda n: (self._ranking(own, n), n)
        )
        return ranked[:count]
