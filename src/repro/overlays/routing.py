"""Generic overlay routing machinery.

The point of the bootstrapping service is that its output -- leaf sets
plus prefix tables -- is immediately consumable by "Pastry, Kademlia,
Tapestry and Bamboo".  This module provides the network-level driver
shared by the concrete substrates: given a static snapshot of per-node
routing state, walk a lookup hop by hop and report the path.

Routing success over converged tables (and the ~log_{2^b} N hop count)
is the downstream-validity experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Protocol

__all__ = ["RouteResult", "RoutingNode", "route", "RouteStats"]


class RoutingNode(Protocol):
    """Node-local routing decision: one hop towards a target."""

    @property
    def node_id(self) -> int:
        """This node's identifier."""
        ...

    def next_hop(self, target_id: int) -> int | None:
        """The identifier of the next node towards *target_id*, or
        ``None`` when this node considers itself responsible (delivery)
        or has no better candidate (dead end)."""
        ...


@dataclass(frozen=True)
class RouteResult:
    """Outcome of one lookup walk.

    Attributes
    ----------
    path:
        Node identifiers visited, starting node first.
    delivered_to:
        The node that terminated the route (last path element).
    success:
        Whether the route terminated at the *correct* node (as judged
        by the caller-supplied responsibility rule).
    reason:
        ``"delivered"``, ``"dead-end"`` (no next hop and not
        responsible), ``"loop"`` (revisited a node), or
        ``"hop-limit"``.
    """

    path: tuple[int, ...]
    delivered_to: int
    success: bool
    reason: str

    @property
    def hops(self) -> int:
        """Number of overlay hops taken (path length minus one)."""
        return len(self.path) - 1


def route(
    network: Mapping[int, RoutingNode],
    start_id: int,
    target_id: int,
    responsible_id: int,
    max_hops: int = 64,
) -> RouteResult:
    """Walk a lookup for *target_id* from *start_id* through *network*.

    Parameters
    ----------
    network:
        Live nodes by identifier.
    responsible_id:
        Ground truth: the node that *should* receive the lookup (the
        live node responsible for the key).  Success means terminating
        exactly there.
    max_hops:
        Safety valve; converged prefix routing needs ~log_{2^b} N hops.
    """
    if start_id not in network:
        raise KeyError(f"start node {start_id:#x} not in network")
    path: list[int] = [start_id]
    visited = {start_id}
    current = network[start_id]
    reason = "delivered"
    for _ in range(max_hops):
        nxt = current.next_hop(target_id)
        if nxt is None:
            break
        if nxt == current.node_id:
            break
        node = network.get(nxt)
        if node is None:
            reason = "dead-end"
            break
        if nxt in visited:
            path.append(nxt)
            reason = "loop"
            break
        path.append(nxt)
        visited.add(nxt)
        current = node
    else:
        reason = "hop-limit"
    delivered_to = path[-1]
    success = reason == "delivered" and delivered_to == responsible_id
    return RouteResult(
        path=tuple(path),
        delivered_to=delivered_to,
        success=success,
        reason=reason,
    )


@dataclass
class RouteStats:
    """Aggregate over many lookups (experiment E10's summary rows)."""

    attempts: int = 0
    successes: int = 0
    total_hops: int = 0
    max_hops: int = 0
    failures_by_reason: dict[str, int] = field(default_factory=dict)

    def record(self, result: RouteResult) -> None:
        """Fold one lookup outcome into the aggregate."""
        self.attempts += 1
        if result.success:
            self.successes += 1
            self.total_hops += result.hops
            if result.hops > self.max_hops:
                self.max_hops = result.hops
        else:
            key = result.reason if result.reason != "delivered" else "misdelivered"
            self.failures_by_reason[key] = (
                self.failures_by_reason.get(key, 0) + 1
            )

    @property
    def success_rate(self) -> float:
        """Fraction of lookups that reached the responsible node."""
        return self.successes / self.attempts if self.attempts else 0.0

    @property
    def mean_hops(self) -> float:
        """Mean hop count over successful lookups."""
        return self.total_hops / self.successes if self.successes else 0.0

    def as_row(self) -> dict[str, object]:
        """Flat summary for tables."""
        return {
            "attempts": self.attempts,
            "success_rate": self.success_rate,
            "mean_hops": self.mean_hops,
            "max_hops": self.max_hops,
            "failures": dict(self.failures_by_reason),
        }
