"""Routing substrates consuming the bootstrapping service's output.

The paper's value proposition is that one gossip bootstrap yields the
state every prefix-table overlay needs.  This package materialises
those overlays from bootstrap snapshots -- Pastry and Kademlia as the
headline consumers, Chord (with its own T-Chord bootstrap) as the
prior-work comparator, and generic T-Man as the protocol's ancestor and
ablation vehicle.
"""

from .chord import (
    ChordBootstrapNode,
    ChordBootstrapSimulation,
    ChordConvergenceSample,
    ChordNetwork,
    ChordRouter,
    perfect_fingers,
)
from .kademlia import IterativeLookupResult, KademliaNetwork, KademliaRouter
from .maintenance import (
    MaintenanceActor,
    MaintenanceNode,
    MaintenanceQuality,
    MaintenanceSimulation,
)
from .pastry import PastryNetwork, PastryRouter
from .proximity import (
    CoordinateSpace,
    ProximityPastryRouter,
    build_proximity_network,
    route_latency,
)
from .routing import RouteResult, RouteStats, RoutingNode, route
from .tman import Ranking, TManNode, ring_ranking, xor_ranking

__all__ = [
    "ChordBootstrapNode",
    "ChordBootstrapSimulation",
    "ChordConvergenceSample",
    "ChordNetwork",
    "ChordRouter",
    "perfect_fingers",
    "IterativeLookupResult",
    "KademliaNetwork",
    "KademliaRouter",
    "MaintenanceActor",
    "MaintenanceNode",
    "MaintenanceQuality",
    "MaintenanceSimulation",
    "PastryNetwork",
    "PastryRouter",
    "CoordinateSpace",
    "ProximityPastryRouter",
    "build_proximity_network",
    "route_latency",
    "RouteResult",
    "RouteStats",
    "RoutingNode",
    "route",
    "Ranking",
    "TManNode",
    "ring_ranking",
    "xor_ranking",
]
