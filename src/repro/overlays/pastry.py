"""Pastry-style routing substrate consuming bootstrap output.

Pastry (Rowstron & Druschel, Middleware 2001) routes with exactly the
state the bootstrapping service builds: a leaf set of ring neighbours
and a prefix table.  This module materialises a static Pastry network
from converged (or still-converging) bootstrap nodes and runs lookups
over it -- the downstream-validity check that the tables the protocol
builds are *the* tables the substrate needs (experiment E10).

Routing rule per hop (Pastry Section 2.3, adapted to ring distance):

1. if the key falls within the leaf set's arc, deliver to the
   numerically closest leaf (or self);
2. otherwise forward to a prefix-table entry sharing one more digit
   with the key than the current node does;
3. otherwise (the "rare case") forward to any known node sharing at
   least as long a prefix and strictly closer to the key.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..core.idspace import IDSpace
from ..core.protocol import BootstrapNode
from .routing import RouteResult, RouteStats, route

__all__ = ["PastryRouter", "PastryNetwork"]


def _closest(
    space: IDSpace, target_id: int, candidates: Iterable[int]
) -> int | None:
    """Candidate at minimal ring distance from *target_id*; ties break
    towards the smaller identifier (the library-wide responsibility
    tie-break)."""
    best = None
    best_key = None
    for candidate in candidates:
        key = (space.ring_distance(target_id, candidate), candidate)
        if best_key is None or key < best_key:
            best = candidate
            best_key = key
    return best


class PastryRouter:
    """Per-node Pastry routing state (a static snapshot).

    Parameters
    ----------
    space:
        Identifier geometry.
    node_id:
        This node's identifier.
    leaf_ids:
        Leaf-set membership (both directions).
    table:
        Prefix-table snapshot: ``(row, column) -> [ids]``.
    """

    __slots__ = ("_space", "_node_id", "_leaf_ids", "_table", "_known")

    def __init__(
        self,
        space: IDSpace,
        node_id: int,
        leaf_ids: Iterable[int],
        table: Mapping[tuple[int, int], Iterable[int]],
    ) -> None:
        self._space = space
        self._node_id = node_id
        self._leaf_ids = frozenset(leaf_ids)
        self._table: dict[tuple[int, int], tuple[int, ...]] = {
            slot: tuple(ids) for slot, ids in table.items()
        }
        known = set(self._leaf_ids)
        for ids in self._table.values():
            known.update(ids)
        known.discard(node_id)
        self._known = frozenset(known)

    @classmethod
    def from_bootstrap(cls, node: BootstrapNode) -> PastryRouter:
        """Snapshot a live bootstrap node's tables into a router."""
        table = {
            slot: [d.node_id for d in descriptors]
            for slot, descriptors in node.prefix_table.iter_slots()
        }
        return cls(
            node.config.space,
            node.node_id,
            node.leaf_set.member_ids(),
            table,
        )

    @property
    def node_id(self) -> int:
        """This node's identifier."""
        return self._node_id

    @property
    def known_ids(self) -> frozenset:
        """Every identifier this router can name."""
        return self._known

    def covers(self, target_id: int) -> bool:
        """Whether *target_id* lies within the leaf-set arc (between the
        farthest predecessor and farthest successor)."""
        if not self._leaf_ids:
            return False
        space = self._space
        own = self._node_id
        mask = space.size - 1
        half = space.half
        max_fwd = 0
        max_back = 0
        for leaf in self._leaf_ids:
            fwd = (leaf - own) & mask
            if fwd <= half:
                if fwd > max_fwd:
                    max_fwd = fwd
            else:
                back = (own - leaf) & mask
                if back > max_back:
                    max_back = back
        offset = (target_id - own) & mask
        return offset <= max_fwd or ((own - target_id) & mask) <= max_back

    def next_hop(self, target_id: int) -> int | None:
        """One Pastry routing step towards *target_id*.

        Returns ``None`` when this node keeps the key (delivery point),
        which the network-level driver then judges for correctness.
        """
        own = self._node_id
        if target_id == own:
            return None
        space = self._space

        # 1. Leaf-set delivery.
        if self.covers(target_id):
            best = _closest(
                space, target_id, list(self._leaf_ids) + [own]
            )
            return None if best == own else best

        # 2. Prefix-table forwarding.
        row = space.common_prefix_digits(own, target_id)
        slot = (row, space.digit(target_id, row))
        entries = self._table.get(slot)
        if entries:
            return _closest(space, target_id, entries)

        # 3. Rare case: any known node at least as good and strictly
        #    closer.
        own_distance = space.ring_distance(own, target_id)
        best = None
        best_key = None
        for candidate in self._known:
            if space.common_prefix_digits(candidate, target_id) < row:
                continue
            distance = space.ring_distance(candidate, target_id)
            if distance >= own_distance:
                continue
            key = (distance, candidate)
            if best_key is None or key < best_key:
                best = candidate
                best_key = key
        return best


class PastryNetwork:
    """A static Pastry overlay assembled from routing snapshots.

    Parameters
    ----------
    space:
        Identifier geometry.
    routers:
        Per-node routing state by identifier.
    """

    def __init__(
        self, space: IDSpace, routers: Mapping[int, PastryRouter]
    ) -> None:
        if not routers:
            raise ValueError("a Pastry network needs at least one node")
        self._space = space
        self._routers = dict(routers)
        self._sorted_ids = sorted(self._routers)

    @classmethod
    def from_bootstrap_nodes(
        cls, nodes: Iterable[BootstrapNode]
    ) -> PastryNetwork:
        """Snapshot a whole bootstrap population into a Pastry overlay."""
        routers: dict[int, PastryRouter] = {}
        space: IDSpace | None = None
        for node in nodes:
            routers[node.node_id] = PastryRouter.from_bootstrap(node)
            space = node.config.space
        if space is None:
            raise ValueError("no nodes supplied")
        return cls(space, routers)

    @property
    def size(self) -> int:
        """Number of live nodes."""
        return len(self._routers)

    @property
    def ids(self) -> list[int]:
        """Live identifiers, ascending."""
        return list(self._sorted_ids)

    def responsible_for(self, key: int) -> int:
        """The live node a correct lookup must terminate at: minimal
        ring distance to the key, ties to the smaller identifier."""
        import bisect

        ids = self._sorted_ids
        pos = bisect.bisect_left(ids, key)
        around = {ids[pos % len(ids)], ids[(pos - 1) % len(ids)]}
        result = _closest(self._space, key, around)
        assert result is not None
        return result

    def lookup(self, key: int, start_id: int, max_hops: int = 64) -> RouteResult:
        """Route *key* from *start_id*; success means terminating at the
        responsible node."""
        return route(
            self._routers,
            start_id,
            key,
            self.responsible_for(key),
            max_hops=max_hops,
        )

    def lookup_many(
        self,
        keys: Iterable[int],
        start_ids: Iterable[int],
        max_hops: int = 64,
    ) -> RouteStats:
        """Run one lookup per ``(key, start)`` pair, aggregating stats."""
        stats = RouteStats()
        for key, start_id in zip(keys, start_ids, strict=True):
            stats.record(self.lookup(key, start_id, max_hops=max_hops))
        return stats
