"""Chord: ring + fingers substrate, and the T-Chord bootstrap.

The paper positions this work as the prefix-table sequel to "Chord on
demand" (Montresor, Jelasity, Babaoglu, P2P 2005 -- reference [9]):
"we have already addressed bootstrapping CHORD that is based on a
sorted ring, and additional fingers that are defined based on distance
in the ID space."  To compare the two bootstraps (experiment E12), this
module implements:

* :class:`ChordRouter` / :class:`ChordNetwork` -- the classic substrate
  (successor lists + power-of-two fingers, greedy
  closest-preceding-node routing);
* :class:`ChordBootstrapNode` -- a T-Chord-style gossip that grows the
  sorted ring and harvests finger entries simultaneously, mirroring the
  prefix-table protocol's structure but with Chord's
  distance-defined fingers;
* :class:`ChordBootstrapSimulation` -- the cycle-driven experiment
  around it, with finger/leaf convergence measurement.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from ..core.config import BootstrapConfig, PAPER_CONFIG
from ..core.descriptor import NodeDescriptor
from ..core.idspace import IDSpace
from ..core.leafset import LeafSet
from ..core.messages import BootstrapMessage
from ..core.protocol import Sampler
from ..sampling.oracle import MembershipRegistry, OracleSampler
from ..simulator.engine import CycleEngine, RequestReplyActor
from ..simulator.network import NetworkModel, RELIABLE
from ..simulator.random_source import RandomSource
from .routing import RouteResult, RouteStats, route

__all__ = [
    "ChordRouter",
    "ChordNetwork",
    "ChordBootstrapNode",
    "ChordBootstrapSimulation",
    "ChordConvergenceSample",
    "perfect_fingers",
]


def successor_of(sorted_ids: Sequence[int], key: int) -> int:
    """First identifier clockwise at or after *key* (with wraparound)."""
    pos = bisect.bisect_left(sorted_ids, key)
    return sorted_ids[pos % len(sorted_ids)]


def perfect_fingers(
    space: IDSpace, sorted_ids: Sequence[int], own_id: int
) -> dict[int, int]:
    """Chord's ideal finger table for *own_id* over the live set.

    ``fingers[i] = successor(own + 2^i)``; entries that resolve to the
    owner itself are omitted (no external pointer needed).  Consecutive
    exponents often share a finger; the dict keeps them all, as real
    Chord tables do.
    """
    fingers: dict[int, int] = {}
    size = space.size
    for exponent in range(space.bits):
        target = (own_id + (1 << exponent)) % size
        finger = successor_of(sorted_ids, target)
        if finger != own_id:
            fingers[exponent] = finger
    return fingers


class ChordRouter:
    """Per-node Chord routing state (static snapshot).

    Parameters
    ----------
    space:
        Identifier geometry.
    node_id:
        Owner identifier.
    successors:
        Successor list, nearest first.
    fingers:
        ``exponent -> identifier`` finger entries.
    """

    __slots__ = ("_space", "_node_id", "_successors", "_fingers", "_predecessor")

    def __init__(
        self,
        space: IDSpace,
        node_id: int,
        successors: Sequence[int],
        fingers: Mapping[int, int],
        predecessor: int | None = None,
    ) -> None:
        self._space = space
        self._node_id = node_id
        self._successors = tuple(successors)
        self._fingers = dict(fingers)
        self._predecessor = predecessor

    @property
    def node_id(self) -> int:
        """Owner identifier."""
        return self._node_id

    @property
    def successor(self) -> int | None:
        """Immediate successor, if known."""
        return self._successors[0] if self._successors else None

    @property
    def predecessor(self) -> int | None:
        """Immediate predecessor, if known."""
        return self._predecessor

    def known_ids(self) -> list[int]:
        """Every contact this router can name."""
        seen = set(self._successors)
        seen.update(self._fingers.values())
        seen.discard(self._node_id)
        return list(seen)

    def next_hop(self, target_id: int) -> int | None:
        """Greedy Chord step for resolving ``successor(target)``.

        Chord's standard formulation: the node whose span
        ``(predecessor, own]`` contains the key delivers it; a node
        seeing the key in ``(own, successor]`` forwards to the
        successor (the responsible node); otherwise it forwards to the
        closest known node *preceding* the key.
        """
        own = self._node_id
        if target_id == own:
            return None
        space = self._space
        # key in (predecessor, own] => this node is responsible.
        pred = self._predecessor
        if pred is not None:
            span = space.clockwise_distance(pred, own)
            arrival = space.clockwise_distance(pred, target_id)
            if 0 < arrival <= span:
                return None
        succ = self.successor
        if succ is not None and succ != own:
            # key in (own, successor] => successor is responsible.
            if space.clockwise_distance(own, target_id) <= \
                    space.clockwise_distance(own, succ):
                return succ
        # Closest preceding node: the known contact maximising clockwise
        # progress without reaching the key.
        best = None
        best_progress = 0
        key_distance = space.clockwise_distance(own, target_id)
        for contact in self.known_ids():
            progress = space.clockwise_distance(own, contact)
            if 0 < progress < key_distance and progress > best_progress:
                best = contact
                best_progress = progress
        return best


class ChordNetwork:
    """Static Chord overlay; build ideal from an id set, or snapshot a
    bootstrapped population."""

    def __init__(
        self, space: IDSpace, routers: Mapping[int, ChordRouter]
    ) -> None:
        if not routers:
            raise ValueError("a Chord network needs at least one node")
        self._space = space
        self._routers = dict(routers)
        self._sorted_ids = sorted(self._routers)

    @classmethod
    def ideal(
        cls,
        space: IDSpace,
        ids: Iterable[int],
        successor_list_length: int = 8,
    ) -> ChordNetwork:
        """The converged Chord overlay for a live id set (ground truth
        for comparisons)."""
        sorted_ids = sorted(ids)
        n = len(sorted_ids)
        routers: dict[int, ChordRouter] = {}
        for index, node_id in enumerate(sorted_ids):
            successors = [
                sorted_ids[(index + off) % n]
                for off in range(1, min(successor_list_length, n - 1) + 1)
            ]
            routers[node_id] = ChordRouter(
                space,
                node_id,
                successors,
                perfect_fingers(space, sorted_ids, node_id),
                predecessor=sorted_ids[index - 1] if n > 1 else None,
            )
        return cls(space, routers)

    @property
    def size(self) -> int:
        """Number of live nodes."""
        return len(self._routers)

    def responsible_for(self, key: int) -> int:
        """Chord's responsibility rule: the key's successor."""
        return successor_of(self._sorted_ids, key)

    def lookup(self, key: int, start_id: int, max_hops: int = 96) -> RouteResult:
        """Resolve ``successor(key)`` from *start_id*."""
        return route(
            self._routers,
            start_id,
            key,
            self.responsible_for(key),
            max_hops=max_hops,
        )

    def lookup_many(
        self, keys: Iterable[int], start_ids: Iterable[int], max_hops: int = 96
    ) -> RouteStats:
        """Aggregate lookups."""
        stats = RouteStats()
        for key, start in zip(keys, start_ids, strict=True):
            stats.record(self.lookup(key, start, max_hops=max_hops))
        return stats


class ChordBootstrapNode:
    """T-Chord-style gossip bootstrap (the paper's prior work, ref [9]).

    State: a balanced leaf set (the evolving sorted ring, identical
    machinery to the prefix-table bootstrap) plus a finger table keyed
    by exponent.  Each exchange sends the ``c`` union members closest to
    the peer *and* the union members that would improve the peer's
    fingers -- the structural sibling of ``CREATEMESSAGE``'s
    prefix-targeted part.
    """

    __slots__ = (
        "descriptor",
        "config",
        "leaf_set",
        "fingers",
        "_space",
        "_sampler",
        "_rng",
        "_started",
        "_now",
    )

    def __init__(
        self,
        descriptor: NodeDescriptor,
        config: BootstrapConfig,
        sampler: Sampler,
        rng: random.Random,
    ) -> None:
        self.descriptor = descriptor
        self.config = config
        self._space = config.space
        self._sampler = sampler
        self._rng = rng
        self.leaf_set = LeafSet(
            self._space, descriptor.node_id, config.leaf_set_size
        )
        self.fingers: dict[int, NodeDescriptor] = {}
        self._started = False
        self._now = 0.0

    @property
    def node_id(self) -> int:
        """This node's identifier."""
        return self.descriptor.node_id

    @property
    def started(self) -> bool:
        """Whether the node has initialised its leaf set."""
        return self._started

    def set_time(self, now: float) -> None:
        """Advance logical time."""
        self._now = now

    def start(self) -> None:
        """Initialise the leaf set from the sampling service."""
        self.fingers.clear()
        self.leaf_set.update(self._sampler.sample(self.config.leaf_set_size))
        self._started = True

    # -- finger maintenance -------------------------------------------

    def _finger_improves(self, exponent: int, candidate_id: int) -> bool:
        space = self._space
        target = (self.node_id + (1 << exponent)) % space.size
        current = self.fingers.get(exponent)
        candidate_gap = space.clockwise_distance(target, candidate_id)
        if current is None:
            return True
        return candidate_gap < space.clockwise_distance(
            target, current.node_id
        )

    def update_fingers(self, descriptors: Iterable[NodeDescriptor]) -> int:
        """Tighten finger entries with any better candidates; returns
        the number of improvements."""
        improved = 0
        space = self._space
        own = self.node_id
        for desc in descriptors:
            if desc.node_id == own:
                continue
            # A candidate can only improve exponents whose target lies
            # within (own, candidate] clockwise; iterating all bits is
            # cheap (64) and keeps the rule obvious.
            for exponent in range(space.bits):
                if self._finger_improves(exponent, desc.node_id):
                    self.fingers[exponent] = desc
                    improved += 1
        return improved

    # -- gossip --------------------------------------------------------

    def select_peer(self) -> NodeDescriptor | None:
        """Random member of the closer half of the leaf set."""
        candidates = self.leaf_set.closest_half()
        if candidates:
            return self._rng.choice(candidates)
        fallback = self._sampler.sample(1)
        return fallback[0] if fallback else None

    def create_message(
        self, peer: NodeDescriptor, is_reply: bool = False
    ) -> BootstrapMessage:
        """The T-Chord message: c closest to the peer, plus candidates
        for each of the peer's fingers."""
        config = self.config
        space = self._space
        peer_id = peer.node_id
        union: dict[int, NodeDescriptor] = {
            d.node_id: d for d in self.fingers.values()
        }
        for desc in self.leaf_set:
            union[desc.node_id] = desc
        for desc in self._sampler.sample(config.random_samples):
            union.setdefault(desc.node_id, desc)
        own = self.descriptor.refreshed(self._now)
        union[own.node_id] = own
        union.pop(peer_id, None)

        mask = space.size - 1
        ranked = sorted(
            union.values(),
            key=lambda d: (
                min((d.node_id - peer_id) & mask, (peer_id - d.node_id) & mask),
                d.node_id,
            ),
        )
        close_part = ranked[: config.leaf_set_size]
        selected = {d.node_id for d in close_part}

        # Finger-targeted part: for each exponent, the union member
        # nearest after the peer's finger target.
        finger_part: list[NodeDescriptor] = []
        size = space.size
        for exponent in range(space.bits):
            target = (peer_id + (1 << exponent)) % size
            best = None
            best_gap = None
            for desc in union.values():
                gap = space.clockwise_distance(target, desc.node_id)
                if best_gap is None or gap < best_gap:
                    best = desc
                    best_gap = gap
            if best is not None and best.node_id not in selected:
                selected.add(best.node_id)
                finger_part.append(best)

        return BootstrapMessage(
            sender=own,
            descriptors=tuple(close_part) + tuple(finger_part),
            is_reply=is_reply,
        )

    def absorb(self, message: BootstrapMessage) -> None:
        """Apply a received message: leaf set, then fingers."""
        descriptors = list(message.all_descriptors())
        self.leaf_set.update(descriptors)
        self.update_fingers(descriptors)

    def initiate_exchange(
        self,
    ) -> tuple[NodeDescriptor, BootstrapMessage] | None:
        """Active-thread step."""
        peer = self.select_peer()
        if peer is None:
            return None
        return peer, self.create_message(peer, is_reply=False)

    def handle_request(self, message: BootstrapMessage) -> BootstrapMessage:
        """Passive-thread step (answer from pre-exchange state)."""
        reply = self.create_message(message.sender, is_reply=True)
        self.absorb(message)
        return reply

    def handle_reply(self, message: BootstrapMessage) -> None:
        """Active-thread completion."""
        self.absorb(message)


class _ChordActor(RequestReplyActor):
    __slots__ = ("node",)

    def __init__(self, node: ChordBootstrapNode) -> None:
        self.node = node

    def set_time(self, now: float) -> None:
        self.node.set_time(now)

    def begin_exchange(self):
        if not self.node.started:
            self.node.start()
        begun = self.node.initiate_exchange()
        if begun is None:
            return None
        peer, message = begun
        return peer.node_id, message

    def answer(self, request):
        return self.node.handle_request(request)

    def complete(self, reply):
        self.node.handle_reply(reply)


@dataclass(frozen=True)
class ChordConvergenceSample:
    """Finger/ring quality at one cycle.

    The ring criterion is Chord-shaped: each node must know its
    ``c/2`` nearest successors and its immediate predecessor -- the
    state Chord routing and stabilisation actually use.  Distant
    *predecessors* are not required: finger information travels
    clockwise only, so the gossip occasionally leaves a far-predecessor
    slot unfilled, which Chord never misses.
    """

    cycle: float
    wrong_fingers: int
    total_fingers: int
    missing_ring: int
    total_ring: int

    @property
    def finger_fraction(self) -> float:
        """Proportion of finger entries not yet optimal."""
        return (
            self.wrong_fingers / self.total_fingers
            if self.total_fingers
            else 0.0
        )

    @property
    def ring_fraction(self) -> float:
        """Proportion of missing successor-list/predecessor entries."""
        return self.missing_ring / self.total_ring if self.total_ring else 0.0

    @property
    def is_perfect(self) -> bool:
        """All fingers optimal and ring state complete."""
        return self.wrong_fingers == 0 and self.missing_ring == 0


class ChordBootstrapSimulation:
    """Cycle-driven T-Chord bootstrap experiment (experiment E12)."""

    def __init__(
        self,
        size: int,
        *,
        config: BootstrapConfig = PAPER_CONFIG,
        seed: int = 1,
        network: NetworkModel = RELIABLE,
    ) -> None:
        self.config = config
        self.seed = seed
        source = RandomSource(seed)
        space = config.space
        ids = space.random_unique_ids(size, source.derive("ids"))
        self._sorted_ids = sorted(ids)
        self.registry = MembershipRegistry()
        self.nodes: dict[int, ChordBootstrapNode] = {}
        self.engine = CycleEngine(network, source.derive("engine"))
        for address, node_id in enumerate(ids):
            descriptor = NodeDescriptor(node_id=node_id, address=address)
            self.registry.add(descriptor)
            sampler = OracleSampler(
                self.registry, node_id, source.derive(("sampler", node_id))
            )
            node = ChordBootstrapNode(
                descriptor, config, sampler, source.derive(("node", node_id))
            )
            self.nodes[node_id] = node
            self.engine.add_actor(node_id, _ChordActor(node))
        self._space = space
        self._perfect: dict[int, dict[int, int]] = {
            node_id: perfect_fingers(space, self._sorted_ids, node_id)
            for node_id in ids
        }
        self.samples: list[ChordConvergenceSample] = []

    def _perfect_ring_state(self, node_id: int) -> set[int]:
        """The Chord ring state a node must hold: its c/2 nearest
        successors plus its immediate predecessor."""
        sorted_ids = self._sorted_ids
        index = bisect.bisect_left(sorted_ids, node_id)
        n = len(sorted_ids)
        reach = min(self.config.leaf_set_size // 2, n - 1)
        wanted = {
            sorted_ids[(index + offset) % n] for offset in range(1, reach + 1)
        }
        if n > 1:
            wanted.add(sorted_ids[(index - 1) % n])
        wanted.discard(node_id)
        return wanted

    def measure(self) -> ChordConvergenceSample:
        """Compare every node's fingers and ring state to the ideal."""
        wrong = 0
        total = 0
        missing_ring = 0
        total_ring = 0
        for node_id, node in self.nodes.items():
            ideal = self._perfect[node_id]
            total += len(ideal)
            for exponent, want in ideal.items():
                have = node.fingers.get(exponent)
                if have is None or have.node_id != want:
                    wrong += 1
            wanted = self._perfect_ring_state(node_id)
            total_ring += len(wanted)
            missing_ring += len(wanted - node.leaf_set.member_ids())
        sample = ChordConvergenceSample(
            cycle=float(self.engine.cycle),
            wrong_fingers=wrong,
            total_fingers=total,
            missing_ring=missing_ring,
            total_ring=total_ring,
        )
        self.samples.append(sample)
        return sample

    def run(
        self, max_cycles: int = 60, *, stop_when_perfect: bool = True
    ) -> list[ChordConvergenceSample]:
        """Run to convergence or budget; returns the sample series."""
        for _ in range(max_cycles):
            self.engine.run_cycle()
            sample = self.measure()
            if stop_when_perfect and sample.is_perfect:
                break
        return self.samples

    def to_network(self, successor_list_length: int = 8) -> ChordNetwork:
        """Snapshot the bootstrapped state into a routable overlay."""
        routers: dict[int, ChordRouter] = {}
        for node_id, node in self.nodes.items():
            successors = [d.node_id for d in node.leaf_set.successors()]
            predecessors = node.leaf_set.predecessors()
            routers[node_id] = ChordRouter(
                self._space,
                node_id,
                successors[:successor_list_length],
                {e: d.node_id for e, d in node.fingers.items()},
                predecessor=(
                    predecessors[0].node_id if predecessors else None
                ),
            )
        return ChordNetwork(self._space, routers)
