"""Post-bootstrap leaf-set maintenance: the hand-off layer.

The paper's architecture explicitly divides labour: the bootstrapping
service builds the overlay, after which "existing, well-tuned protocols
without modification ... maintain the overlays once they have been
formed" (Section 1), citing the periodic leaf-set repair used by
OpenDHT and Tapestry-style systems ("a form of periodic repair
mechanism for maintaining the leaf set", Section 6).

This module implements that repair protocol so the full lifecycle --
bootstrap, hand off, survive churn -- is runnable end to end:

* each period, a node probes one leaf-set member, exchanging leaf sets
  (which both replenishes membership and disseminates newcomers);
* a member that fails ``suspicion_threshold`` consecutive probes is
  evicted from the leaf set *and* the prefix table (over UDP, loss and
  death are indistinguishable, so eviction needs repeated evidence);
* suspicion is cleared only by *direct* contact with the suspect --
  hearsay (a neighbour's payload naming the suspect) proves nothing
  about liveness;
* an evicted identifier is **tombstoned** for a while: gossip payloads
  keep naming dead nodes until every neighbour has evicted them
  independently, and without tombstones that hearsay would re-insert
  the corpse forever.  Direct contact resurrects a tombstoned node
  instantly (false evictions self-heal);
* newcomers join by seeding their leaf set from the sampling service
  and are pulled into everyone else's tables by the exchanges.

Unlike the bootstrap (which only ever improves), maintenance evicts --
the two protocols are complementary, exactly as the paper argues.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Hashable

from ..core.descriptor import NodeDescriptor
from ..core.protocol import BootstrapNode
from ..simulator.engine import RequestReplyActor

__all__ = [
    "ProbeMessage",
    "MaintenanceNode",
    "MaintenanceActor",
    "MaintenanceQuality",
    "MaintenanceSimulation",
]


@dataclass(frozen=True)
class ProbeMessage:
    """One repair exchange message: the sender plus its leaf set."""

    sender: NodeDescriptor
    descriptors: tuple[NodeDescriptor, ...]


class MaintenanceNode:
    """Periodic leaf-set repair running over a node's live tables.

    Parameters
    ----------
    node:
        The bootstrapped node whose tables are being maintained (the
        maintenance layer owns no state of its own beyond suspicion
        counters and tombstones).
    rng:
        Probe-target selection randomness.
    suspicion_threshold:
        Consecutive failed probes before a neighbour is declared dead
        (2 tolerates the paper's 20% loss: false-eviction probability
        per probe pair is p^2 = 4%, and a false eviction heals at the
        suspect's next direct contact).
    tombstone_ttl:
        Cycles an evicted identifier is barred from hearsay
        re-insertion.  Long enough for the neighbourhood to evict the
        corpse independently; direct contact overrides it at any time.
    """

    __slots__ = (
        "node",
        "_rng",
        "_threshold",
        "_suspicions",
        "_tombstones",
        "_ttl",
        "_now",
    )

    def __init__(
        self,
        node: BootstrapNode,
        rng: random.Random,
        suspicion_threshold: int = 2,
        tombstone_ttl: float = 30.0,
    ) -> None:
        if suspicion_threshold < 1:
            raise ValueError(
                f"suspicion_threshold must be >= 1, got {suspicion_threshold}"
            )
        if tombstone_ttl <= 0:
            raise ValueError(
                f"tombstone_ttl must be positive, got {tombstone_ttl}"
            )
        self.node = node
        self._rng = rng
        self._threshold = suspicion_threshold
        self._suspicions: dict[int, int] = {}
        self._tombstones: dict[int, float] = {}
        self._ttl = tombstone_ttl
        self._now = 0.0

    @property
    def node_id(self) -> int:
        """The maintained node's identifier."""
        return self.node.node_id

    def set_time(self, now: float) -> None:
        """Advance time; expires stale tombstones."""
        self._now = now
        if self._tombstones:
            self._tombstones = {
                node_id: expiry
                for node_id, expiry in self._tombstones.items()
                if expiry > now
            }

    def is_tombstoned(self, node_id: int) -> bool:
        """Whether *node_id* is currently barred from hearsay."""
        expiry = self._tombstones.get(node_id)
        return expiry is not None and expiry > self._now

    def select_probe_target(self) -> NodeDescriptor | None:
        """The next probe target.

        Members under suspicion are re-probed with priority (half the
        probes, when any suspect exists) so a corpse is confirmed dead
        within a few periods instead of waiting for uniform selection
        to wander back; the rest of the probes stay uniform over the
        leaf set so every member is eventually checked.
        """
        members = self.node.leaf_set.descriptors()
        if not members:
            fallback = self.node._sampler.sample(1)  # noqa: SLF001
            return fallback[0] if fallback else None
        if self._suspicions and self._rng.random() < 0.5:
            suspects = [
                desc
                for desc in members
                if desc.node_id in self._suspicions
            ]
            if suspects:
                return self._rng.choice(suspects)
        return self._rng.choice(members)

    def probe_payload(self) -> ProbeMessage:
        """What a probe carries: the sender plus its leaf set
        (leaf-of-leaf replenishment material)."""
        return ProbeMessage(
            sender=self.node.descriptor.refreshed(self._now),
            descriptors=tuple(self.node.leaf_set.descriptors()),
        )

    def absorb(self, message: ProbeMessage) -> None:
        """Fold a received message into the tables.

        The *sender* is direct evidence of liveness: its suspicion and
        tombstone are cleared.  Payload entries are hearsay: they feed
        the tables but clear nothing, and tombstoned ids are dropped.
        """
        sender_id = message.sender.node_id
        self._suspicions.pop(sender_id, None)
        self._tombstones.pop(sender_id, None)
        fresh = [
            desc
            for desc in message.descriptors
            if not self.is_tombstoned(desc.node_id)
        ]
        fresh.append(message.sender)
        self.node.leaf_set.update(fresh)
        self.node.prefix_table.update(fresh)

    def record_silence(self, target_id: int) -> bool:
        """One failed probe of *target_id*; evicts at the threshold.

        Returns ``True`` when the target was evicted (and tombstoned).
        """
        count = self._suspicions.get(target_id, 0) + 1
        if count < self._threshold:
            self._suspicions[target_id] = count
            return False
        self._suspicions.pop(target_id, None)
        self.node.leaf_set.remove(target_id)
        self.node.prefix_table.forget(target_id)
        self._tombstones[target_id] = self._now + self._ttl
        return True

    def suspicion_of(self, node_id: int) -> int:
        """Current failed-probe count for *node_id*."""
        return self._suspicions.get(node_id, 0)


class MaintenanceActor(RequestReplyActor):
    """Drives a :class:`MaintenanceNode` through the cycle engine,
    using the engine's timeout notification for failure suspicion."""

    __slots__ = ("maintenance",)

    def __init__(self, maintenance: MaintenanceNode) -> None:
        self.maintenance = maintenance

    def set_time(self, now: float) -> None:
        self.maintenance.node.set_time(now)
        self.maintenance.set_time(now)

    def begin_exchange(self) -> tuple[Hashable, ProbeMessage] | None:
        target = self.maintenance.select_probe_target()
        if target is None:
            return None
        return target.node_id, self.maintenance.probe_payload()

    def answer(self, request: ProbeMessage) -> ProbeMessage:
        reply = self.maintenance.probe_payload()
        self.maintenance.absorb(request)
        return reply

    def complete(self, reply: ProbeMessage) -> None:
        self.maintenance.absorb(reply)

    def on_no_reply(self, target_key: Hashable) -> None:
        self.maintenance.record_silence(target_key)


@dataclass(frozen=True)
class MaintenanceQuality:
    """Leaf-set health of a maintained pool at one instant.

    ``missing`` counts perfect-leaf entries absent from live tables;
    ``stale`` counts held entries that point at departed nodes; both
    are normalised by the perfect-table total.
    """

    cycle: float
    missing: int
    stale: int
    total: int
    population: int

    @property
    def missing_fraction(self) -> float:
        """Share of required leaf entries currently absent."""
        return self.missing / self.total if self.total else 0.0

    @property
    def stale_fraction(self) -> float:
        """Share (of the perfect total) pointing at dead nodes."""
        return self.stale / self.total if self.total else 0.0


class MaintenanceSimulation:
    """Run the maintenance layer over a bootstrapped pool under churn.

    Takes ownership of an existing
    :class:`~repro.simulator.BootstrapSimulation`'s node population and
    registry (the sampling layer keeps working across the hand-off,
    exactly as in the architecture) and drives periodic repair instead
    of bootstrap gossip.

    Parameters
    ----------
    source:
        The bootstrapped pool (need not be perfectly converged).
    seed:
        Master seed for maintenance-layer randomness.
    network:
        Loss model for probe traffic.
    suspicion_threshold:
        Failed probes before eviction.
    probes_per_cycle:
        Probe sub-rounds per maintenance period.  Detection latency of
        a corpse is ``~threshold * leaf_set_size / probes_per_cycle``
        periods, so pools with the paper's c=20 leaf sets want a few
        probes per period (real implementations ping every neighbour
        each period; probes remain heartbeat-cheap).
    """

    def __init__(
        self,
        source,
        *,
        seed: int = 1,
        network=None,
        suspicion_threshold: int = 2,
        probes_per_cycle: int = 4,
    ) -> None:
        from ..simulator.engine import CycleEngine
        from ..simulator.network import RELIABLE
        from ..simulator.random_source import RandomSource

        self._source_rng = RandomSource(seed)
        self.config = source.config
        self._space = source.config.space
        self.registry = source.registry
        self.nodes: dict[int, BootstrapNode] = dict(source.nodes)
        self.engine = CycleEngine(
            network if network is not None else RELIABLE,
            self._source_rng.derive("maintenance-engine"),
        )
        if probes_per_cycle < 1:
            raise ValueError(
                f"probes_per_cycle must be >= 1, got {probes_per_cycle}"
            )
        self._threshold = suspicion_threshold
        self._probes_per_cycle = probes_per_cycle
        self.maintainers: dict[int, MaintenanceNode] = {}
        for node_id, node in self.nodes.items():
            self._attach(node_id, node)
        self._next_join = 0
        self._period = 0

    def _attach(self, node_id: int, node: BootstrapNode) -> None:
        maintainer = MaintenanceNode(
            node,
            self._source_rng.derive(("probe", node_id)),
            suspicion_threshold=self._threshold,
            # Engine time advances once per probe sub-round; keep the
            # tombstone window at ~25 maintenance periods so hearsay
            # cannot recirculate a corpse faster than the slowest
            # neighbour confirms it dead.
            tombstone_ttl=25.0 * self._probes_per_cycle,
        )
        self.maintainers[node_id] = maintainer
        self.engine.add_actor(node_id, MaintenanceActor(maintainer))

    # ------------------------------------------------------------------
    # Membership events
    # ------------------------------------------------------------------

    @property
    def population(self) -> int:
        """Live node count."""
        return len(self.nodes)

    def kill_node(self, node_id: int) -> bool:
        """Crash *node_id* (no goodbye)."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            return False
        self.maintainers.pop(node_id, None)
        self.engine.remove_actor(node_id)
        self.registry.remove(node_id)
        return True

    def spawn_node(self) -> BootstrapNode:
        """A newcomer joins through the sampling layer: it seeds its
        leaf set from random samples and lets the repair exchanges pull
        it into the neighbourhood."""
        from ..core.descriptor import NodeDescriptor
        from ..sampling.oracle import OracleSampler

        rng = self._source_rng.derive(("join", self._next_join))
        self._next_join += 1
        node_id = self._space.random_id(rng)
        while node_id in self.nodes:
            node_id = self._space.random_id(rng)
        descriptor = NodeDescriptor(
            node_id=node_id, address=("join", self._next_join)
        )
        self.registry.add(descriptor)
        sampler = OracleSampler(
            self.registry, node_id, self._source_rng.derive(("s", node_id))
        )
        node = BootstrapNode(
            descriptor,
            self.config,
            sampler,
            self._source_rng.derive(("n", node_id)),
        )
        node.start()
        self.nodes[node_id] = node
        self._attach(node_id, node)
        return node

    # ------------------------------------------------------------------
    # Execution and measurement
    # ------------------------------------------------------------------

    def run_cycle(self, churn_rate: float = 0.0) -> None:
        """One maintenance period: churn events, then the configured
        number of probe sub-rounds."""
        if churn_rate:
            rng = self._source_rng.derive(("churn", self._period))
            expected = self.population * churn_rate
            count = int(expected)
            if rng.random() < expected - count:
                count += 1
            count = min(count, max(0, self.population - 2))
            victims = rng.sample(list(self.nodes), count)
            for victim in victims:
                self.kill_node(victim)
            for _ in range(count):
                self.spawn_node()
        for _ in range(self._probes_per_cycle):
            self.engine.run_cycle()
        self._period += 1

    def measure(self) -> MaintenanceQuality:
        """Leaf-set health against the current live membership."""
        from ..core.reference import ReferenceTables

        reference = ReferenceTables(
            self._space,
            self.nodes.keys(),
            self.config.leaf_set_size,
            self.config.entries_per_slot,
        )
        live = set(self.nodes)
        missing = 0
        stale = 0
        for node_id, node in self.nodes.items():
            held = node.leaf_set.member_ids()
            missing += reference.leaf_missing(node_id, held & live)
            stale += len(held - live)
        total = reference.totals()[0]
        return MaintenanceQuality(
            cycle=float(self._period),
            missing=missing,
            stale=stale,
            total=total,
            population=self.population,
        )

    def run(
        self, cycles: int, *, churn_rate: float = 0.0
    ) -> list[MaintenanceQuality]:
        """Run under churn, measuring every cycle."""
        samples = []
        for _ in range(cycles):
            self.run_cycle(churn_rate)
            samples.append(self.measure())
        return samples
