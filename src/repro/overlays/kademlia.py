"""Kademlia-style substrate consuming bootstrap output.

Kademlia (Maymounkov & Mazieres, IPTPS 2002) organises contacts into
k-buckets by XOR distance; bucket ``i`` holds nodes whose XOR distance
from the owner lies in ``[2^i, 2^{i+1})`` -- equivalently, nodes whose
longest common *bit* prefix with the owner has length
``bits - 1 - i``.  The bootstrap protocol's prefix table is the same
partition at digit granularity, so its entries drop straight into
buckets -- which is precisely the paper's claim that one bootstrap
serves "Pastry, Kademlia, Tapestry and Bamboo".

Two lookup modes are provided:

* greedy hop-by-hop routing (comparable with Pastry's driver), and
* the protocol's native iterative ``FIND_NODE`` with lookahead
  parallelism ``alpha``, simulated over a static snapshot.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping

from ..core.idspace import IDSpace
from ..core.protocol import BootstrapNode
from .routing import RouteResult, RouteStats, route

__all__ = ["KademliaRouter", "KademliaNetwork", "IterativeLookupResult"]


class KademliaRouter:
    """Per-node Kademlia state: k-buckets over XOR distance.

    Parameters
    ----------
    space:
        Identifier geometry.
    node_id:
        Owner identifier.
    bucket_size:
        Kademlia's ``k`` (contacts per bucket).  Note this is *not* the
        bootstrap's ``k`` (entries per prefix slot); a converged prefix
        table with slot capacity ``k_slot`` yields up to
        ``k_slot * (2^b - 1)`` contacts per digit level, spread over
        ``b`` bit-level buckets.
    """

    __slots__ = ("_space", "_node_id", "_bucket_size", "_buckets")

    def __init__(
        self, space: IDSpace, node_id: int, bucket_size: int = 20
    ) -> None:
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
        self._space = space
        self._node_id = node_id
        self._bucket_size = bucket_size
        self._buckets: dict[int, list[int]] = {}

    @classmethod
    def from_bootstrap(
        cls, node: BootstrapNode, bucket_size: int = 20
    ) -> KademliaRouter:
        """Build buckets from a bootstrap node's leaf set and prefix
        table contents."""
        router = cls(node.config.space, node.node_id, bucket_size)
        for desc in node.prefix_table.descriptors():
            router.insert(desc.node_id)
        for desc in node.leaf_set:
            router.insert(desc.node_id)
        return router

    @property
    def node_id(self) -> int:
        """Owner identifier."""
        return self._node_id

    def bucket_index(self, other_id: int) -> int:
        """Index of the bucket *other_id* belongs to:
        ``floor(log2(own XOR other))``."""
        distance = self._node_id ^ other_id
        if distance == 0:
            raise ValueError("a node does not bucket itself")
        return distance.bit_length() - 1

    def insert(self, other_id: int) -> bool:
        """Add a contact if its bucket has room; returns whether added."""
        if other_id == self._node_id:
            return False
        index = self.bucket_index(other_id)
        bucket = self._buckets.setdefault(index, [])
        if other_id in bucket:
            return False
        if len(bucket) >= self._bucket_size:
            return False
        bucket.append(other_id)
        return True

    def contacts(self) -> list[int]:
        """All known contacts."""
        return [c for bucket in self._buckets.values() for c in bucket]

    def bucket_sizes(self) -> dict[int, int]:
        """Occupancy per bucket index (non-empty buckets only)."""
        return {i: len(b) for i, b in self._buckets.items() if b}

    def find_closest(self, target_id: int, count: int) -> list[int]:
        """The *count* known contacts closest to *target_id* by XOR
        (the node-local ``FIND_NODE`` answer)."""
        return heapq.nsmallest(
            count, self.contacts(), key=lambda c: c ^ target_id
        )

    def next_hop(self, target_id: int) -> int | None:
        """Greedy step: the known contact strictly closer to the target
        (XOR) than this node, or ``None`` (local delivery).

        XOR distance strictly decreases hop over hop, so greedy routes
        cannot loop.
        """
        if target_id == self._node_id:
            return None
        own_distance = self._node_id ^ target_id
        best = None
        best_distance = own_distance
        for contact in self.contacts():
            distance = contact ^ target_id
            if distance < best_distance or (
                distance == best_distance and best is not None and contact < best
            ):
                best = contact
                best_distance = distance
        return best


class IterativeLookupResult:
    """Outcome of a native Kademlia iterative lookup."""

    __slots__ = ("closest", "queried", "rounds", "found_target")

    def __init__(
        self,
        closest: list[int],
        queried: set[int],
        rounds: int,
        found_target: bool,
    ) -> None:
        self.closest = closest
        self.queried = queried
        self.rounds = rounds
        self.found_target = found_target

    @property
    def messages(self) -> int:
        """RPC count (one query per contacted node)."""
        return len(self.queried)


class KademliaNetwork:
    """Static Kademlia overlay assembled from routing snapshots."""

    def __init__(
        self, space: IDSpace, routers: Mapping[int, KademliaRouter]
    ) -> None:
        if not routers:
            raise ValueError("a Kademlia network needs at least one node")
        self._space = space
        self._routers = dict(routers)

    @classmethod
    def from_bootstrap_nodes(
        cls, nodes: Iterable[BootstrapNode], bucket_size: int = 20
    ) -> KademliaNetwork:
        """Snapshot a bootstrap population into a Kademlia overlay."""
        routers: dict[int, KademliaRouter] = {}
        space: IDSpace | None = None
        for node in nodes:
            routers[node.node_id] = KademliaRouter.from_bootstrap(
                node, bucket_size
            )
            space = node.config.space
        if space is None:
            raise ValueError("no nodes supplied")
        return cls(space, routers)

    @property
    def size(self) -> int:
        """Number of live nodes."""
        return len(self._routers)

    @property
    def ids(self) -> list[int]:
        """Live identifiers (ascending)."""
        return sorted(self._routers)

    def responsible_for(self, key: int) -> int:
        """The live node with minimal XOR distance to *key*."""
        return min(self._routers, key=lambda n: (n ^ key, n))

    def lookup(self, key: int, start_id: int, max_hops: int = 64) -> RouteResult:
        """Greedy hop-by-hop lookup (comparable with Pastry's driver)."""
        return route(
            self._routers,
            start_id,
            key,
            self.responsible_for(key),
            max_hops=max_hops,
        )

    def lookup_many(
        self, keys: Iterable[int], start_ids: Iterable[int], max_hops: int = 64
    ) -> RouteStats:
        """Aggregate greedy lookups (E10 rows)."""
        stats = RouteStats()
        for key, start_id in zip(keys, start_ids, strict=True):
            stats.record(self.lookup(key, start_id, max_hops=max_hops))
        return stats

    def iterative_find(
        self,
        start_id: int,
        target_id: int,
        alpha: int = 3,
        k: int = 20,
        max_rounds: int = 64,
    ) -> IterativeLookupResult:
        """Native Kademlia iterative node lookup.

        Maintains a shortlist of the ``k`` closest known contacts,
        querying ``alpha`` unqueried ones per round, until the shortlist
        stops improving -- the textbook algorithm, simulated
        synchronously.
        """
        if start_id not in self._routers:
            raise KeyError(f"start node {start_id:#x} not in network")
        shortlist: set[int] = {start_id}
        shortlist.update(
            self._routers[start_id].find_closest(target_id, k)
        )
        queried: set[int] = set()
        rounds = 0
        while rounds < max_rounds:
            candidates = sorted(
                (c for c in shortlist if c not in queried),
                key=lambda c: c ^ target_id,
            )[:alpha]
            if not candidates:
                break
            rounds += 1
            improved = False
            best_before = min(shortlist, key=lambda c: c ^ target_id)
            for contact in candidates:
                queried.add(contact)
                router = self._routers.get(contact)
                if router is None:
                    continue
                for found in router.find_closest(target_id, k):
                    if found not in shortlist:
                        shortlist.add(found)
                        improved = True
            best_after = min(shortlist, key=lambda c: c ^ target_id)
            if not improved and best_after == best_before:
                break
        closest = sorted(shortlist, key=lambda c: c ^ target_id)[:k]
        return IterativeLookupResult(
            closest=closest,
            queried=queried,
            rounds=rounds,
            found_target=self.responsible_for(target_id) in closest,
        )
