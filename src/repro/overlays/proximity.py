"""Proximity-aware routing: the paper's justification for k > 1.

Section 5: "For networks that do not require multiple alternatives of
a given table entry, setting k > 1 is still useful because it allows
for optimizing the routes according to proximity."

This module makes that sentence testable:

* :class:`CoordinateSpace` -- a synthetic network-latency substrate
  (nodes live at seeded points on a 2-D plane; pairwise latency is a
  base cost plus the Euclidean distance), standing in for the
  measured RTTs a deployment would use;
* :class:`ProximityPastryRouter` -- a Pastry router that, among the up
  to ``k`` entries of the matching prefix slot, forwards to the one
  *closest to itself in latency* (Pastry's classic PNS-on-the-fly);
* :func:`route_latency` -- evaluates a route's end-to-end latency, so
  the k=1 / k=3 / proximity-aware comparison (experiment E14) can put
  a number on the claim.

Correctness is untouched: every slot entry shares one more digit with
the key, so any choice makes the same prefix progress; only the
latency of the hop differs.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from ..core.idspace import IDSpace
from ..core.protocol import BootstrapNode
from ..simulator.random_source import RandomSource
from .pastry import PastryNetwork, PastryRouter, _closest

__all__ = ["CoordinateSpace", "ProximityPastryRouter", "route_latency",
           "build_proximity_network"]


class CoordinateSpace:
    """Synthetic geography: each identifier gets a point in the unit
    square; latency = ``base + scale * euclidean distance``.

    Deterministic in (seed, id) so every component sees the same
    geography without global coordination -- the stand-in for a real
    deployment's RTT measurements (see DESIGN.md substitutions).
    """

    def __init__(
        self, seed: int = 1, base: float = 5.0, scale: float = 100.0
    ) -> None:
        if base < 0 or scale < 0:
            raise ValueError("base and scale must be non-negative")
        self._source = RandomSource(seed)
        self._base = base
        self._scale = scale
        self._points: dict[int, tuple[float, float]] = {}

    def coordinates(self, node_id: int) -> tuple[float, float]:
        """The node's (stable) position in the unit square."""
        point = self._points.get(node_id)
        if point is None:
            rng = self._source.derive(("coord", node_id))
            point = (rng.random(), rng.random())
            self._points[node_id] = point
        return point

    def latency(self, a: int, b: int) -> float:
        """One-way latency between two identifiers (symmetric)."""
        if a == b:
            return 0.0
        xa, ya = self.coordinates(a)
        xb, yb = self.coordinates(b)
        return self._base + self._scale * math.hypot(xa - xb, ya - yb)


class ProximityPastryRouter(PastryRouter):
    """Pastry router with proximity-based slot-entry selection.

    Identical to :class:`PastryRouter` except that when the matching
    prefix slot holds several entries (the paper's ``k > 1``), the
    entry nearest to *this node* in latency is chosen.
    """

    __slots__ = ("_proximity",)

    def __init__(self, space, node_id, leaf_ids, table, proximity):
        super().__init__(space, node_id, leaf_ids, table)
        self._proximity = proximity

    @classmethod
    def from_bootstrap_with_proximity(
        cls, node: BootstrapNode, proximity: CoordinateSpace
    ) -> ProximityPastryRouter:
        """Snapshot a bootstrap node with a proximity oracle."""
        table = {
            slot: [d.node_id for d in descriptors]
            for slot, descriptors in node.prefix_table.iter_slots()
        }
        return cls(
            node.config.space,
            node.node_id,
            node.leaf_set.member_ids(),
            table,
            proximity,
        )

    def next_hop(self, target_id: int) -> int | None:
        own = self._node_id
        if target_id == own:
            return None
        space = self._space
        if self.covers(target_id):
            best = _closest(space, target_id, list(self._leaf_ids) + [own])
            return None if best == own else best
        row = space.common_prefix_digits(own, target_id)
        slot = (row, space.digit(target_id, row))
        entries = self._table.get(slot)
        if entries:
            # The proximity optimisation: all entries make the same
            # prefix progress; take the cheapest hop.
            return min(
                entries,
                key=lambda n: (self._proximity.latency(own, n), n),
            )
        own_distance = space.ring_distance(own, target_id)
        best = None
        best_key = None
        for candidate in self._known:
            if space.common_prefix_digits(candidate, target_id) < row:
                continue
            distance = space.ring_distance(candidate, target_id)
            if distance >= own_distance:
                continue
            key = (distance, candidate)
            if best_key is None or key < best_key:
                best = candidate
                best_key = key
        return best


def build_proximity_network(
    nodes: Iterable[BootstrapNode], proximity: CoordinateSpace
) -> PastryNetwork:
    """A :class:`PastryNetwork` whose routers are proximity-aware."""
    routers: dict[int, ProximityPastryRouter] = {}
    space: IDSpace | None = None
    for node in nodes:
        routers[node.node_id] = (
            ProximityPastryRouter.from_bootstrap_with_proximity(
                node, proximity
            )
        )
        space = node.config.space
    if space is None:
        raise ValueError("no nodes supplied")
    return PastryNetwork(space, routers)


def route_latency(
    path: Sequence[int], proximity: CoordinateSpace
) -> float:
    """End-to-end latency of a route (sum of per-hop latencies)."""
    return sum(
        proximity.latency(a, b) for a, b in zip(path, path[1:], strict=False)
    )
