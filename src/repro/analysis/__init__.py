"""Analysis toolkit: series, statistics, ASCII figures, tables.

Everything the benchmark harness needs to turn simulation results into
the paper's figures and into paper-versus-measured tables, with zero
dependencies beyond the standard library.
"""

from .plotting import ascii_linear, ascii_semilog
from .series import Series, format_dat, mean_series, write_dat
from .stats import (
    LinearFit,
    Summary,
    geometric_mean,
    linear_fit,
    percentile,
    summarize,
)
from .tables import render_kv, render_table

__all__ = [
    "ascii_linear",
    "ascii_semilog",
    "Series",
    "format_dat",
    "mean_series",
    "write_dat",
    "LinearFit",
    "Summary",
    "geometric_mean",
    "linear_fit",
    "percentile",
    "summarize",
    "render_kv",
    "render_table",
]
