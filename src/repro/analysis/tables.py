"""Plain-text table rendering for benchmark output.

Every benchmark prints its paper-versus-measured rows through this one
renderer so the harness output stays uniform and greppable.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = ["render_table", "render_kv"]


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Numeric cells are right-aligned, text cells left-aligned; a rule
    separates the header.
    """
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    numeric = [True] * len(headers)
    for row_values in rows:
        for index, value in enumerate(row_values):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                numeric[index] = False

    def fmt_row(values: Sequence[str]) -> str:
        parts = []
        for index, value in enumerate(values):
            if numeric[index]:
                parts.append(value.rjust(widths[index]))
            else:
                parts.append(value.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines) + "\n"


def render_kv(pairs: dict[str, Any], *, title: str = "") -> str:
    """Render a key/value block (experiment headers, summaries)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(
        f"{key.ljust(width)} : {_format_cell(value)}"
        for key, value in pairs.items()
    )
    return "\n".join(lines) + "\n"
