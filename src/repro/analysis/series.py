"""Labelled data series: the unit of figure regeneration.

Every figure in the paper is a set of curves (one per network size) on
a log-scaled y axis.  :class:`Series` is the in-memory form of one
curve; the module also provides merging across repeats (the paper plots
"the results of each individual experiment" -- we support both that and
mean aggregation) and gnuplot-style ``.dat`` export so the figures can
be re-plotted outside Python.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import TextIO

__all__ = ["Series", "mean_series", "write_dat", "format_dat"]


@dataclass(frozen=True)
class Series:
    """One labelled curve: ``(x, y)`` points in x order."""

    label: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def from_pairs(
        cls, label: str, pairs: Iterable[tuple[float, float]]
    ) -> Series:
        """Build a series, sorting by x and rejecting duplicate x
        values (step lookup over a curve with two points at one x
        would silently pick the later one)."""
        points = tuple(sorted(pairs))
        for before, after in zip(points, points[1:], strict=False):
            if before[0] == after[0]:
                raise ValueError(
                    f"series {label!r} has duplicate x value {before[0]!r}"
                )
        return cls(label=label, points=points)

    @property
    def xs(self) -> tuple[float, ...]:
        """The x coordinates."""
        return tuple(p[0] for p in self.points)

    @property
    def ys(self) -> tuple[float, ...]:
        """The y coordinates."""
        return tuple(p[1] for p in self.points)

    def __len__(self) -> int:
        return len(self.points)

    def final_y(self) -> float | None:
        """The last y value, or ``None`` for an empty series."""
        return self.points[-1][1] if self.points else None

    def first_x_below(self, threshold: float) -> float | None:
        """Smallest x whose y is <= *threshold* (convergence-time
        extraction for the scalability analysis)."""
        for x, y in self.points:
            if y <= threshold:
                return x
        return None

    def nonzero(self) -> Series:
        """The series restricted to y > 0 (log-plot safe)."""
        return Series(
            label=self.label,
            points=tuple(p for p in self.points if p[1] > 0),
        )


def _step_value(series: Series, x: float) -> float:
    """The series' value at *x* under step semantics: the y of the
    latest point at or before *x*; clamped to the first/last y outside
    the observed range."""
    xs = [px for px, _ in series.points]
    pos = bisect.bisect_right(xs, x)
    if pos == 0:
        return series.points[0][1]
    return series.points[pos - 1][1]


def mean_series(label: str, series: Sequence[Series]) -> Series:
    """Pointwise mean of several curves.

    Curves may have different lengths (runs converge at different
    cycles); a curve contributes its latest observed value at x's past
    its end -- for missing-entry fractions that value is 0 once
    converged, matching the paper's semantics ("when a curve ends, the
    corresponding tables are perfect").

    Each input curve is walked once against the merged x grid (both
    are sorted), so the merge is O(runs x points) instead of the
    per-lookup bisect rebuild it replaced.
    """
    if not series:
        raise ValueError("mean_series needs at least one series")
    for s in series:
        if not s.points:
            raise ValueError(f"series {s.label!r} is empty")
    xs = sorted({x for s in series for x, _ in s.points})
    totals = [0.0] * len(xs)
    for s in series:
        points = s.points
        count = len(points)
        pos = 0  # points consumed: points[pos-1] is the step value
        for i, x in enumerate(xs):
            while pos < count and points[pos][0] <= x:
                pos += 1
            # Before the first observation, clamp to the first y (the
            # step semantics _step_value documents).
            totals[i] += points[pos - 1][1] if pos else points[0][1]
    scale = 1.0 / len(series)
    return Series(
        label=label,
        points=tuple((x, total * scale) for x, total in zip(xs, totals, strict=True)),
    )


def format_dat(series: Sequence[Series]) -> str:
    """Render curves as a gnuplot-style multi-block ``.dat`` string."""
    blocks: list[str] = []
    for s in series:
        lines = [f"# {s.label}"]
        lines.extend(f"{x:g}\t{y:.10g}" for x, y in s.points)
        blocks.append("\n".join(lines))
    return "\n\n\n".join(blocks) + "\n"


def write_dat(series: Sequence[Series], stream: TextIO) -> None:
    """Write curves to *stream* in gnuplot ``.dat`` format."""
    stream.write(format_dat(series))
