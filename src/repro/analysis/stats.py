"""Small statistics toolkit for the experiment harness.

Only what the analyses actually need: summary statistics, linear
regression (for the log-scaling fit of experiment E5), and geometric
means for ratio aggregation.  Pure Python -- the harness must not
depend on the optional scientific stack for correctness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

__all__ = [
    "Summary",
    "summarize",
    "percentile",
    "LinearFit",
    "linear_fit",
    "geometric_mean",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} "
            f"max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of *values* (population std)."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    ordered = sorted(values)
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        median=percentile(ordered, 50.0, _presorted=True),
    )


def percentile(
    values: Sequence[float], q: float, *, _presorted: bool = False
) -> float:
    """The *q*-th percentile (linear interpolation between ranks)."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = values if _presorted else sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted value at *x*."""
        return self.slope * x + self.intercept


def linear_fit(
    xs: Sequence[float], ys: Sequence[float]
) -> LinearFit:
    """Ordinary least squares on ``(xs, ys)``.

    Used by the scalability analysis: fitting convergence cycles
    against ``log2(N)`` should give a near-perfect line if convergence
    time is logarithmic in network size (the paper's additive-constant
    observation).
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"length mismatch: {len(xs)} xs versus {len(ys)} ys"
        )
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x values identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys, strict=True))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    syy = sum((y - mean_y) ** 2 for y in ys)
    if syy == 0:
        r_squared = 1.0
    else:
        residual = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys, strict=True)
        )
        r_squared = 1.0 - residual / syy
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for averaging ratios such as slowdown factors)."""
    if not values:
        raise ValueError("cannot take a geometric mean of an empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
