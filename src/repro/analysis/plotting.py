"""ASCII rendering of the paper's figures.

The benchmark harness prints every regenerated figure directly to the
terminal, so results are inspectable without a plotting stack.  The
paper's figures are semi-log (log10 y over linear x); the renderer
reproduces that layout with one glyph per curve.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .series import Series

__all__ = ["ascii_semilog", "ascii_linear"]

_GLYPHS = "ox+*#@%&"


def _render(
    series: Sequence[Series],
    *,
    width: int,
    height: int,
    title: str,
    ylabel: str,
    transform,
    format_tick,
) -> str:
    """Shared scatter renderer over a transformed y axis."""
    points = []
    for index, s in enumerate(series):
        usable = s.nonzero() if transform is math.log10 else s
        for x, y in usable.points:
            points.append((x, transform(y), index))
    if not points:
        return f"{title}\n(no plottable points)\n"

    min_x = min(p[0] for p in points)
    max_x = max(p[0] for p in points)
    min_y = min(p[1] for p in points)
    max_y = max(p[1] for p in points)
    span_x = max_x - min_x or 1.0
    span_y = max_y - min_y or 1.0

    grid: list[list[str]] = [
        [" "] * width for _ in range(height)
    ]
    for x, ty, index in points:
        col = int(round((x - min_x) / span_x * (width - 1)))
        row = int(round((max_y - ty) / span_y * (height - 1)))
        grid[row][col] = _GLYPHS[index % len(_GLYPHS)]

    lines = [title]
    for row_index, row in enumerate(grid):
        frac = row_index / (height - 1) if height > 1 else 0.0
        tick_value = max_y - frac * span_y
        lines.append(f"{format_tick(tick_value):>10s} |{''.join(row)}|")
    axis = "-" * width
    lines.append(f"{'':>10s} +{axis}+")
    lines.append(
        f"{'':>10s}  {min_x:<8g}{'cycles':^{max(0, width - 16)}}{max_x:>8g}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} = {s.label}" for i, s in enumerate(series)
    )
    lines.append(f"{'':>10s}  {legend}")
    lines.append(f"{'':>10s}  y: {ylabel}")
    return "\n".join(lines) + "\n"


def ascii_semilog(
    series: Sequence[Series],
    *,
    width: int = 64,
    height: int = 20,
    title: str = "",
    ylabel: str = "proportion (log10)",
) -> str:
    """Render curves with a log10 y axis (the paper's figure style).

    Zero y values (perfect convergence) cannot appear on a log axis;
    like the paper, the curve simply ends there.
    """
    return _render(
        series,
        width=width,
        height=height,
        title=title,
        ylabel=ylabel,
        transform=math.log10,
        format_tick=lambda v: f"1e{v:.1f}",
    )


def ascii_linear(
    series: Sequence[Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    ylabel: str = "value",
) -> str:
    """Render curves with a linear y axis."""
    return _render(
        series,
        width=width,
        height=height,
        title=title,
        ylabel=ylabel,
        transform=float,
        format_tick=lambda v: f"{v:.3g}",
    )
