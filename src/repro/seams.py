"""The seam registry: every ``REPRO_*`` environment variable, declared.

The repo's behaviour seams -- engine backends, result transports,
benchmark scale knobs -- are environment variables so that operators
can flip them without touching call sites.  Before this module each
seam was an ad-hoc ``os.environ`` read scattered across five modules
and the benchmark harness; nothing guaranteed the set of names stayed
documented, validated, or even spelled consistently.

This registry is the single source of truth.  Every seam is declared
once as a :class:`Seam` (name, kind, allowed values, default, one-line
doc), and every read flows through the typed accessors below:

* :func:`get` -- the raw string (or ``None``), for call sites that
  keep their own validation and error wording;
* :func:`enum` -- validated against the declared choices, with the
  declared default;
* :func:`flag` -- presence-style booleans (set-and-non-empty is on);
* :func:`integer` -- integers with a declared minimum.

The static analyzer (:mod:`repro.devtools`) closes the loop: it flags
any ``os.environ`` / ``os.getenv`` read outside this file, any
``REPRO_*`` literal not declared here, and any declared seam missing
from the README catalog.  Adding a seam therefore means adding a
:class:`Seam` entry *and* a README row -- the analyzer fails the build
until both exist.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Seam:
    """One declared environment seam.

    ``kind`` is ``"enum"`` (one of :attr:`choices`), ``"flag"``
    (set-and-non-empty means on), or ``"int"`` (integer, at least
    :attr:`minimum` when one is declared).  ``default`` is the raw
    value an unset variable resolves to (``None`` means the call site
    computes its own fallback, e.g. auto-detection).  ``normalize``
    lowercases/strips the raw value before validation -- the
    convention for operator-facing enums.
    """

    name: str
    kind: str
    doc: str
    default: str | None = None
    choices: tuple[str, ...] = ()
    minimum: int | None = None
    normalize: bool = False
    testing_only: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("enum", "flag", "int"):
            raise ValueError(f"seam kind must be enum|flag|int, got {self.kind!r}")
        if self.kind == "enum" and not self.choices:
            raise ValueError(f"enum seam {self.name} declares no choices")


def _registry(*seams: Seam) -> dict[str, Seam]:
    table: dict[str, Seam] = {}
    for seam in seams:
        if seam.name in table:
            raise ValueError(f"duplicate seam {seam.name}")
        table[seam.name] = seam
    return table


#: Every ``REPRO_*`` environment variable the repo reads, in catalog
#: order (engines, transports, benchmark harness, test fixtures).
SEAMS: dict[str, Seam] = _registry(
    Seam(
        name="REPRO_FAST_BACKEND",
        kind="enum",
        choices=("auto", "numpy", "python"),
        default="auto",
        doc=(
            "Kernel backend of the fast engine: numpy, pure python, or "
            "size-thresholded auto-selection (captured once at import)."
        ),
    ),
    Seam(
        name="REPRO_VECTOR_BACKEND",
        kind="enum",
        choices=("auto", "numpy", "python"),
        default="auto",
        doc=(
            "Draw-source backend of the vector engine: one numpy "
            "Generator per simulation, or the random.Random fallback."
        ),
    ),
    Seam(
        name="REPRO_VECTOR_ABSORB",
        kind="enum",
        choices=("batch", "single"),
        default="batch",
        normalize=True,
        doc=(
            "Vector-engine absorb dispatch: one segmented slab pass per "
            "delivery wave, or the scalar per-exchange path "
            "(bit-identical; the seam keeps the equivalence testable)."
        ),
    ),
    Seam(
        name="REPRO_VECTOR_STATE",
        kind="enum",
        choices=("arena", "pernode"),
        default="arena",
        normalize=True,
        doc=(
            "Vector-engine state layout on the numpy leg: one "
            "pool-resident structure-of-arrays arena for the whole "
            "population, or the per-node array objects (bit-identical; "
            "the no-numpy fallback leg ignores the layout and keeps "
            "its set state either way)."
        ),
    ),
    Seam(
        name="REPRO_COLUMNS_BACKEND",
        kind="enum",
        choices=("numpy", "python"),
        default=None,
        doc=(
            "Columnar-transport buffer backend: numpy float64 arrays or "
            "stdlib array('d'); unset auto-selects numpy when installed."
        ),
    ),
    Seam(
        name="REPRO_TRANSPORT",
        kind="enum",
        choices=("pickle", "shm"),
        default="pickle",
        normalize=True,
        doc=(
            "Result transport of pooled sweeps: pickled RunColumns, or "
            "curve buffers through a shared-memory ring with only "
            "descriptors pickled."
        ),
    ),
    Seam(
        name="REPRO_SHM_BLOCKS",
        kind="int",
        minimum=1,
        default=None,
        doc=(
            "Shared-memory ring capacity in blocks; unset sizes the "
            "ring as max(2 x workers, 4)."
        ),
    ),
    Seam(
        name="REPRO_SHM_TEST_CRASH_BYTES",
        kind="int",
        minimum=0,
        default=None,
        testing_only=True,
        doc=(
            "Test hook: SIGKILL the worker after writing this many "
            "curve bytes into its ring slot (simulates preemption "
            "mid-write)."
        ),
    ),
    Seam(
        name="REPRO_BENCH_WORKERS",
        kind="int",
        minimum=1,
        default="1",
        doc=(
            "Worker processes for benchmark sweeps; results are "
            "byte-identical for any value."
        ),
    ),
    Seam(
        name="REPRO_BENCH_ENGINE",
        kind="enum",
        choices=("reference", "fast", "vector"),
        default="reference",
        doc=(
            "Cycle engine for benchmark sweeps (reference/fast are "
            "trajectory-identical; vector is statistically equivalent)."
        ),
    ),
    Seam(
        name="REPRO_BENCH_FULL",
        kind="flag",
        doc=(
            "Add the 2^14-node size -- the paper's smallest -- to the "
            "benchmark sweeps (minutes instead of seconds)."
        ),
    ),
    Seam(
        name="REPRO_BENCH_PAPER",
        kind="flag",
        doc=(
            "Run the paper's full sweep (2^14, 2^16, 2^18); hours in "
            "pure Python, provided for completeness."
        ),
    ),
    Seam(
        name="REPRO_BENCH_PAPER_STRETCH",
        kind="flag",
        doc=(
            "Add the recorded 2^20 stretch cell to the paper-scale "
            "benchmark (one replica on the vector engine; implies a "
            "multi-gigabyte arena)."
        ),
    ),
    Seam(
        name="REPRO_BENCH_VECTOR_SMOKE",
        kind="flag",
        doc=(
            "Shrink the vector-engine shoot-out to one small size with "
            "the fallback speedup floor (the no-numpy CI leg)."
        ),
    ),
    Seam(
        name="REPRO_CHAOS_SMOKE",
        kind="flag",
        doc=(
            "Shrink the chaos soak benchmark to smoke-sized clusters "
            "(the CI chaos leg); scenarios keep their event timelines."
        ),
    ),
    Seam(
        name="REPRO_CHAOS_SEED",
        kind="int",
        minimum=0,
        default=None,
        doc=(
            "Override every chaos scenario's seed (same schedule + "
            "seed => identical fault sequence and message counters)."
        ),
    ),
    Seam(
        name="REPRO_CHAOS_BUDGET",
        kind="int",
        minimum=1,
        default=None,
        doc=(
            "Override the virtual-seconds convergence budget of chaos "
            "runs (soak longer than the registered scenarios do)."
        ),
    ),
    Seam(
        name="REPRO_REGEN_GOLDEN",
        kind="flag",
        testing_only=True,
        doc=(
            "Regenerate the golden trajectory fixtures under "
            "tests/golden/ instead of comparing against them."
        ),
    ),
)


def get(name: str) -> str | None:
    """The raw value of a *declared* seam (``None`` when unset).

    Every environment read in the repo funnels through this line; the
    static analyzer rejects any other ``os.environ`` access.  The
    seam's ``normalize`` declaration is applied here so call sites
    that keep their own validation still see canonical values.
    """
    seam = SEAMS.get(name)
    if seam is None:
        raise KeyError(f"{name} is not a declared seam (see repro.seams.SEAMS)")
    value = os.environ.get(name)  # repro-check: ignore[env-read] -- the registry's single read site
    if value is not None and seam.normalize:
        value = value.strip().lower()
    return value


def enum(name: str, override: str | None = None) -> str | None:
    """A validated enum seam: *override* wins, else the environment,
    else the declared default (which may be ``None`` for auto seams).

    Raises ``ValueError`` naming the seam and its choices on an
    unrecognised value.
    """
    seam = SEAMS[name]
    value = override if override is not None else get(name)
    if value is None or value == "":
        return seam.default
    if value not in seam.choices:
        raise ValueError(
            f"{name} must be one of {'|'.join(seam.choices)}, got {value!r}"
        )
    return value


def flag(name: str) -> bool:
    """A presence flag: set and non-empty means on."""
    if SEAMS[name].kind != "flag":
        raise ValueError(f"{name} is not a flag seam")
    return bool(get(name))


def integer(name: str) -> int | None:
    """An integer seam, validated against the declared minimum.

    Returns ``None`` when the variable is unset (or set to the empty
    string) and no default is declared -- auto seams compute their own
    fallback at the call site.
    """
    seam = SEAMS[name]
    if seam.kind != "int":
        raise ValueError(f"{name} is not an integer seam")
    raw = get(name)
    if raw is None or raw == "":
        raw = seam.default
        if raw is None:
            return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc
    if seam.minimum is not None and value < seam.minimum:
        raise ValueError(f"{name} must be >= {seam.minimum}, got {value}")
    return value


def catalog() -> tuple[Seam, ...]:
    """Every declared seam, in registry (catalog) order."""
    return tuple(SEAMS.values())
