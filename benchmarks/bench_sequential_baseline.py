"""Experiment E13 -- massive joins: sequential joins vs gossip bootstrap.

The paper's opening motivation: "massive joins to a large overlay
network are not supported by known protocols very well".  The classic
alternative to a bootstrap service is admitting nodes one at a time
through the overlay's join protocol.  This benchmark builds the same
overlay both ways and compares:

* serial depth (join operations are inherently sequential: each needs
  the previous overlay state; gossip cycles run network-wide in
  parallel);
* total message cost;
* resulting table quality (both must be perfect).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.baselines import SequentialJoinNetwork
from repro.simulator import BootstrapSimulation

SIZES = [256, 512, 1024]


def run_comparison():
    rows = []
    for size in SIZES:
        joins = SequentialJoinNetwork(seed=1100)
        report = joins.build(size)
        join_deficit = joins.leaf_set_deficit()

        gossip = BootstrapSimulation(size, seed=1100).run(60)
        assert gossip.converged
        gossip_messages = gossip.transport["sent"]

        rows.append(
            [
                size,
                report.serial_steps,
                gossip.converged_at,
                report.total_messages,
                gossip_messages,
                join_deficit,
            ]
        )
    return rows


@pytest.mark.benchmark(group="sequential-baseline")
def test_sequential_join_baseline(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    for size, serial_steps, gossip_cycles, join_msgs, gossip_msgs, deficit in rows:
        # Serial depth: N versus O(log N) -- the headline gap.
        assert serial_steps == size
        assert gossip_cycles < size / 8
        # Both end perfect (the join protocol transfers correct state).
        assert deficit == 0
    # The serial-depth gap widens with size; message totals are the
    # price the gossip pays for parallelism (O(N log N) vs O(N) -- but
    # wall-clock O(log N) vs O(N)).
    gap_small = rows[0][1] / rows[0][2]
    gap_large = rows[-1][1] / rows[-1][2]
    assert gap_large > gap_small

    from common import emit

    emit(
        "sequential_baseline",
        render_table(
            [
                "N",
                "serial steps (joins)",
                "parallel cycles (gossip)",
                "messages (joins)",
                "messages (gossip)",
                "join leaf deficit",
            ],
            rows,
            title=(
                "building one overlay: sequential Pastry joins vs the "
                "bootstrapping service"
            ),
        ),
    )
