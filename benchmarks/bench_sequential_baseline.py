"""Experiment E13 -- massive joins: sequential joins vs gossip bootstrap.

The paper's opening motivation: "massive joins to a large overlay
network are not supported by known protocols very well".  The classic
alternative to a bootstrap service is admitting nodes one at a time
through the overlay's join protocol.  This benchmark builds the same
overlay both ways -- the gossip arm is the ``massive_join`` registry
scenario (bootstrapping the whole pool at once), the baseline arm the
sequential-join network -- and compares:

* serial depth (join operations are inherently sequential: each needs
  the previous overlay state; gossip cycles run network-wide in
  parallel);
* total message cost;
* resulting table quality (both must be perfect).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.baselines import SequentialJoinNetwork

from common import bench_scenario, emit, run_scenario_bench


def run_comparison():
    """The gossip arm as one scenario sweep, the join baseline per
    size (inherently sequential, the point of the comparison)."""
    gossip = run_scenario_bench(bench_scenario("massive_join"))
    rows = []
    for cell in gossip.aggregate.cells:
        assert cell.all_converged
        joins = SequentialJoinNetwork(seed=1100)
        report = joins.build(cell.size)
        join_deficit = joins.leaf_set_deficit()
        rows.append(
            [
                cell.size,
                report.serial_steps,
                cell.cycles.mean,
                report.total_messages,
                dict(cell.transport)["sent"],
                join_deficit,
            ]
        )
    return rows


@pytest.mark.benchmark(group="sequential-baseline")
def test_sequential_join_baseline(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    for size, serial_steps, gossip_cycles, _join_msgs, _gossip_msgs, deficit in rows:
        # Serial depth: N versus O(log N) -- the headline gap.
        assert serial_steps == size
        assert gossip_cycles < size / 8
        # Both end perfect (the join protocol transfers correct state).
        assert deficit == 0
    # The serial-depth gap widens with size; message totals are the
    # price the gossip pays for parallelism (O(N log N) vs O(N) -- but
    # wall-clock O(log N) vs O(N)).
    gap_small = rows[0][1] / rows[0][2]
    gap_large = rows[-1][1] / rows[-1][2]
    assert gap_large > gap_small

    emit(
        "sequential_baseline",
        render_table(
            [
                "N",
                "serial steps (joins)",
                "parallel cycles (gossip)",
                "messages (joins)",
                "messages (gossip)",
                "join leaf deficit",
            ],
            rows,
            title=(
                "building one overlay: sequential Pastry joins vs the "
                "bootstrapping service"
            ),
        ),
    )
