"""Experiment E12 -- the prior-work comparator: T-Chord bootstrap.

The paper positions itself against "Chord on demand" (reference [9]):
same architecture, different substrate (distance-defined fingers
instead of prefix tables).  This benchmark runs our T-Chord
implementation alongside the prefix-table bootstrap on identical pool
sizes and reports:

* convergence cycles of each (both logarithmic; the paper's protocol
  targets a *harder* structure in similar time);
* routing quality of the two bootstrapped substrates.
"""

from __future__ import annotations

import pytest

from repro.analysis import Series, ascii_semilog, render_table
from repro.overlays import ChordBootstrapSimulation, PastryNetwork
from repro.simulator import BootstrapSimulation, RandomSource

SIZE = 512


def run_comparison():
    prefix_sim = BootstrapSimulation(SIZE, seed=1000)
    prefix_result = prefix_sim.run(60)

    chord_sim = ChordBootstrapSimulation(SIZE, seed=1000)
    chord_samples = chord_sim.run(80)

    # Route over both bootstrapped substrates.
    rng = RandomSource(1001).derive("keys")
    space = prefix_sim.config.space
    prefix_ids = list(prefix_sim.nodes)
    keys = [space.random_id(rng) for _ in range(400)]
    pastry = PastryNetwork.from_bootstrap_nodes(prefix_sim.nodes.values())
    pastry_stats = pastry.lookup_many(
        keys, [rng.choice(prefix_ids) for _ in keys]
    )
    chord_net = chord_sim.to_network()
    chord_ids = list(chord_sim.nodes)
    chord_stats = chord_net.lookup_many(
        keys, [rng.choice(chord_ids) for _ in keys]
    )
    return prefix_result, chord_samples, pastry_stats, chord_stats


@pytest.mark.benchmark(group="chord")
def test_tchord_comparator(benchmark):
    prefix_result, chord_samples, pastry_stats, chord_stats = (
        benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    )

    assert prefix_result.converged
    # T-Chord's fingers have a slow tail: a ring-isolated optimal
    # finger is only discoverable through random samples, so a run can
    # end with a handful of near-optimal (not optimal) fingers.  Chord
    # fixes those with one stabilisation round; the bootstrap claim is
    # the >=99.9% bulk.  The ring itself must be perfect.
    final = chord_samples[-1]
    assert final.missing_ring == 0
    assert final.finger_fraction <= 5e-4, (
        f"T-Chord finger tail too fat: {final.finger_fraction}"
    )
    assert pastry_stats.success_rate == 1.0
    assert chord_stats.success_rate == 1.0
    # Prefix routing beats Chord's ring-halving on hops (b=4 digits).
    assert pastry_stats.mean_hops <= chord_stats.mean_hops

    finger_curve = Series.from_pairs(
        "T-Chord wrong fingers",
        [(s.cycle, s.finger_fraction) for s in chord_samples],
    )
    prefix_curve = Series.from_pairs(
        "prefix-table missing",
        prefix_result.prefix_series(),
    )

    from common import emit

    emit(
        "chord",
        "\n".join(
            [
                ascii_semilog(
                    [finger_curve.nonzero(), prefix_curve.nonzero()],
                    title=f"bootstrap convergence, N={SIZE}",
                    ylabel="proportion of missing/incorrect entries",
                ),
                render_table(
                    [
                        "bootstrap",
                        "cycles",
                        "final finger/prefix frac",
                        "route success",
                        "mean hops",
                    ],
                    [
                        [
                            "prefix tables (this paper)",
                            prefix_result.converged_at,
                            0.0,
                            pastry_stats.success_rate,
                            pastry_stats.mean_hops,
                        ],
                        [
                            "T-Chord (prior work, ref [9])",
                            chord_samples[-1].cycle,
                            chord_samples[-1].finger_fraction,
                            chord_stats.success_rate,
                            chord_stats.mean_hops,
                        ],
                    ],
                    title="prefix-table bootstrap vs Chord-on-demand",
                ),
            ]
        ),
        [finger_curve, prefix_curve],
    )
