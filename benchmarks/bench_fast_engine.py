"""Engine shoot-out: the array-backed kernel versus the reference.

Runs the ``engines_shootout`` registry scenario pinned to the
reference and fast engines -- the engine axis puts both contestants on
the *same seeded experiments* -- verifies the trajectories are
**bit-identical** (the differential contract pinned by
``tests/test_engine_fast.py``), and reports the throughput ratio from
the per-shard wall times the runner records.  The acceptance target
for the fast engine is >= 2x cycles/sec at the default benchmark
sizes; the artefact records the measured ratio so regressions show up
as diffs of ``results/fast_engine.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.scenarios import run_scenario

from common import bench_scenario, bench_sizes, emit, size_label

from repro.engine_fast import kernels

#: Wall-clock noise floors per kernel backend, well under the measured
#: margins (numpy: ~2.3x at the default sizes; pure-Python fallback:
#: ~1.4x) so machine load cannot spuriously fail the gate.
MIN_SPEEDUP = {"numpy": 1.8, "python": 1.15}


def _shootout_scenario(sizes=None):
    return bench_scenario(
        "engines_shootout",
        sizes=tuple(sizes if sizes is not None else bench_sizes()),
        replicas=1,
        engines=("reference", "fast"),
    )


def _timed_pairs(outcome):
    """Per-size (reference, fast) column pairs of one scenario run.

    Timing stays in-process (``workers=1``): both engines of a size
    run back-to-back on the same core, so shared-machine load cancels
    out of the ratio.
    """
    pairs = {}
    for size in outcome.spec.grid.sizes:
        ref = outcome.columns_for(size=size, engine="reference")[0]
        fast = outcome.columns_for(size=size, engine="fast")[0]
        pairs[size] = (ref, fast)
    return pairs


def run_shootout():
    floor = MIN_SPEEDUP[kernels.backend()]
    pairs = _timed_pairs(run_scenario(_shootout_scenario(), workers=1))
    rows = []
    ratios = {}
    for size, (ref, fast) in pairs.items():
        ratio = ref.wall_seconds / fast.wall_seconds
        if ratio < floor:
            # One retry, keeping the better pair: a single-shot wall
            # ratio absorbs GC pauses and scheduler stalls; a genuine
            # regression fails both attempts.  Only the dipping size
            # is re-timed (a one-size scenario variant), not the whole
            # grid.
            retry = _timed_pairs(
                run_scenario(_shootout_scenario(sizes=(size,)), workers=1)
            )[size]
            retry_ratio = retry[0].wall_seconds / retry[1].wall_seconds
            if retry_ratio > ratio:
                ref, fast = retry
                ratio = retry_ratio
        # The differential contract: identical trajectories, observed
        # through the columnar transport (curves, counters, endpoint).
        assert list(fast.cycles) == list(ref.cycles)
        assert list(fast.leaf) == list(ref.leaf), (
            f"{size_label(size)}: fast engine diverged from the reference"
        )
        assert list(fast.prefix) == list(ref.prefix)
        assert fast.transport == ref.transport
        assert fast.converged_at == ref.converged_at
        ratios[size] = ratio
        cycles = ref.cycles_run
        rows.append(
            [
                size_label(size),
                cycles,
                f"{cycles / ref.wall_seconds:.2f}",
                f"{cycles / fast.wall_seconds:.2f}",
                f"{ratio:.2f}x",
            ]
        )
    return rows, ratios


@pytest.mark.benchmark(group="fast_engine")
def test_fast_engine_speedup(benchmark):
    rows, ratios = benchmark.pedantic(run_shootout, rounds=1, iterations=1)

    floor = MIN_SPEEDUP[kernels.backend()]
    for size, ratio in ratios.items():
        assert ratio >= floor, (
            f"{size_label(size)}: fast engine only {ratio:.2f}x the "
            f"reference (floor {floor}x on the {kernels.backend()} backend)"
        )

    text = "\n".join(
        [
            render_table(
                [
                    "size",
                    "cycles",
                    "reference cyc/s",
                    "fast cyc/s",
                    "speedup",
                ],
                rows,
                title=(
                    "engine shoot-out: identical trajectories, "
                    "array-backed kernel throughput (target >= 2x)"
                ),
            ),
        ]
    )
    emit("fast_engine", text, engine="reference+fast")
