"""Engine shoot-out: the array-backed kernel versus the reference.

Runs the same seeded experiment on both cycle engines, verifies the
trajectories are **bit-identical** (the differential contract pinned by
``tests/test_engine_fast.py``), and reports the throughput ratio.  The
acceptance target for the fast engine is >= 2x cycles/sec at the
default benchmark sizes; the artefact records the measured ratio so
regressions show up as diffs of ``results/fast_engine.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.runtime import RunSpec, SweepRunner
from repro.simulator import ExperimentSpec

from common import bench_sizes, emit, size_label

from repro.engine_fast import kernels

#: Wall-clock noise floors per kernel backend, well under the measured
#: margins (numpy: ~2.3x at the default sizes; pure-Python fallback:
#: ~1.4x) so machine load cannot spuriously fail the gate.
MIN_SPEEDUP = {"numpy": 1.8, "python": 1.15}


def _time_pair(runner, spec):
    """One timed run per engine; returns (timings, results)."""
    timings = {}
    results = {}
    for engine in ("reference", "fast"):
        start = time.perf_counter()
        outcome = runner.run([RunSpec(experiment=spec.with_engine(engine))])[0]
        timings[engine] = time.perf_counter() - start
        results[engine] = outcome.result
    return timings, results


def run_shootout():
    floor = MIN_SPEEDUP[kernels.backend()]
    rows = []
    ratios = {}
    runner = SweepRunner(workers=1)
    for size in bench_sizes():
        spec = ExperimentSpec(
            size=size, seed=100 + size, max_cycles=60, label=size_label(size)
        )
        timings, results = _time_pair(runner, spec)
        ratio = timings["reference"] / timings["fast"]
        if ratio < floor:
            # One retry, keeping the better pair: a single-shot wall
            # ratio absorbs GC pauses and scheduler stalls; a genuine
            # regression fails both attempts.
            retry_timings, _ = _time_pair(runner, spec)
            if retry_timings["reference"] / retry_timings["fast"] > ratio:
                timings = retry_timings
                ratio = timings["reference"] / timings["fast"]
        ref, fast = results["reference"], results["fast"]
        assert fast.samples == ref.samples, (
            f"{size_label(size)}: fast engine diverged from the reference"
        )
        assert fast.transport == ref.transport
        ratios[size] = ratio
        cycles = ref.cycles_run
        rows.append(
            [
                size_label(size),
                cycles,
                f"{cycles / timings['reference']:.2f}",
                f"{cycles / timings['fast']:.2f}",
                f"{ratio:.2f}x",
            ]
        )
    return rows, ratios


@pytest.mark.benchmark(group="fast_engine")
def test_fast_engine_speedup(benchmark):
    rows, ratios = benchmark.pedantic(run_shootout, rounds=1, iterations=1)

    floor = MIN_SPEEDUP[kernels.backend()]
    for size, ratio in ratios.items():
        assert ratio >= floor, (
            f"{size_label(size)}: fast engine only {ratio:.2f}x the "
            f"reference (floor {floor}x on the {kernels.backend()} backend)"
        )

    text = "\n".join(
        [
            render_table(
                [
                    "size",
                    "cycles",
                    "reference cyc/s",
                    "fast cyc/s",
                    "speedup",
                ],
                rows,
                title=(
                    "engine shoot-out: identical trajectories, "
                    "array-backed kernel throughput (target >= 2x)"
                ),
            ),
        ]
    )
    emit("fast_engine", text, engine="reference+fast")
