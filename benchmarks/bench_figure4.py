"""Experiments E3/E4 -- Figure 4: convergence under 20% message loss.

Regenerates both panels of Figure 4: the same curves as Figure 3 but
with every message dropped with probability 0.2 ("unrealistically
large" by design), including the paper's request/answer coupling (a
lost request suppresses the answer).

Checked shape claims:

* every run still converges to perfect tables;
* "the behavior of the protocol is very similar to the case when there
  are no failures, only convergence is slowed down proportionally" --
  the slowdown factor stays in a modest band around
  1/(1 - 0.28) ~ 1.4;
* measured overall message loss matches the paper's 28% arithmetic.
"""

from __future__ import annotations

import pytest

from repro.analysis import ascii_semilog, mean_series, render_table
from repro.runtime import expand_repeats
from repro.simulator import ExperimentSpec, PAPER_LOSSY

from common import (
    bench_engine,
    bench_sizes,
    emit,
    leaf_series,
    prefix_series,
    repeats_for,
    run_specs,
    size_label,
    throughput_lines,
)


def run_figure4():
    """Both arms (lossy and reliable) of every size go to the runner
    in one batch, so parallel runs keep all workers busy."""
    specs = []
    for size in bench_sizes():
        label = size_label(size)
        repeats = repeats_for(size)
        specs.extend(
            expand_repeats(
                ExperimentSpec(
                    size=size,
                    seed=200 + size,
                    network=PAPER_LOSSY,
                    max_cycles=90,
                    label=label,
                    engine=bench_engine(),
                ),
                repeats,
                first_shard=len(specs),
            )
        )
        specs.extend(
            expand_repeats(
                ExperimentSpec(
                    size=size,
                    seed=200 + size,
                    max_cycles=60,
                    label=label,
                    engine=bench_engine(),
                ),
                repeats,
                first_shard=len(specs),
            )
        )
    runs = run_specs(specs)

    data = {}
    leaf_curves = []
    prefix_curves = []
    for size in bench_sizes():
        label = size_label(size)
        lossy = [
            o.result
            for o in runs
            if o.spec.size == size and o.spec.drop > 0.0
        ]
        reliable = [
            o.result
            for o in runs
            if o.spec.size == size and o.spec.drop == 0.0
        ]
        data[size] = (lossy, reliable)
        leaf_curves.append(
            mean_series(label, [leaf_series(r, label) for r in lossy])
        )
        prefix_curves.append(
            mean_series(label, [prefix_series(r, label) for r in lossy])
        )
    return data, leaf_curves, prefix_curves, runs


@pytest.mark.benchmark(group="figure4")
def test_figure4_message_loss(benchmark):
    data, leaf_curves, prefix_curves, runs = benchmark.pedantic(
        run_figure4, rounds=1, iterations=1
    )

    rows = []
    for size, (lossy, reliable) in data.items():
        for result in lossy:
            assert result.converged, (
                f"{size_label(size)} failed to converge under 20% loss"
            )
            loss = result.transport["overall_loss_fraction"]
            assert loss == pytest.approx(0.28, abs=0.03), (
                f"overall loss {loss:.3f} deviates from the paper's 28%"
            )
        lossy_mean = sum(r.converged_at for r in lossy) / len(lossy)
        reliable_mean = sum(r.converged_at for r in reliable) / len(reliable)
        slowdown = lossy_mean / reliable_mean
        # Proportional slowdown, not collapse: the paper's Figure 4
        # spans ~1.3-2x more cycles than Figure 3.
        assert 1.0 <= slowdown <= 2.5, f"slowdown {slowdown:.2f} out of band"
        rows.append(
            [
                size_label(size),
                reliable_mean,
                lossy_mean,
                slowdown,
                lossy[0].transport["overall_loss_fraction"],
            ]
        )

    text = "\n".join(
        [
            "Figure 4 (top): missing leaf set entries, 20% drop",
            ascii_semilog(
                [c.nonzero() for c in leaf_curves],
                title="20% uniform message loss",
            ),
            "Figure 4 (bottom): missing prefix table entries, 20% drop",
            ascii_semilog([c.nonzero() for c in prefix_curves], title=""),
            render_table(
                [
                    "size",
                    "cycles (reliable)",
                    "cycles (20% drop)",
                    "slowdown",
                    "overall loss",
                ],
                rows,
                title=(
                    "paper: convergence 'slowed down proportionally'; "
                    "expected overall loss 28%"
                ),
            ),
            throughput_lines(runs),
        ]
    )
    emit("figure4", text, leaf_curves + prefix_curves, engine=bench_engine())
