"""Experiments E3/E4 -- Figure 4: convergence under 20% message loss.

Regenerates both panels of Figure 4 from the ``figure4`` registry
scenario: the same curves as Figure 3 but with every message dropped
with probability 0.2 ("unrealistically large" by design), including
the paper's request/answer coupling (a lost request suppresses the
answer).  The scenario's drop axis carries both arms -- lossy and
reliable -- so the slowdown comparison is one grid.

Checked shape claims:

* every run still converges to perfect tables;
* "the behavior of the protocol is very similar to the case when there
  are no failures, only convergence is slowed down proportionally" --
  the slowdown factor stays in a modest band around
  1/(1 - 0.28) ~ 1.4;
* measured overall message loss matches the paper's 28% arithmetic.
"""

from __future__ import annotations

import pytest

from repro.analysis import ascii_semilog, render_table

from common import (
    bench_replicas,
    bench_scenario,
    bench_sizes,
    emit,
    run_scenario_bench,
    size_label,
    throughput_lines,
)

DROP = 0.2


def run_figure4():
    """Both arms (lossy and reliable) of every size go to the runner
    in one batch, so parallel runs keep all workers busy."""
    return run_scenario_bench(
        bench_scenario(
            "figure4",
            sizes=tuple(bench_sizes()),
            replicas=bench_replicas(),
        )
    )


@pytest.mark.benchmark(group="figure4")
def test_figure4_message_loss(benchmark):
    outcome = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    aggregate = outcome.aggregate

    rows = []
    leaf_curves = []
    prefix_curves = []
    for size in bench_sizes():
        lossy = aggregate.cell(size, DROP)
        reliable = aggregate.cell(size, 0.0)
        assert lossy.all_converged, (
            f"{size_label(size)} failed to converge under 20% loss"
        )
        loss = lossy.overall_loss_fraction
        assert loss == pytest.approx(0.28, abs=0.03), (
            f"overall loss {loss:.3f} deviates from the paper's 28%"
        )
        slowdown = lossy.cycles.mean / reliable.cycles.mean
        # Proportional slowdown, not collapse: the paper's Figure 4
        # spans ~1.3-2x more cycles than Figure 3.
        assert 1.0 <= slowdown <= 2.5, f"slowdown {slowdown:.2f} out of band"
        rows.append(
            [
                size_label(size),
                reliable.cycles.mean,
                lossy.cycles.mean,
                slowdown,
                loss,
            ]
        )
        leaf_curves.append(lossy.mean_leaf)
        prefix_curves.append(lossy.mean_prefix)

    text = "\n".join(
        [
            "Figure 4 (top): missing leaf set entries, 20% drop",
            ascii_semilog(
                [c.nonzero() for c in leaf_curves],
                title="20% uniform message loss",
            ),
            "Figure 4 (bottom): missing prefix table entries, 20% drop",
            ascii_semilog([c.nonzero() for c in prefix_curves], title=""),
            render_table(
                [
                    "size",
                    "cycles (reliable)",
                    "cycles (20% drop)",
                    "slowdown",
                    "overall loss",
                ],
                rows,
                title=(
                    "paper: convergence 'slowed down proportionally'; "
                    "expected overall loss 28%"
                ),
            ),
            throughput_lines(outcome.columns),
        ]
    )
    emit(
        "figure4",
        text,
        leaf_curves + prefix_curves,
        engine=outcome.columns[0].engine,
    )
