"""Transport-layer gate: columnar versus object result transport.

Process-level parallelism pays for every shard twice: once to simulate
it and once to pickle its outcome across the pool boundary.  With the
vectorised engines the simulation side has collapsed, so at paper
sizes the sample-list-laden :class:`RunResult` objects dominate -- the
transport-bound regime the online-bootstrapping literature reports
(Qin et al., *Efficient Online Bootstrapping for Large Scale
Learning*).  The columnar :class:`RunColumns` wire form replaces the
per-cycle sample objects with flat float64 buffers.

This benchmark runs the ``figure3`` grid once, serialises every
shard's outcome in both wire forms with the pickle protocol the
process pool actually uses, and gates:

* **bytes per run**: columnar must be >= 3x smaller (the acceptance
  target);
* **merge equivalence**: both forms must fold to byte-identical
  ``SweepAggregate.to_dict()`` output;

and reports the round-trip wall-clock (serialise + deserialise +
merge) for both forms alongside.
"""

from __future__ import annotations

import json
import pickle
import time

import pytest

from repro.analysis import render_table
from repro.runtime import (
    RunColumns,
    SweepRunner,
    merge_columns,
    merge_results,
)

from common import bench_replicas, bench_scenario, bench_sizes, emit

#: Acceptance target: pickled bytes-per-run ratio (object / columnar).
MIN_BYTES_RATIO = 3.0


def _round_trip(payloads, merge):
    """Wall seconds to deserialise *payloads* and merge the outcomes."""
    start = time.perf_counter()
    outcomes = [pickle.loads(blob) for blob in payloads]
    aggregate = merge(outcomes)
    return time.perf_counter() - start, aggregate


def run_transport_comparison():
    """Simulate the figure3 grid once; weigh both wire forms."""
    grid = bench_scenario(
        "figure3",
        sizes=tuple(bench_sizes()),
        replicas=bench_replicas(),
    ).grid
    # One sequential execution; the rich results are the ground truth
    # and the columns are derived from them, exactly as a worker would.
    results = SweepRunner(workers=1).run_grid(grid)
    columns = [RunColumns.from_run_result(run) for run in results]

    object_blobs = [pickle.dumps(run) for run in results]
    column_blobs = [pickle.dumps(run) for run in columns]
    object_seconds, object_aggregate = _round_trip(
        object_blobs, merge_results
    )
    column_seconds, column_aggregate = _round_trip(
        column_blobs, merge_columns
    )
    return {
        "runs": len(results),
        "object_bytes": sum(len(blob) for blob in object_blobs),
        "column_bytes": sum(len(blob) for blob in column_blobs),
        "object_seconds": object_seconds,
        "column_seconds": column_seconds,
        "object_dict": object_aggregate.to_dict(),
        "column_dict": column_aggregate.to_dict(),
    }


@pytest.mark.benchmark(group="sweep-transport")
def test_columnar_transport_shrinks_runs(benchmark):
    stats = benchmark.pedantic(
        run_transport_comparison, rounds=1, iterations=1
    )

    runs = stats["runs"]
    object_per_run = stats["object_bytes"] / runs
    column_per_run = stats["column_bytes"] / runs
    ratio = object_per_run / column_per_run
    assert ratio >= MIN_BYTES_RATIO, (
        f"columnar transport only {ratio:.2f}x smaller than pickled "
        f"RunResults ({column_per_run:.0f} vs {object_per_run:.0f} "
        f"bytes/run); acceptance floor {MIN_BYTES_RATIO}x"
    )

    # Both wire forms must merge to the same statistics, to the byte.
    assert json.dumps(stats["object_dict"], sort_keys=True) == json.dumps(
        stats["column_dict"], sort_keys=True
    ), "columnar merge diverged from the object merge"

    emit(
        "sweep_transport",
        render_table(
            ["wire form", "bytes/run", "total bytes", "round-trip s"],
            [
                [
                    "RunResult (object)",
                    f"{object_per_run:.0f}",
                    stats["object_bytes"],
                    f"{stats['object_seconds']:.4f}",
                ],
                [
                    "RunColumns (columnar)",
                    f"{column_per_run:.0f}",
                    stats["column_bytes"],
                    f"{stats['column_seconds']:.4f}",
                ],
            ],
            title=(
                f"result transport over {runs} figure3 shards: "
                f"columnar is {ratio:.1f}x smaller "
                f"(gate >= {MIN_BYTES_RATIO}x)"
            ),
        ),
    )
