"""Shared-memory transport gate: descriptor versus pickled curves.

The columnar transport already collapsed the object overhead of
:class:`RunResult`; what is left on the wire is almost pure curve
payload -- three float64 buffers per run, serialised into the pool's
result pipe and copied back out.  ``REPRO_TRANSPORT=shm`` moves those
buffers through a :class:`multiprocessing.shared_memory` ring and
pickles only a :class:`ShmSlot` descriptor (scalars + curve lengths +
slot index), so the bytes crossing the pickle boundary no longer scale
with the cycle budget at all.

This benchmark runs a fixed-budget sweep (``stop_when_perfect=False``,
so every run carries the full ``max_cycles`` curve -- the regime long
churn and catastrophe sweeps live in) and gates:

* **bytes per run**: the pickled descriptor must be >= 5x smaller
  than the pickled :class:`RunColumns` it replaces (the acceptance
  target);
* **merge identity**: a ``workers=2`` sweep through the ring must
  merge byte-identically to the sequential pickled path.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.analysis import render_table
from repro.core import BootstrapConfig
from repro.runtime import (
    SweepGrid,
    SweepRunner,
    merge_columns,
    shm_available,
)
from repro.runtime.shm import ShmSlot

from common import emit

#: Acceptance target: pickled bytes-per-run ratio (columns/descriptor).
MIN_BYTES_RATIO = 5.0

FAST = BootstrapConfig(leaf_set_size=8, entries_per_slot=2, random_samples=10)

#: Fixed-budget grid: every run measures all ``max_cycles`` cycles, so
#: the curve payload is the same one a long churn sweep ships.
GATE_GRID = SweepGrid(
    sizes=(128,),
    drop_rates=(0.0, 0.2),
    replicas=2,
    base_seed=13,
    max_cycles=110,
    stop_when_perfect=False,
    config=FAST,
    engine="vector",
)


def descriptor_for(columns) -> ShmSlot:
    """The exact descriptor a worker pickles back for *columns* (the
    curves themselves cross through the ring, not the pickle stream)."""
    return ShmSlot(
        slot=0,
        lengths=(
            len(columns.cycles), len(columns.leaf), len(columns.prefix)
        ),
        fields=(
            columns.shard,
            columns.replica,
            columns.size,
            columns.drop,
            columns.sampler,
            columns.schedules,
            columns.engine,
            columns.seed,
            columns.converged_at,
            columns.population,
            columns.cycles_run,
            columns.started_at_cycle,
            columns.transport,
            columns.wall_seconds,
        ),
    )


def run_shm_comparison():
    """Simulate the gate grid once; weigh both wire forms and check
    the pooled ring path merges identically."""
    columns = SweepRunner(workers=1).run_grid_columns(GATE_GRID)
    column_blobs = [pickle.dumps(run) for run in columns]
    descriptor_blobs = [
        pickle.dumps(descriptor_for(run)) for run in columns
    ]
    os.environ["REPRO_TRANSPORT"] = "shm"
    try:
        pooled = SweepRunner(workers=2).run_grid_columns(GATE_GRID)
    finally:
        os.environ.pop("REPRO_TRANSPORT", None)
    return {
        "runs": len(columns),
        "column_bytes": sum(len(blob) for blob in column_blobs),
        "descriptor_bytes": sum(len(blob) for blob in descriptor_blobs),
        "sequential_dict": merge_columns(columns).to_dict(),
        "pooled_dict": merge_columns(pooled).to_dict(),
    }


@pytest.mark.skipif(
    not shm_available(), reason="shm transport needs numpy + shared_memory"
)
@pytest.mark.benchmark(group="shm-transport")
def test_shm_transport_shrinks_copied_bytes(benchmark):
    stats = benchmark.pedantic(run_shm_comparison, rounds=1, iterations=1)

    runs = stats["runs"]
    column_per_run = stats["column_bytes"] / runs
    descriptor_per_run = stats["descriptor_bytes"] / runs
    ratio = column_per_run / descriptor_per_run
    assert ratio >= MIN_BYTES_RATIO, (
        f"shm descriptors only {ratio:.2f}x smaller than pickled "
        f"RunColumns ({descriptor_per_run:.0f} vs {column_per_run:.0f} "
        f"bytes/run); acceptance floor {MIN_BYTES_RATIO}x"
    )

    # The ring path must change the wire form only, never the values.
    assert json.dumps(
        stats["sequential_dict"], sort_keys=True
    ) == json.dumps(stats["pooled_dict"], sort_keys=True), (
        "shm-pooled merge diverged from the sequential pickled merge"
    )

    emit(
        "shm_transport",
        render_table(
            ["wire form", "bytes/run", "total bytes"],
            [
                [
                    "RunColumns (pickled curves)",
                    f"{column_per_run:.0f}",
                    stats["column_bytes"],
                ],
                [
                    "ShmSlot (ring descriptor)",
                    f"{descriptor_per_run:.0f}",
                    stats["descriptor_bytes"],
                ],
            ],
            title=(
                f"shm transport over {runs} fixed-budget shards: "
                f"descriptors are {ratio:.1f}x smaller "
                f"(gate >= {MIN_BYTES_RATIO}x)"
            ),
        ),
        engine="vector",
    )
