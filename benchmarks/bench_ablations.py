"""Experiment E11 -- ablations of the protocol's design choices.

Section 4 motivates three design ingredients; this benchmark removes
one at a time and measures the damage:

* ``no-feedback``   -- prefix table kept out of the message union
  (breaks the "mutually boost each other" loop);
* ``no-prefix-part``-- messages carry only the ring-targeted part
  (prefix tables must scavenge from ring traffic);
* ``unoptimized-close`` -- random c-subset instead of peer-closest
  (breaks the T-Man-style ring optimisation);
* ``cr=0``          -- no random samples blended in;
* ``random-fill``   -- the no-gossip straw man (sampling only).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.baselines import ABLATION_VARIANTS, RandomFillSimulation
from repro.core import PAPER_CONFIG
from repro.simulator import BootstrapSimulation

SIZE = 512
BUDGET = 60


def run_ablations():
    rows = []
    baseline_cycles = None
    for name, node_cls in ABLATION_VARIANTS.items():
        sim = BootstrapSimulation(SIZE, seed=900, node_factory=node_cls)
        result = sim.run(BUDGET)
        cycles = result.converged_at
        if name == "full":
            baseline_cycles = cycles
        final = result.final_sample
        rows.append(
            [
                name,
                "yes" if result.converged else "no",
                cycles if cycles is not None else f">{BUDGET}",
                final.leaf_fraction,
                final.prefix_fraction,
            ]
        )

    # cr = 0: ring gossip alone.
    config = PAPER_CONFIG.with_overrides(random_samples=0)
    result = BootstrapSimulation(SIZE, config=config, seed=900).run(BUDGET)
    rows.append(
        [
            "cr=0 (no samples)",
            "yes" if result.converged else "no",
            result.converged_at or f">{BUDGET}",
            result.final_sample.leaf_fraction,
            result.final_sample.prefix_fraction,
        ]
    )

    # Random-fill straw man (same budget).
    fill = RandomFillSimulation(SIZE, seed=900)
    samples = fill.run(BUDGET, stop_when_perfect=True)
    final = samples[-1]
    rows.append(
        [
            "random-fill (no gossip)",
            "yes" if final.is_perfect else "no",
            final.cycle if final.is_perfect else f">{BUDGET}",
            final.leaf_fraction,
            final.prefix_fraction,
        ]
    )
    return rows, baseline_cycles


@pytest.mark.benchmark(group="ablations")
def test_design_choice_ablations(benchmark):
    rows, baseline_cycles = benchmark.pedantic(
        run_ablations, rounds=1, iterations=1
    )

    by_name = {row[0]: row for row in rows}
    # The full protocol converges, fast.
    assert by_name["full"][1] == "yes"
    assert baseline_cycles is not None

    # Every ablation is at least as slow as the full protocol; the
    # structural ones should hurt badly.
    for name in ("no-feedback", "no-prefix-part", "unoptimized-close"):
        row = by_name[name]
        if row[1] == "yes":
            assert row[2] >= baseline_cycles, f"{name} beat the protocol?"

    # The prefix part is essential: without it, prefix tables are far
    # from perfect at the budget (or converged dramatically later).
    npp = by_name["no-prefix-part"]
    assert npp[1] == "no" or npp[2] >= 2 * baseline_cycles

    # The straw man must not match the gossip protocol.
    fill = by_name["random-fill (no gossip)"]
    assert fill[1] == "no" or fill[2] > 4 * baseline_cycles

    from common import emit

    emit(
        "ablations",
        render_table(
            [
                "variant",
                "converged",
                "cycles",
                "final leaf frac",
                "final prefix frac",
            ],
            rows,
            title=(
                f"design-choice ablations, N={SIZE}, budget {BUDGET} "
                f"cycles (full protocol: {baseline_cycles})"
            ),
        ),
    )
