"""Collector-memory gate: streaming versus batch sweep merge.

The batch fold (:func:`merge_columns`) needs every shard's
:class:`RunColumns` alive at once, so collector memory grows linearly
in replicas -- the term that caps 10^5-replica grids.  The streaming
fold (:class:`StreamingMerge`) folds each arriving outcome into
per-cell accumulators and drops it, keeping only the merged curve
grid, counter sums, and one scalar per converged replica.

This benchmark feeds an identical replica-heavy cell (synthetic
curves; no simulation, so the measurement isolates the *collector*)
through both paths under ``tracemalloc`` and gates:

* **peak memory**: the streaming collector's peak must be at most
  ``MAX_PEAK_FRACTION`` of the batch collector's;
* **byte identity**: both folds must produce identical
  ``SweepAggregate.to_dict()`` output.
"""

from __future__ import annotations

import json
import tracemalloc
from array import array

import pytest

from repro.analysis import render_table
from repro.runtime import (
    RunColumns,
    StreamingMerge,
    merge_columns,
)

from common import emit

#: Acceptance target: streaming peak / batch peak.
MAX_PEAK_FRACTION = 0.25

#: A replica-heavy single cell: the regime the streaming fold exists
#: for (paper-scale sweeps put hundreds of replicas behind each curve).
REPLICAS = 384
POINTS = 96


def synth_run(replica: int) -> RunColumns:
    """One synthetic shard outcome (deterministic in *replica*).

    The curves mimic a convergence run -- positive, decaying, slightly
    different per replica so the fold does real arithmetic -- and use
    the stdlib ``array('d')`` buffers so tracemalloc sees every byte
    either path retains.
    """
    jitter = ((replica * 2654435761) % 997) / 997.0
    cycles = array("d", (float(c) for c in range(POINTS)))
    leaf = array(
        "d",
        (
            (1.0 + 0.5 * jitter) * (0.9 ** c)
            for c in range(POINTS)
        ),
    )
    prefix = array(
        "d",
        (
            (2.0 + jitter) * (0.85 ** c)
            for c in range(POINTS)
        ),
    )
    return RunColumns(
        shard=replica,
        replica=replica,
        size=4096,
        drop=0.0,
        sampler="oracle",
        schedules=(),
        engine="reference",
        seed=1000 + replica,
        converged_at=float(POINTS - 1) if replica % 3 else None,
        population=4096,
        cycles_run=POINTS,
        started_at_cycle=0.0,
        cycles=cycles,
        leaf=leaf,
        prefix=prefix,
        transport=(10, 9, 1, 8, 1, 0, 0, 10, 9, 8),
        wall_seconds=0.5 + jitter,
    )


def measure_batch():
    """Peak traced bytes while collecting every run, then merging."""
    tracemalloc.reset_peak()
    collected = [synth_run(replica) for replica in range(REPLICAS)]
    aggregate = merge_columns(collected)
    peak = tracemalloc.get_traced_memory()[1]
    return peak, json.dumps(aggregate.to_dict(), sort_keys=True)


def measure_streaming():
    """Peak traced bytes while folding each run as it arrives."""
    tracemalloc.reset_peak()
    merge = StreamingMerge()
    for replica in range(REPLICAS):
        merge.add(synth_run(replica))
    aggregate = merge.finalize()
    peak = tracemalloc.get_traced_memory()[1]
    return peak, json.dumps(aggregate.to_dict(), sort_keys=True)


def run_memory_comparison():
    tracemalloc.start()
    try:
        batch_peak, batch_bytes = measure_batch()
        streaming_peak, streaming_bytes = measure_streaming()
    finally:
        tracemalloc.stop()
    return {
        "batch_peak": batch_peak,
        "streaming_peak": streaming_peak,
        "batch_bytes": batch_bytes,
        "streaming_bytes": streaming_bytes,
    }


@pytest.mark.benchmark(group="streaming-merge")
def test_streaming_collector_memory_is_constant(benchmark):
    stats = benchmark.pedantic(
        run_memory_comparison, rounds=1, iterations=1
    )

    fraction = stats["streaming_peak"] / stats["batch_peak"]
    assert fraction <= MAX_PEAK_FRACTION, (
        f"streaming collector peaked at {stats['streaming_peak']} bytes "
        f"= {fraction:.2f}x the batch collector's "
        f"{stats['batch_peak']} bytes over {REPLICAS} replicas; "
        f"acceptance ceiling {MAX_PEAK_FRACTION}x"
    )

    # Constant memory is worthless if the numbers move: both folds
    # must agree to the byte.
    assert stats["streaming_bytes"] == stats["batch_bytes"], (
        "streaming fold diverged from the batch merge"
    )

    emit(
        "streaming_merge",
        render_table(
            ["collector", "peak bytes", "bytes/replica"],
            [
                [
                    "batch (list + merge_columns)",
                    stats["batch_peak"],
                    f"{stats['batch_peak'] / REPLICAS:.0f}",
                ],
                [
                    "streaming (StreamingMerge)",
                    stats["streaming_peak"],
                    f"{stats['streaming_peak'] / REPLICAS:.0f}",
                ],
            ],
            title=(
                f"collector peak memory over {REPLICAS} replicas x "
                f"{POINTS}-point curves: streaming is {fraction:.3f}x "
                f"of batch (gate <= {MAX_PEAK_FRACTION}x)"
            ),
        ),
    )
