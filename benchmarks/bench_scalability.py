"""Experiment E5 -- logarithmic convergence time.

The paper's scalability claim (Section 5): "the time required to reach
a desired quality of the leaf sets increases by an additive constant
despite a four-fold increase in the network size.  This is a strong
indication that the time needed for convergence is logarithmic in
network size."

This benchmark sweeps a geometric ladder of sizes, extracts
cycles-to-perfection, and fits ``cycles = a * log2(N) + b``.  A
logarithmic law shows up as a high-quality linear fit; a power law
would bend the curve visibly and destroy the fit.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.analysis import Series, ascii_linear, linear_fit, render_table
from repro.runtime import expand_repeats
from repro.simulator import ExperimentSpec

from common import bench_engine, emit, run_specs, size_label, throughput_lines


def ladder():
    sizes = [256, 512, 1024, 2048]
    if os.environ.get("REPRO_BENCH_FULL") or os.environ.get(
        "REPRO_BENCH_PAPER"
    ):
        sizes += [4096, 8192]
    return sizes


def run_ladder():
    # One batch for the whole ladder: parallel runs fill every worker.
    specs = []
    for size in ladder():
        repeats = 3 if size <= 1024 else 2
        specs.extend(
            expand_repeats(
                ExperimentSpec(
                    size=size,
                    seed=300 + size,
                    max_cycles=60,
                    engine=bench_engine(),
                ),
                repeats,
                first_shard=len(specs),
            )
        )
    runs = run_specs(specs)

    points = []
    rows = []
    for size in ladder():
        results = [o.result for o in runs if o.spec.size == size]
        assert all(r.converged for r in results)
        mean_cycles = sum(r.converged_at for r in results) / len(results)
        points.append((math.log2(size), mean_cycles))
        rows.append([size_label(size), len(results), mean_cycles])
    return points, rows, runs


@pytest.mark.benchmark(group="scalability")
def test_logarithmic_convergence(benchmark):
    points, rows, runs = benchmark.pedantic(
        run_ladder, rounds=1, iterations=1
    )

    fit = linear_fit([p[0] for p in points], [p[1] for p in points])
    # Strongly linear in log N: the paper's additive-constant claim.
    assert fit.r_squared > 0.7, (
        f"cycles vs log2(N) fit r^2={fit.r_squared:.3f}: not logarithmic"
    )
    # Each doubling costs a bounded, small number of extra cycles.
    assert 0.0 <= fit.slope <= 3.0, f"slope {fit.slope:.2f} per doubling"

    curve = Series.from_pairs("cycles to perfect", points)
    text = "\n".join(
        [
            render_table(
                ["size", "repeats", "mean cycles to perfect"],
                rows,
                title="convergence time versus network size",
            ),
            ascii_linear(
                [curve],
                title="cycles vs log2(N)",
                ylabel="cycles",
            ),
            f"linear fit: cycles = {fit.slope:.2f} * log2(N) + "
            f"{fit.intercept:.2f}   (r^2 = {fit.r_squared:.3f})",
            "paper claim: +4x size => +constant cycles (logarithmic).",
            throughput_lines(runs),
        ]
    )
    emit("scalability", text, [curve], engine=bench_engine())
