"""Experiment E5 -- logarithmic convergence time.

The paper's scalability claim (Section 5): "the time required to reach
a desired quality of the leaf sets increases by an additive constant
despite a four-fold increase in the network size.  This is a strong
indication that the time needed for convergence is logarithmic in
network size."

The ``scalability`` registry scenario sweeps a geometric ladder of
sizes; this benchmark extracts cycles-to-perfection from its cells and
fits ``cycles = a * log2(N) + b``.  A logarithmic law shows up as a
high-quality linear fit; a power law would bend the curve visibly and
destroy the fit.
"""

from __future__ import annotations

import math

import pytest

from repro import seams
from repro.analysis import Series, ascii_linear, linear_fit, render_table

from common import (
    bench_scenario,
    emit,
    run_scenario_bench,
    size_label,
    throughput_lines,
)


def ladder():
    sizes = [256, 512, 1024, 2048]
    if seams.flag("REPRO_BENCH_FULL") or seams.flag("REPRO_BENCH_PAPER"):
        sizes += [4096, 8192]
    return sizes


def run_ladder():
    # One grid for the whole ladder: parallel runs fill every worker.
    sizes = tuple(ladder())
    return run_scenario_bench(
        bench_scenario(
            "scalability",
            sizes=sizes,
            replicas=tuple(3 if size <= 1024 else 2 for size in sizes),
        )
    )


@pytest.mark.benchmark(group="scalability")
def test_logarithmic_convergence(benchmark):
    outcome = benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    points = []
    rows = []
    for cell in outcome.aggregate.cells:
        assert cell.all_converged
        points.append((math.log2(cell.size), cell.cycles.mean))
        rows.append(
            [size_label(cell.size), cell.runs, cell.cycles.mean]
        )

    fit = linear_fit([p[0] for p in points], [p[1] for p in points])
    # Strongly linear in log N: the paper's additive-constant claim.
    assert fit.r_squared > 0.7, (
        f"cycles vs log2(N) fit r^2={fit.r_squared:.3f}: not logarithmic"
    )
    # Each doubling costs a bounded, small number of extra cycles.
    assert 0.0 <= fit.slope <= 3.0, f"slope {fit.slope:.2f} per doubling"

    curve = Series.from_pairs("cycles to perfect", points)
    text = "\n".join(
        [
            render_table(
                ["size", "repeats", "mean cycles to perfect"],
                rows,
                title="convergence time versus network size",
            ),
            ascii_linear(
                [curve],
                title="cycles vs log2(N)",
                ylabel="cycles",
            ),
            f"linear fit: cycles = {fit.slope:.2f} * log2(N) + "
            f"{fit.intercept:.2f}   (r^2 = {fit.r_squared:.3f})",
            "paper claim: +4x size => +constant cycles (logarithmic).",
            throughput_lines(outcome.columns),
        ]
    )
    emit("scalability", text, [curve], engine=outcome.columns[0].engine)
