"""Experiment E12 -- convergence under faults (the chaos soak).

Section 1 sells the bootstrapping service on operational robustness:
routing substrates are produced "despite catastrophic failures, on
demand".  This benchmark drives the *live* asyncio stack -- real
peers, real frames, the fault-injecting :class:`ChaosHub` fabric --
through the registered chaos scenarios and gates on recovery:

* ``chaos_partition_heal`` -- an asymmetric network partition holds
  for a second of bootstrap, then heals; the cluster must reach
  perfect tables within the budget (the hard re-convergence gate);
* ``chaos_flash_crowd`` -- half the pool joins as one surge;
* ``chaos_targeted_kill`` -- the 50% most-referenced peers die
  abruptly, then restart with fresh state through the seed path.

Every run executes on the virtual clock with seeded randomness, so
the artefact is deterministic: timestamps are virtual seconds and the
message counters reproduce exactly for a given seed.  The headline
metric is **time-to-functional** (virtual seconds from the last fault
event to network-wide perfect tables); message overhead is reported
as the ratio of datagrams sent under faults to a fault-free baseline
of the same scenario shape.

``REPRO_CHAOS_SMOKE=1`` shrinks the clusters to CI size (fault
timelines preserved); ``REPRO_CHAOS_BUDGET`` extends the convergence
budget for longer soaks.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import seams
from repro.analysis import render_table
from repro.net import ChaosSchedule
from repro.scenarios import all_chaos_scenarios, run_chaos_scenario

from common import RESULTS_DIR, emit


def run_chaos_suite():
    """Every registered chaos scenario plus its fault-free baseline."""
    smoke = seams.flag("REPRO_CHAOS_SMOKE")
    results = []
    for spec in all_chaos_scenarios():
        report = run_chaos_scenario(spec, smoke=smoke)
        # Same cluster shape and seed with an empty fault timeline:
        # the message-overhead denominator.  The flash-crowd reserve
        # is also released (a dormant half would never converge).
        baseline_spec = dataclasses.replace(
            spec,
            name=f"{spec.name}__baseline",
            schedule=ChaosSchedule(),
            dormant_fraction=0.0,
        )
        baseline = run_chaos_scenario(baseline_spec, smoke=smoke)
        results.append((spec, report, baseline))
    return results


@pytest.mark.benchmark(group="chaos")
def test_chaos_convergence_under_faults(benchmark):
    results = benchmark.pedantic(run_chaos_suite, rounds=1, iterations=1)

    rows = []
    for spec, report, baseline in results:
        # The hard gates: the cluster re-converges after every fault
        # timeline, the recovery metric is recorded, and nothing
        # crashed along the way.
        assert report.converged, f"{spec.name} missed its budget"
        assert report.time_to_functional is not None
        assert report.crashed_peers == 0
        assert baseline.converged, f"{spec.name} baseline did not converge"
        assert len(report.events) == len(spec.schedule)

        sent = report.hub_counters["datagrams_sent"]
        baseline_sent = baseline.hub_counters["datagrams_sent"]
        overhead = sent / baseline_sent if baseline_sent else float("inf")
        rows.append(
            [
                report.name,
                report.size,
                len(report.events),
                f"{report.faults_done_at:.2f}",
                f"{report.time_to_functional:.2f}",
                f"{report.peer_totals['retries_sent']}",
                f"{report.peer_totals['fallback_exchanges']}",
                sent,
                f"{overhead:.2f}x",
            ]
        )

    emit(
        "chaos",
        render_table(
            [
                "scenario",
                "peers",
                "events",
                "faults end (s)",
                "time to functional (s)",
                "retries",
                "fallbacks",
                "datagrams",
                "overhead",
            ],
            rows,
            title=(
                "convergence under faults (virtual-clock chaos soak; "
                "overhead vs the fault-free baseline of the same shape)"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "chaos_report.json").write_text(
        json.dumps(
            {
                "runs": [report.to_dict() for _, report, _ in results],
                "baselines": [b.to_dict() for _, _, b in results],
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )
