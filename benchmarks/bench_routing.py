"""Experiment E10 -- downstream validity: the bootstrapped tables route.

The paper's purpose statement: the protocol's output is the state that
"Pastry, Kademlia, Tapestry and Bamboo" route with.  This benchmark
bootstraps a pool once and then drives thousands of lookups over three
exported substrates, checking:

* 100% success over converged tables;
* mean hop counts at the textbook ``O(log_16 N)`` (prefix) and
  ``O(log2 N)`` (Chord) scales;
* Kademlia's native iterative lookup terminates with the true closest
  node.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import render_table
from repro.overlays import (
    ChordNetwork,
    KademliaNetwork,
    PastryNetwork,
)
from repro.simulator import BootstrapSimulation, RandomSource

SIZE = 1024
LOOKUPS = 1000


def run_routing():
    sim = BootstrapSimulation(SIZE, seed=800)
    result = sim.run(60)
    assert result.converged
    nodes = sim.nodes.values()
    pastry = PastryNetwork.from_bootstrap_nodes(nodes)
    kademlia = KademliaNetwork.from_bootstrap_nodes(nodes)
    chord = ChordNetwork.ideal(sim.config.space, sim.live_ids)

    rng = RandomSource(801).derive("lookups")
    space = sim.config.space
    ids = list(sim.nodes)
    keys = [space.random_id(rng) for _ in range(LOOKUPS)]
    starts = [rng.choice(ids) for _ in range(LOOKUPS)]

    stats = {
        "pastry (bootstrapped)": pastry.lookup_many(keys, starts),
        "kademlia (bootstrapped)": kademlia.lookup_many(keys, starts),
        "chord (ideal, comparison)": chord.lookup_many(keys, starts),
    }
    iterative_hits = 0
    iterative_msgs = 0
    for key, start in zip(keys[:100], starts[:100], strict=True):
        outcome = kademlia.iterative_find(start, key, alpha=3, k=20)
        iterative_hits += outcome.found_target
        iterative_msgs += outcome.messages
    return stats, iterative_hits, iterative_msgs


@pytest.mark.benchmark(group="routing")
def test_bootstrapped_tables_route(benchmark):
    stats, iterative_hits, iterative_msgs = benchmark.pedantic(
        run_routing, rounds=1, iterations=1
    )

    prefix_bound = math.ceil(math.log(SIZE, 16))
    rows = []
    for name, stat in stats.items():
        assert stat.success_rate == 1.0, f"{name}: {stat.as_row()}"
        rows.append(
            [name, stat.attempts, stat.success_rate, stat.mean_hops,
             stat.max_hops]
        )
    # Prefix routing: ~log_16 N hops (plus leaf-set last hop).
    assert stats["pastry (bootstrapped)"].mean_hops <= prefix_bound + 1.5
    assert stats["kademlia (bootstrapped)"].mean_hops <= prefix_bound + 1.5
    # Iterative Kademlia finds the true closest node every time.
    assert iterative_hits == 100

    rows.append(
        [
            "kademlia iterative (alpha=3)",
            100,
            iterative_hits / 100,
            iterative_msgs / 100,
            "-",
        ]
    )

    from common import emit

    emit(
        "routing",
        render_table(
            ["substrate", "lookups", "success", "mean hops/msgs", "max hops"],
            rows,
            title=(
                f"lookups over bootstrapped tables, N={SIZE} "
                f"(log_16 N = {math.log(SIZE, 16):.2f})"
            ),
        ),
    )
