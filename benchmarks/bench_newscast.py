"""Experiment E8 -- the sampling layer's Section 3 claims.

Two claims about NEWSCAST underpin the whole architecture:

* **self-healing**: "provides sufficiently random samples very quickly
  after catastrophic failures (up to 70% nodes may fail)";
* **randomisation**: "even if the sets of random samples ... are
  initialized in a non-random way (e.g., all nodes have the same
  samples) the protocol very quickly randomizes the samples".

Both are measured here over a cycle-driven NEWSCAST population.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import Series, ascii_semilog, render_table
from repro.sampling import NewscastNode
from repro.simulator import CycleEngine, NewscastActor, RELIABLE, RandomSource

SIZE = 1024
VIEW = 30
KILL_FRACTION = 0.7


def build_population(seed=600):
    source = RandomSource(seed)
    rng = source.derive("ids")
    engine = CycleEngine(RELIABLE, source.derive("engine"))
    nodes = {}
    descriptors = []
    for index in range(SIZE):
        node_id = rng.getrandbits(64)
        from repro.core import NodeDescriptor

        desc = NodeDescriptor(node_id=node_id, address=index)
        descriptors.append(desc)
        node = NewscastNode(
            desc, source.derive(("n", node_id)), view_size=VIEW
        )
        nodes[node_id] = node
        engine.add_actor(node_id, NewscastActor(node))
    return descriptors, nodes, engine


def run_self_healing():
    descriptors, nodes, engine = build_population()
    for index, desc in enumerate(descriptors):
        nodes[desc.node_id].seed_view(
            [descriptors[(index + off) % SIZE] for off in range(1, 6)]
        )
    engine.run_cycles(5)
    rng = random.Random(1)
    dead = {
        d.node_id
        for d in rng.sample(descriptors, int(KILL_FRACTION * SIZE))
    }
    for node_id in dead:
        engine.remove_actor(node_id)
        nodes.pop(node_id)
    series = []
    for cycle in range(30):
        engine.run_cycles(1)
        dead_refs = sum(
            1
            for node in nodes.values()
            for entry in node.view
            if entry.node_id in dead
        )
        total = sum(len(node.view) for node in nodes.values())
        series.append((cycle + 1, dead_refs / total))
    return series


def run_randomisation():
    """Non-random start: every view = {the hub}.  Track the share of
    views still containing the hub, and the diversity of references."""
    descriptors, nodes, engine = build_population(seed=601)
    hub = descriptors[0]
    for desc in descriptors[1:]:
        nodes[desc.node_id].seed_view([hub])
    series = [(0, 1.0)]
    diversity = []
    for cycle in range(20):
        engine.run_cycles(1)
        views_with_hub = sum(
            1
            for node in nodes.values()
            if hub.node_id in node.view.member_ids()
        )
        referenced = set()
        for node in nodes.values():
            referenced.update(node.view.member_ids())
        series.append((cycle + 1, views_with_hub / len(nodes)))
        diversity.append(len(referenced) / SIZE)
    return series, diversity


@pytest.mark.benchmark(group="newscast")
def test_newscast_section3_claims(benchmark):
    healing, (randomisation, diversity) = benchmark.pedantic(
        lambda: (run_self_healing(), run_randomisation()),
        rounds=1,
        iterations=1,
    )

    # Self-healing: dead references decay from ~70% to a small residue
    # within ~2x view-size cycles.
    final_dead = healing[-1][1]
    assert healing[0][1] > 0.5
    assert final_dead < 0.1, f"dead refs stuck at {final_dead:.3f}"

    # Randomisation: from all-views-are-{hub}, the hub must fall from
    # being in 100% of views to a random-membership share (~view/N),
    # while references spread across essentially the whole network.
    assert randomisation[0][1] == 1.0
    assert randomisation[-1][1] < 0.15
    assert diversity[-1] > 0.9, (
        f"views reference only {diversity[-1]:.0%} of the network"
    )

    healing_curve = Series.from_pairs("dead refs after 70% kill", healing)
    hub_curve = Series.from_pairs(
        "share of views containing the hub", randomisation
    )

    from common import emit

    emit(
        "newscast",
        "\n".join(
            [
                ascii_semilog(
                    [healing_curve.nonzero()],
                    title=f"NEWSCAST self-healing, N={SIZE}, kill=70%",
                    ylabel="fraction of view entries pointing at dead nodes",
                ),
                ascii_semilog(
                    [hub_curve.nonzero()],
                    title="NEWSCAST randomisation from identical initial views",
                    ylabel="share of views containing the hub",
                ),
                render_table(
                    ["claim", "initial", "final", "cycles"],
                    [
                        [
                            "self-healing (dead refs)",
                            healing[0][1],
                            healing[-1][1],
                            len(healing),
                        ],
                        [
                            "randomisation (hub share)",
                            randomisation[0][1],
                            randomisation[-1][1],
                            len(randomisation),
                        ],
                    ],
                    title="Section 3 sampling-layer claims",
                ),
            ]
        ),
        [healing_curve, hub_curve],
    )
